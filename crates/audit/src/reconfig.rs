//! Crash-during-reconfiguration model checker.
//!
//! [`crate::protocol`] explores crashes during *steady-state* packet
//! processing and recovery. This module explores the other half of ROADMAP
//! item 2: crashes during **planned reconfiguration** — the four-phase
//! scale/migrate/splice handshake of [`ftc_core::reconfig`] — where the
//! protocol's obligation is not just "traffic resumes" but "ownership of
//! every flow partition is handed over exactly once".
//!
//! Each schedule in the matrix builds a fresh deterministic
//! [`SyncChain`], warms it with traffic, executes one reconfiguration
//! operation while a [`ProtocolProbe`] fail-stops a chosen participant
//! (source, destination, or orchestrator) at a chosen phase — for the
//! transfer phase, after a chosen number of partitions — then applies the
//! documented repair for that failure (§5.2 recovery for fail-stopped
//! positions, a plain retry for rolled-back attempts, nothing for
//! roll-forward cases), injects post traffic under a permuted actor
//! interleaving, and checks:
//!
//! * **I1 — release implies replication**: same as the steady-state
//!   checker; every release observed during warm/post traffic must be
//!   covered by every live member of the owning replication group.
//! * **I2 — group convergence**: at final quiescence every replicated copy
//!   equals its head's committed prefix, byte for byte.
//! * **I3 — structure and liveness**: the ring re-forms on the final
//!   topology, nothing stays fail-stopped or paused, the buffer drains,
//!   and *every* injected packet egresses exactly once (reconfigurations
//!   run on a quiesced chain, so unlike mid-traffic crashes no packet may
//!   be lost).
//! * **I4 — `MAX`-vector monotonicity**: across a migrate/scale handover
//!   no surviving position's applied-prefix vector moves backwards.
//! * **I5 — single serviceable owner**: folding the
//!   [`ClaimSample`](ftc_core::ClaimSample) trace recorded at every probe
//!   point, at most one instance is serviceable (alive ∧ claimed ∧
//!   unsealed) per `(position, partition)` at every observable point, and
//!   exactly one at final quiescence. The `sabotage-skip-release` fixture
//!   in `ftc-core` (enabled here through the `reconfig-sabotage` feature)
//!   re-opens the source's claims after the destination switched and must
//!   make this invariant fire.
//! * **I6 — transferred = committed prefix**: after a completed (or
//!   rolled-forward) migrate/scale, the new owner's own store equals the
//!   [`SealRecord`](ftc_core::SealRecord) captured when the source sealed
//!   — nothing lost, nothing duplicated. Checked *before* post traffic
//!   touches the store. The per-position packet counters of the monitor
//!   chain extend the same check across splices, where whole-chain state
//!   carries over by identity.
//!
//! Witnesses carry the schedule label (`case/permN`); [`replay`] re-runs
//! exactly that schedule from the label for debugging.

use crate::protocol::{canonical, permutations, Witness};
use ftc_core::testkit::{Step, SyncChain};
use ftc_core::{
    ChainConfig, ClaimSample, ProbePoint, ProbeVerdict, ProtocolProbe, ReconfigActor,
    ReconfigFailure, ReconfigOp, ReconfigPhase, ReconfigRun,
};
use ftc_mbox::MbSpec;
use ftc_packet::builder::UdpPacketBuilder;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Cap on stored witnesses (the count in the report keeps growing).
const WITNESS_CAP: usize = 64;

/// Bound on clean retries of a rolled-back operation before the checker
/// calls the retry loop divergent.
const RETRY_CAP: usize = 3;

// ---------------------------------------------------------------------------
// Configuration and crash matrix
// ---------------------------------------------------------------------------

/// What to explore.
#[derive(Debug, Clone)]
pub struct ReconfigCheckConfig {
    /// The chain under test (stateful middleboxes make I6 meaningful; the
    /// per-position counter check needs `Monitor { sharing_level: 1 }`).
    pub specs: Vec<MbSpec>,
    /// Tolerated failures.
    pub f: usize,
    /// State partitions per store (also the number of transfer chunks).
    pub partitions: usize,
    /// Packets injected and drained before the reconfiguration.
    pub warm: usize,
    /// Packets injected after the operation + repair (traffic resumes).
    pub post: usize,
    /// For transfer-phase crashes: fire after this many partitions moved
    /// (each entry multiplies the matrix; must be `< partitions`).
    pub transfer_triggers: Vec<usize>,
    /// `false`: migrate at every position but scale/splice only mid-chain
    /// (the PR gate). `true`: every operation at every position (nightly).
    pub all_sites: bool,
    /// Cap on actor interleavings (`None` = all permutations of the
    /// replicas + buffer); capped runs stride-sample for diversity.
    pub perm_limit: Option<usize>,
    /// Per-drive round budget; exhausting it is a liveness witness.
    pub max_rounds: usize,
    /// The middlebox spliced in by `splice-in` cases.
    pub splice_spec: MbSpec,
}

impl ReconfigCheckConfig {
    /// The PR-gate configuration: a 3-monitor, `f = 1` chain; migrations
    /// at every position plus mid-chain scale and splices, every crash
    /// variant, all 24 interleavings of the four steppable actors —
    /// 56 crash cases × 24 interleavings = 1344 schedules.
    pub fn pr_gate() -> ReconfigCheckConfig {
        ReconfigCheckConfig {
            specs: vec![MbSpec::Monitor { sharing_level: 1 }; 3],
            f: 1,
            partitions: 8,
            warm: 3,
            post: 2,
            transfer_triggers: vec![0, 2],
            all_sites: false,
            perm_limit: None,
            max_rounds: 5000,
            splice_spec: MbSpec::Monitor { sharing_level: 1 },
        }
    }

    /// The nightly configuration (`FTC_RECONFIG_DEEP=1`): every operation
    /// at every position and a denser transfer-trigger grid — 144 crash
    /// cases × 24 interleavings = 3456 schedules.
    pub fn nightly_deep() -> ReconfigCheckConfig {
        ReconfigCheckConfig {
            transfer_triggers: vec![0, 1, 2, 3, 6],
            all_sites: true,
            ..ReconfigCheckConfig::pr_gate()
        }
    }
}

/// One reconfiguration operation at one chain position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OpSite {
    op: ReconfigOp,
    pos: usize,
}

impl OpSite {
    fn label(&self) -> String {
        format!("{}@{}", self.op.label(), self.pos)
    }
}

/// A participant crash armed for one schedule: fail-stop `role` at its
/// `trigger`-th observation of `(op, phase)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CrashSpec {
    role: ReconfigActor,
    phase: ReconfigPhase,
    trigger: usize,
}

/// One case in the exploration matrix: an operation, optionally crashed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ReconfigCase {
    site: OpSite,
    crash: Option<CrashSpec>,
}

impl ReconfigCase {
    fn label(&self) -> String {
        match self.crash {
            None => format!("{}/clean", self.site.label()),
            Some(c) => format!(
                "{}/crash[{}@{}#{}]",
                self.site.label(),
                c.role.label(),
                c.phase.label(),
                c.trigger
            ),
        }
    }
}

/// Builds the crash matrix for an `n`-middlebox chain.
///
/// Handover operations (migrate/scale) get every participant × phase
/// combination the handshake exposes: orchestrator or source at prepare,
/// either transfer side after each configured partition count,
/// orchestrator or destination at the switch commit point, and the
/// orchestrator at release (the roll-forward case). Splices get the
/// whole-chain analogues, with the transfer trigger selecting *which* old
/// instance dies mid-snapshot.
fn case_matrix(cfg: &ReconfigCheckConfig, n: usize) -> Vec<ReconfigCase> {
    let mut sites: Vec<OpSite> = (0..n)
        .map(|pos| OpSite {
            op: ReconfigOp::Migrate,
            pos,
        })
        .collect();
    let scale_sites: Vec<usize> = if cfg.all_sites {
        (0..n).collect()
    } else {
        vec![n / 2]
    };
    sites.extend(scale_sites.into_iter().map(|pos| OpSite {
        op: ReconfigOp::Scale,
        pos,
    }));

    let handover_fixed = [
        (ReconfigActor::Orchestrator, ReconfigPhase::Prepare),
        (ReconfigActor::Source, ReconfigPhase::Prepare),
        (ReconfigActor::Orchestrator, ReconfigPhase::Switch),
        (ReconfigActor::Destination, ReconfigPhase::Switch),
        (ReconfigActor::Orchestrator, ReconfigPhase::Release),
    ];
    let mut cases = Vec::new();
    for site in sites {
        cases.push(ReconfigCase { site, crash: None });
        for (role, phase) in handover_fixed {
            cases.push(ReconfigCase {
                site,
                crash: Some(CrashSpec {
                    role,
                    phase,
                    trigger: 0,
                }),
            });
        }
        for &t in &cfg.transfer_triggers {
            for role in [ReconfigActor::Source, ReconfigActor::Destination] {
                cases.push(ReconfigCase {
                    site,
                    crash: Some(CrashSpec {
                        role,
                        phase: ReconfigPhase::Transfer,
                        trigger: t,
                    }),
                });
            }
        }
    }

    let splice_positions: Vec<usize> = if cfg.all_sites {
        (0..n).collect()
    } else {
        vec![n / 2]
    };
    let splice_fixed = [
        (ReconfigActor::Orchestrator, ReconfigPhase::Prepare),
        (ReconfigActor::Orchestrator, ReconfigPhase::Switch),
        (ReconfigActor::Destination, ReconfigPhase::Switch),
        (ReconfigActor::Orchestrator, ReconfigPhase::Release),
    ];
    for op in [ReconfigOp::SpliceIn, ReconfigOp::SpliceOut] {
        for &pos in &splice_positions {
            let site = OpSite { op, pos };
            cases.push(ReconfigCase { site, crash: None });
            for (role, phase) in splice_fixed {
                cases.push(ReconfigCase {
                    site,
                    crash: Some(CrashSpec {
                        role,
                        phase,
                        trigger: 0,
                    }),
                });
            }
            // The splice transfer point fires once per old instance, so
            // the trigger picks the victim position.
            for victim in 0..n {
                cases.push(ReconfigCase {
                    site,
                    crash: Some(CrashSpec {
                        role: ReconfigActor::Source,
                        phase: ReconfigPhase::Transfer,
                        trigger: victim,
                    }),
                });
            }
        }
    }
    cases
}

// ---------------------------------------------------------------------------
// Probe: reconfiguration-point crashes + release observations
// ---------------------------------------------------------------------------

/// One `BufferRelease` observation: per released request, the replica
/// position and its `(partition, seq)` log entries.
type ReleaseBatch = Vec<(usize, Vec<(u16, u64)>)>;

#[derive(Default)]
struct ProbeInner {
    /// Armed crash, matched against `(op, phase, role)` observations.
    target: Option<(ReconfigOp, CrashSpec)>,
    seen: usize,
    fired: bool,
    /// Buffer releases observed since the last harvest (for I1).
    releases: Vec<ReleaseBatch>,
}

/// The checker's [`ProtocolProbe`]: crashes a reconfiguration participant
/// at its `trigger`-th matching observation and records buffer releases.
struct ReconfigProbe {
    inner: Mutex<ProbeInner>,
}

impl ReconfigProbe {
    fn new() -> Arc<ReconfigProbe> {
        Arc::new(ReconfigProbe {
            inner: Mutex::new(ProbeInner::default()),
        })
    }

    fn arm(&self, op: ReconfigOp, crash: CrashSpec) {
        let mut g = self.inner.lock();
        g.target = Some((op, crash));
        g.seen = 0;
    }

    fn disarm(&self) {
        self.inner.lock().target = None;
    }

    fn fired(&self) -> bool {
        self.inner.lock().fired
    }

    fn drain_releases(&self) -> Vec<ReleaseBatch> {
        std::mem::take(&mut self.inner.lock().releases)
    }
}

impl ProtocolProbe for ReconfigProbe {
    fn on_step(&self, point: ProbePoint) -> ProbeVerdict {
        let mut g = self.inner.lock();
        if let ProbePoint::BufferRelease { reqs } = &point {
            g.releases.push(reqs.clone());
            return ProbeVerdict::Continue;
        }
        let ProbePoint::Reconfig {
            op, phase, role, ..
        } = point
        else {
            return ProbeVerdict::Continue;
        };
        let Some((t_op, t)) = g.target else {
            return ProbeVerdict::Continue;
        };
        if op != t_op || phase != t.phase || role != t.role {
            return ProbeVerdict::Continue;
        }
        if g.seen < t.trigger {
            g.seen += 1;
            return ProbeVerdict::Continue;
        }
        g.target = None;
        g.fired = true;
        ProbeVerdict::Crash
    }
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

/// Aggregate result of a reconfiguration exploration.
#[derive(Debug, Default)]
pub struct ReconfigReport {
    /// Schedules executed (crash cases × interleavings).
    pub schedules: usize,
    /// Distinct crash cases in the matrix.
    pub crash_cases: usize,
    /// Actor interleavings per crash case.
    pub interleavings: usize,
    /// Productive state transitions explored across all schedules.
    pub steps: usize,
    /// Schedules on which the armed participant crash actually fired.
    pub crashes_fired: usize,
    /// Rolled-back attempts that were retried cleanly.
    pub retries: usize,
    /// Schedules on which the operation (eventually) committed.
    pub ops_completed: usize,
    /// Packets released across all schedules.
    pub releases: usize,
    /// Total invariant violations found (may exceed `witnesses.len()`).
    pub violations: usize,
    /// Stored witnesses, capped at [`WITNESS_CAP`].
    pub witnesses: Vec<Witness>,
}

impl ReconfigReport {
    /// True when no schedule violated any invariant.
    pub fn ok(&self) -> bool {
        self.violations == 0
    }

    /// One-line summary for test output and CI logs.
    pub fn summary(&self) -> String {
        format!(
            "explored {} schedules ({} crash cases × {} interleavings), \
             {} state transitions, {} crashes fired, {} retries, \
             {} ops committed, {} packets released, {} violation(s)",
            self.schedules,
            self.crash_cases,
            self.interleavings,
            self.steps,
            self.crashes_fired,
            self.retries,
            self.ops_completed,
            self.releases,
            self.violations,
        )
    }
}

// ---------------------------------------------------------------------------
// Single-schedule executor
// ---------------------------------------------------------------------------

struct Exec<'a> {
    cfg: &'a ReconfigCheckConfig,
    chain: SyncChain,
    probe: Arc<ReconfigProbe>,
    label: String,
    /// Replica count of the initial topology (splices change it).
    base_n: usize,
    next_ident: u16,
    released: usize,
    steps: usize,
    retries: usize,
    completed: bool,
    budget_blown: bool,
    /// Claim samples from every attempt, folded into I5 at the end.
    trace: Vec<ClaimSample>,
    /// I4 baseline: `(holder, mbox) → MAX vector` captured before the op.
    baseline: HashMap<(usize, usize), Vec<u64>>,
    witnesses: Vec<Witness>,
    violations: usize,
}

impl Exec<'_> {
    fn witness(&mut self, invariant: &'static str, detail: String) {
        self.violations += 1;
        if self.witnesses.len() < WITNESS_CAP {
            self.witnesses.push(Witness {
                invariant,
                schedule: self.label.clone(),
                detail,
            });
        }
    }

    fn inject(&mut self, count: usize) {
        for _ in 0..count {
            self.next_ident = self.next_ident.wrapping_add(1);
            let pkt = UdpPacketBuilder::new()
                .src(Ipv4Addr::new(10, 2, 0, 1), 1000 + self.next_ident % 4000)
                .dst(Ipv4Addr::new(10, 3, 0, 1), 80)
                .ident(self.next_ident)
                .build();
            self.chain.inject(pkt);
        }
    }

    /// Checks I1 for every release recorded since the last call and counts
    /// egressed packets. Releases only happen while the topology is stable
    /// (reconfigurations run on a quiesced chain), so the ring arithmetic
    /// of the *current* configuration applies.
    fn harvest(&mut self) {
        let ring = self.chain.replicas[0].cfg.ring();
        for reqs in self.probe.drain_releases() {
            for (m, deps) in &reqs {
                for r in ring.group(*m) {
                    if self.chain.is_dead(r) {
                        continue; // mid-replacement, excused as in `protocol`
                    }
                    let vec = if r == *m {
                        self.chain.replicas[r].own_store.seq_vector()
                    } else {
                        match self.chain.replicas[r].replicated.get(m) {
                            Some(g) => g.max.vector(),
                            None => {
                                self.witness(
                                    "I1",
                                    format!(
                                        "live replica r{r} holds no replicated \
                                         store for mbox {m} at release time"
                                    ),
                                );
                                continue;
                            }
                        }
                    };
                    for &(p, seq) in deps {
                        let have = vec.get(p as usize).copied().unwrap_or(0);
                        if have <= seq {
                            self.witness(
                                "I1",
                                format!(
                                    "released a packet depending on mbox {m} \
                                     partition {p} seq {seq}, but live group \
                                     member r{r} has only applied {have}"
                                ),
                            );
                        }
                    }
                }
            }
        }
        self.released += self.chain.egress().drain().len();
    }

    /// Steps actors in `perm` order (plus any replicas a splice added
    /// beyond the permuted set, and the forwarder feedback) until
    /// quiescence or the round budget runs out.
    fn drive(&mut self, perm: &[Step]) {
        for _ in 0..self.cfg.max_rounds {
            let mut progressed = false;
            for &actor in perm {
                if self.chain.step(actor) {
                    self.steps += 1;
                    progressed = true;
                }
            }
            for i in self.base_n..self.chain.replicas.len() {
                if self.chain.step(Step::Replica(i)) {
                    self.steps += 1;
                    progressed = true;
                }
            }
            if self.chain.step(Step::ForwarderFeedback) {
                self.steps += 1;
                progressed = true;
            }
            self.harvest();
            if !progressed {
                self.chain.step(Step::BufferTimer);
                let timer_work = self.chain.step(Step::ForwarderTimer);
                let more = {
                    let b = self.chain.step(Step::Buffer);
                    let r = self.chain.step(Step::Replica(0));
                    b || r
                };
                self.harvest();
                if !timer_work && !more {
                    return;
                }
                self.steps += 1;
            }
        }
        if !self.budget_blown {
            self.budget_blown = true;
            self.witness(
                "liveness",
                format!(
                    "round budget {} exhausted before quiescence",
                    self.cfg.max_rounds
                ),
            );
        }
    }

    fn run_op(&mut self, site: OpSite) -> ReconfigRun {
        match site.op {
            ReconfigOp::Migrate => self.chain.migrate_mbox(site.pos),
            ReconfigOp::Scale => self.chain.scale_mbox(site.pos),
            ReconfigOp::SpliceIn => self.chain.splice_in(site.pos, self.cfg.splice_spec.clone()),
            ReconfigOp::SpliceOut => self.chain.splice_out(site.pos),
        }
    }

    /// §5.2-recovers every fail-stopped position (the documented repair
    /// for source crashes and post-commit destination crashes).
    fn recover_dead(&mut self) {
        for i in 0..self.chain.replicas.len() {
            if self.chain.is_dead(i) {
                if let Err(e) = self.chain.try_fail_and_recover(i, &|_, _| true) {
                    self.witness(
                        "I3",
                        format!(
                            "§5.2 recovery of fail-stopped position r{i} after \
                             a reconfiguration crash did not heal the ring: {e}"
                        ),
                    );
                }
            }
        }
    }

    /// Executes the operation and applies the documented repair for its
    /// failure class, retrying rolled-back attempts with the probe
    /// disarmed. Every attempt's claim trace is kept for the I5 fold.
    fn execute_and_repair(&mut self, site: OpSite) {
        for attempt in 0.. {
            let run = self.run_op(site);
            self.trace.extend(run.trace.iter().cloned());
            match run.outcome {
                Ok(_) => {
                    self.completed = true;
                    self.check_i6(&run);
                    return;
                }
                Err(failure) => {
                    self.probe.disarm();
                    match failure {
                        // The position fail-stopped (pre-commit source
                        // death on the old topology, or a post-commit
                        // destination death on the new one): §5.2 repairs.
                        ReconfigFailure::SourceCrashed { .. }
                        | ReconfigFailure::DestinationCrashed {
                            phase: ReconfigPhase::Switch,
                        } => {
                            self.recover_dead();
                            return;
                        }
                        // Past the commit point the operation rolls
                        // forward: the new owner already serves and the
                        // sealed source is merely never decommissioned.
                        // I6 must still hold on the state it received.
                        ReconfigFailure::OrchestratorCrashed {
                            phase: ReconfigPhase::Release,
                        } => {
                            self.completed = true;
                            self.check_i6(&run);
                            return;
                        }
                        // Rolled back with the old configuration intact:
                        // the documented recovery is a plain retry.
                        ReconfigFailure::DestinationCrashed { .. }
                        | ReconfigFailure::OrchestratorCrashed { .. }
                        | ReconfigFailure::NotQuiescent => {
                            if attempt + 1 >= RETRY_CAP {
                                self.witness(
                                    "liveness",
                                    format!(
                                        "operation still failing after \
                                         {RETRY_CAP} attempts: {failure}"
                                    ),
                                );
                                return;
                            }
                            self.retries += 1;
                        }
                    }
                }
            }
        }
    }

    /// I6: the new owner's own store equals the committed prefix sealed at
    /// the source — nothing lost, nothing duplicated. Runs before post
    /// traffic. Splices carry state by identity and are covered by the
    /// counter check in [`Self::check_final`] instead.
    fn check_i6(&mut self, run: &ReconfigRun) {
        if !matches!(run.op, ReconfigOp::Migrate | ReconfigOp::Scale) {
            return;
        }
        let Some(seal) = &run.seal else {
            self.witness(
                "I6",
                "handover committed without capturing a seal record".into(),
            );
            return;
        };
        let dest = &self.chain.replicas[run.position];
        let got_seqs = dest.own_store.seq_vector();
        if got_seqs != seal.seqs {
            self.witness(
                "I6",
                format!(
                    "migrated seq vector {got_seqs:?} differs from the sealed \
                     committed prefix {:?} at position {}",
                    seal.seqs, run.position
                ),
            );
        } else if canonical(dest.own_store.snapshot()) != canonical(seal.snapshot.clone()) {
            self.witness(
                "I6",
                format!(
                    "migrated store content at position {} diverges from the \
                     sealed snapshot despite equal seq vectors",
                    run.position
                ),
            );
        }
    }

    /// Captures the I4 baseline before a handover (positions are stable
    /// across migrate/scale; splices renumber them, so I4 is skipped
    /// there and convergence is covered by I2 + the counter check).
    fn capture_i4(&mut self) {
        for (r, rep) in self.chain.replicas.iter().enumerate() {
            self.baseline.insert((r, r), rep.own_store.seq_vector());
            for (m, g) in &rep.replicated {
                self.baseline.insert((r, *m), g.max.vector());
            }
        }
    }

    fn check_i4(&mut self) {
        let entries: Vec<((usize, usize), Vec<u64>)> =
            self.baseline.iter().map(|(k, v)| (*k, v.clone())).collect();
        for ((r, m), before) in entries {
            let rep = &self.chain.replicas[r];
            let after = if m == r {
                rep.own_store.seq_vector()
            } else {
                match rep.replicated.get(&m) {
                    Some(g) => g.max.vector(),
                    None => continue, // structural damage — I3 reports it
                }
            };
            for (p, (&b, &a)) in before.iter().zip(after.iter()).enumerate() {
                if a < b {
                    self.witness(
                        "I4",
                        format!(
                            "position r{r}'s MAX vector for mbox {m} moved \
                             backwards across the handover: partition {p} \
                             went {b} → {a}"
                        ),
                    );
                }
            }
        }
    }

    /// I5: fold every recorded claim sample (at most one serviceable owner
    /// per `(position, partition)` at every observable point) and the
    /// final claim views (exactly one at completion).
    fn check_i5(&mut self) {
        let trace = std::mem::take(&mut self.trace);
        for (si, sample) in trace.iter().enumerate() {
            let mut positions: Vec<usize> = sample.views.iter().map(|v| v.position).collect();
            positions.sort_unstable();
            positions.dedup();
            let parts = sample
                .views
                .iter()
                .map(|v| v.flags.len())
                .max()
                .unwrap_or(0);
            for &pos in &positions {
                for p in 0..parts as u16 {
                    let owners = sample.serviceable_count(pos, p);
                    if owners > 1 {
                        self.witness(
                            "I5",
                            format!(
                                "sample {si} ({} {} point at the {}): {owners} \
                                 serviceable owners of position {pos} \
                                 partition {p} — ownership was not handed \
                                 over exactly once",
                                sample.op.label(),
                                sample.phase.label(),
                                sample.role.label(),
                            ),
                        );
                    }
                }
            }
        }
        let views = self.chain.claim_views();
        for pos in 0..self.chain.replicas.len() {
            let parts = views
                .iter()
                .filter(|v| v.position == pos)
                .map(|v| v.flags.len())
                .max()
                .unwrap_or(0);
            for p in 0..parts as u16 {
                let owners = views
                    .iter()
                    .filter(|v| v.position == pos && v.serviceable(p))
                    .count();
                if owners != 1 {
                    self.witness(
                        "I5",
                        format!(
                            "at final quiescence position {pos} partition {p} \
                             has {owners} serviceable owner(s), want exactly 1"
                        ),
                    );
                }
            }
        }
    }

    /// Final checks: I2 convergence, I3 structure/liveness/exact delivery,
    /// and the cross-operation packet-counter preservation check.
    fn check_final(&mut self, site: OpSite, total_expected: usize) {
        if self.budget_blown {
            return; // liveness witness recorded; state is mid-flight
        }
        let n = self.chain.replicas.len();
        if self.chain.held() != 0 {
            self.witness(
                "I3",
                format!(
                    "{} packet(s) still withheld by the buffer at final \
                     quiescence",
                    self.chain.held()
                ),
            );
        }
        if self.released != total_expected {
            self.witness(
                "I3",
                format!(
                    "released {} packets, expected exactly {total_expected} \
                     (reconfigurations run quiesced — no in-flight loss is \
                     possible)",
                    self.released
                ),
            );
        }
        let ring = self.chain.replicas[0].cfg.ring();
        for i in 0..n {
            if self.chain.is_dead(i) {
                self.witness("I3", format!("position r{i} still fail-stopped at the end"));
                continue;
            }
            if self.chain.replicas[i].is_paused() {
                self.witness(
                    "I3",
                    format!("position r{i} still paused at the end (seal never lifted)"),
                );
            }
            let claimed_idx = self.chain.replicas[i].idx;
            if claimed_idx != i {
                self.witness(
                    "I3",
                    format!("instance at ring position {i} believes it is r{claimed_idx}"),
                );
            }
            let mut want = ring.replicated_by(i);
            want.sort_unstable();
            let mut got: Vec<usize> = self.chain.replicas[i].replicated.keys().copied().collect();
            got.sort_unstable();
            if got != want {
                self.witness(
                    "I3",
                    format!(
                        "r{i} replicates groups {got:?} after the \
                         reconfiguration, ring arithmetic requires {want:?}"
                    ),
                );
            }
        }
        // I2: every replicated copy equals its head's committed prefix.
        for m in 0..n {
            let head_vec = self.chain.replicas[m].own_store.seq_vector();
            let head_snap = canonical(self.chain.replicas[m].own_store.snapshot());
            for r in ring.group(m) {
                if r == m {
                    continue;
                }
                let Some((member_vec, member_snap)) = self.chain.replicas[r]
                    .replicated
                    .get(&m)
                    .map(|g| (g.max.vector(), g.store.snapshot()))
                else {
                    continue; // reported by the structure check above
                };
                if member_vec != head_vec {
                    self.witness(
                        "I2",
                        format!(
                            "r{r}'s applied prefix for mbox {m} is \
                             {member_vec:?}, head committed {head_vec:?}"
                        ),
                    );
                } else if canonical(member_snap) != head_snap {
                    self.witness(
                        "I2",
                        format!(
                            "r{r}'s replicated store for mbox {m} diverges \
                             from the head's content despite equal vectors"
                        ),
                    );
                }
            }
        }
        // State preservation across the whole schedule: every monitor
        // instance that lived through the warm traffic must count all
        // packets; an instance spliced in afterwards counts only the post
        // leg. Catches state silently dropped (or double-applied) by any
        // reconfiguration path, including splices where I6 has no seal.
        let spliced_in_pos = (n > self.base_n).then_some(site.pos);
        let specs = self.chain.replicas[0].cfg.effective_middleboxes();
        for (i, spec) in specs.iter().enumerate() {
            if !matches!(spec, MbSpec::Monitor { sharing_level: 1 }) {
                continue;
            }
            let expect = if spliced_in_pos == Some(i) {
                self.cfg.post
            } else {
                total_expected
            } as u64;
            let got = self.chain.replicas[i]
                .own_store
                .peek_u64(b"mon:packets:g0")
                .unwrap_or(0);
            if got != expect {
                self.witness(
                    "I6",
                    format!(
                        "position {i}'s packet counter is {got} after the \
                         schedule, expected {expect} — state was lost or \
                         duplicated across the reconfiguration"
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Explorer
// ---------------------------------------------------------------------------

fn run_schedule<'a>(
    cfg: &'a ReconfigCheckConfig,
    case: &ReconfigCase,
    perm: &[Step],
    perm_idx: usize,
) -> Exec<'a> {
    let chain_cfg = ChainConfig::new(cfg.specs.clone())
        .with_f(cfg.f)
        .with_partitions(cfg.partitions);
    let base_n = chain_cfg.effective_middleboxes().len();
    let chain = SyncChain::new(chain_cfg);
    let probe = ReconfigProbe::new();
    chain.install_probe(Arc::clone(&probe) as Arc<dyn ProtocolProbe>);
    let mut exec = Exec {
        cfg,
        chain,
        probe,
        label: format!("{}/perm{}", case.label(), perm_idx),
        base_n,
        next_ident: 0,
        released: 0,
        steps: 0,
        retries: 0,
        completed: false,
        budget_blown: false,
        trace: Vec::new(),
        baseline: HashMap::new(),
        witnesses: Vec::new(),
        violations: 0,
    };

    exec.inject(cfg.warm);
    exec.drive(perm);

    let handover = matches!(case.site.op, ReconfigOp::Migrate | ReconfigOp::Scale);
    if handover {
        exec.capture_i4();
    }
    if let Some(crash) = case.crash {
        exec.probe.arm(case.site.op, crash);
    }
    exec.execute_and_repair(case.site);
    if let Some(crash) = case.crash {
        if !exec.probe.fired() {
            exec.witness(
                "coverage",
                format!(
                    "armed crash {}@{}#{} never fired — the matrix no longer \
                     reaches this point",
                    crash.role.label(),
                    crash.phase.label(),
                    crash.trigger
                ),
            );
        }
    }
    exec.probe.disarm();
    if handover {
        exec.check_i4();
    }

    exec.inject(cfg.post);
    exec.drive(perm);
    exec.check_i5();
    exec.check_final(case.site, cfg.warm + cfg.post);
    exec
}

fn interleavings(cfg: &ReconfigCheckConfig, base_n: usize) -> Vec<Vec<Step>> {
    let mut actors: Vec<Step> = (0..base_n).map(Step::Replica).collect();
    actors.push(Step::Buffer);
    let mut perms = permutations(&actors);
    if let Some(limit) = cfg.perm_limit {
        if perms.len() > limit {
            let stride = perms.len() / limit;
            perms = perms
                .into_iter()
                .step_by(stride.max(1))
                .take(limit)
                .collect();
        }
    }
    perms
}

/// Runs the full exploration: every crash case in the reconfiguration
/// matrix × every (sampled) actor interleaving, with I1–I6 checked on
/// every schedule.
pub fn explore_reconfig(cfg: &ReconfigCheckConfig) -> ReconfigReport {
    let base_n = ChainConfig::new(cfg.specs.clone())
        .with_f(cfg.f)
        .effective_middleboxes()
        .len();
    let perms = interleavings(cfg, base_n);
    let cases = case_matrix(cfg, base_n);

    let mut report = ReconfigReport {
        crash_cases: cases.len(),
        interleavings: perms.len(),
        ..ReconfigReport::default()
    };
    for case in &cases {
        for (perm_idx, perm) in perms.iter().enumerate() {
            let exec = run_schedule(cfg, case, perm, perm_idx);
            report.schedules += 1;
            report.steps += exec.steps;
            report.releases += exec.released;
            report.retries += exec.retries;
            report.violations += exec.violations;
            if exec.probe.fired() {
                report.crashes_fired += 1;
            }
            if exec.completed {
                report.ops_completed += 1;
            }
            for w in exec.witnesses {
                if report.witnesses.len() < WITNESS_CAP {
                    report.witnesses.push(w);
                }
            }
        }
    }
    report
}

/// Re-runs exactly one schedule from a witness label (`case/permN`),
/// returning its single-schedule report. Panics if the label does not
/// name a schedule of `cfg`'s matrix — labels are only portable between
/// identical configurations.
pub fn replay(cfg: &ReconfigCheckConfig, schedule: &str) -> ReconfigReport {
    let base_n = ChainConfig::new(cfg.specs.clone())
        .with_f(cfg.f)
        .effective_middleboxes()
        .len();
    let perms = interleavings(cfg, base_n);
    let cases = case_matrix(cfg, base_n);
    for case in &cases {
        for (perm_idx, perm) in perms.iter().enumerate() {
            if format!("{}/perm{}", case.label(), perm_idx) != schedule {
                continue;
            }
            let exec = run_schedule(cfg, case, perm, perm_idx);
            let mut report = ReconfigReport {
                schedules: 1,
                crash_cases: 1,
                interleavings: 1,
                steps: exec.steps,
                releases: exec.released,
                retries: exec.retries,
                violations: exec.violations,
                witnesses: exec.witnesses,
                ..ReconfigReport::default()
            };
            if exec.probe.fired() {
                report.crashes_fired = 1;
            }
            if exec.completed {
                report.ops_completed = 1;
            }
            return report;
        }
    }
    panic!("schedule {schedule:?} is not in the matrix of this configuration");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini() -> ReconfigCheckConfig {
        ReconfigCheckConfig {
            perm_limit: Some(2),
            ..ReconfigCheckConfig::pr_gate()
        }
    }

    #[test]
    fn pr_gate_matrix_meets_the_schedule_floor() {
        let cfg = ReconfigCheckConfig::pr_gate();
        let cases = case_matrix(&cfg, 3);
        let perms = interleavings(&cfg, 3);
        assert_eq!(cases.len(), 56, "4 handover ops × 10 + 2 splice ops × 8");
        assert_eq!(perms.len(), 24);
        assert!(
            cases.len() * perms.len() >= 1000,
            "PR gate must explore ≥ 1000 schedules"
        );
        let labels: std::collections::BTreeSet<String> = cases.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), cases.len(), "case labels must be distinct");
    }

    #[test]
    #[cfg_attr(feature = "reconfig-sabotage", ignore)]
    fn mini_exploration_is_violation_free() {
        let report = explore_reconfig(&mini());
        assert!(report.ok(), "unexpected witnesses: {:#?}", report.witnesses);
        assert!(report.schedules > 0 && report.steps > 0);
        assert!(
            report.crashes_fired > 0 && report.retries > 0,
            "the matrix must crash participants and exercise retries: {}",
            report.summary()
        );
        // Every schedule either commits the operation (clean, rolled
        // forward, or retried to completion) or fail-stops a position and
        // repairs it with §5.2 recovery instead — both classes must occur.
        assert!(
            report.ops_completed > 0 && report.ops_completed < report.schedules,
            "matrix must exercise both committed and recovered outcomes: {}",
            report.summary()
        );
    }

    #[test]
    #[cfg_attr(feature = "reconfig-sabotage", ignore)]
    fn replay_reproduces_a_clean_schedule() {
        let cfg = mini();
        let report = replay(&cfg, "migrate@0/clean/perm0");
        assert_eq!(report.schedules, 1);
        assert!(report.ok(), "witnesses: {:#?}", report.witnesses);
        assert_eq!(report.ops_completed, 1);
    }

    #[test]
    #[should_panic(expected = "not in the matrix")]
    fn replay_rejects_unknown_labels() {
        replay(&mini(), "migrate@9/clean/perm999");
    }
}
