//! Deterministic async-transport model checker for the socket backend.
//!
//! [`crate::protocol`] explores the *chain protocol* over an abstract
//! transport; this module explores the *transport itself*. It drives the
//! real `ftc_net::sock` backend — reader/writer tasks, demux router,
//! learned-source replies, dial backoff, the reliable layer's RTO/NACK
//! machinery, and the RPC correlation dispatcher — under the vendored
//! tokio's [det mode](tokio::det): a seeded single-threaded step-executor
//! with virtual time and in-memory [`tokio::sim`] sockets. Nothing here is
//! a model of `sock.rs`; every schedule runs the production code.
//!
//! Each schedule is a **fault plan × seed** pair. The plan pins *what*
//! goes wrong (connection reset at a protocol point, partial write at a
//! frame boundary, refused dials, duplicate-inducing ACK loss); the seed
//! pins every remaining nondeterministic decision — task interleaving,
//! sim-socket read sizes, driver action order — via [`tokio::det::choose`].
//! A run is therefore replayed exactly from the printed witness string
//! (see [`replay`]), with no trace serialization.
//!
//! Properties checked on every schedule:
//!
//! * **T1 — exactly-once, in-order delivery.** Both reliable streams
//!   deliver `0..N` gaplessly, in order, without duplicates, across every
//!   injected reset.
//! * **T2 — RPC correlation.** Every completed call's response matches its
//!   own request (no cross-call leakage through the shared dispatcher);
//!   on fault-free plans every call must complete.
//! * **T3 — reconnect convergence.** After the fault schedule ends, all
//!   in-flight traffic converges within a bounded virtual-time window: no
//!   frame may end up acknowledged-by-nobody and silently dropped.
//! * **T4 — no deadlock/livelock.** The executor's step budget is never
//!   exhausted and every schedule quiesces (nothing runnable unless
//!   virtual time moves) once traffic completes.

use bytes::{Bytes, BytesMut};
use ftc_net::sock::{SockNode, SockRpcCaller, SockTransport};
use ftc_net::transport::{Endpoint, PeerAddr, Transport};
use std::collections::HashSet;
use std::fmt;
use std::time::Duration;
use tokio::det;
use tokio::sim;

/// Messages sent on each reliable stream per schedule.
const N_MSGS: u32 = 5;
/// Pipelined RPC calls started per schedule.
const N_CALLS: usize = 3;
/// Virtual-time budget for post-fault convergence (T3).
const CONVERGE_BUDGET: Duration = Duration::from_secs(3);
/// Virtual-time budget for reaching quiescence after convergence (T4).
const QUIESCE_BUDGET: Duration = Duration::from_millis(200);
/// Per-call RPC timeout (virtual).
const RPC_TIMEOUT: Duration = Duration::from_millis(500);

/// One injected fault, fired when the driver reaches a given action index.
#[derive(Debug, Clone, Copy)]
enum Fault {
    /// Break every sim connection (wire-level reset, both directions).
    CutAll,
    /// Break one connection by establishment order.
    CutConn(usize),
    /// Partial write: direction of connection `idx` breaks after `after`
    /// more bytes — mid length-prefix, mid header, or mid payload
    /// depending on `after`.
    CutAfter {
        idx: usize,
        client_to_server: bool,
        after: usize,
    },
    /// Local hard-kill of one node's connections (cancel handles), as the
    /// process-respawn path does.
    KillNode(Which),
    /// Drop every frame queued for `stream` on one node — loses buffered
    /// ACK/NACK control traffic, forcing RTO + duplicate re-ACK recovery.
    DrainStream(Which, u16),
}

/// Which endpoint a node-local fault targets.
#[derive(Debug, Clone, Copy)]
enum Which {
    A,
    B,
}

/// A named fault schedule: optionally refuse the first dials, then fire
/// faults at fixed driver-action indices. Plans are static so a witness's
/// `plan=` token alone pins the fault schedule.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Stable name, printed in witnesses and accepted by [`replay`].
    pub name: &'static str,
    refuse_first: u32,
    fires: &'static [(u32, Fault)],
}

/// The built-in fault-plan matrix: reset at early/mid/late protocol
/// points, both wire-level and node-local, partial writes at each frame
/// boundary, refused dials, and control-traffic loss.
pub fn plans() -> &'static [FaultPlan] {
    const PLANS: &[FaultPlan] = &[
        FaultPlan {
            name: "none",
            refuse_first: 0,
            fires: &[],
        },
        FaultPlan {
            name: "reset_wire_early",
            refuse_first: 0,
            fires: &[(2, Fault::CutAll)],
        },
        FaultPlan {
            name: "reset_wire_mid",
            refuse_first: 0,
            fires: &[(8, Fault::CutAll)],
        },
        FaultPlan {
            name: "reset_wire_late",
            refuse_first: 0,
            fires: &[(20, Fault::CutAll)],
        },
        FaultPlan {
            name: "reset_double",
            refuse_first: 0,
            fires: &[(4, Fault::CutAll), (14, Fault::CutAll)],
        },
        FaultPlan {
            name: "reset_local_a",
            refuse_first: 0,
            fires: &[(8, Fault::KillNode(Which::A))],
        },
        FaultPlan {
            name: "reset_local_b",
            refuse_first: 0,
            fires: &[(8, Fault::KillNode(Which::B))],
        },
        FaultPlan {
            name: "partial_len_prefix",
            refuse_first: 0,
            fires: &[(
                3,
                Fault::CutAfter {
                    idx: 0,
                    client_to_server: true,
                    after: 2,
                },
            )],
        },
        FaultPlan {
            name: "partial_header",
            refuse_first: 0,
            fires: &[(
                3,
                Fault::CutAfter {
                    idx: 0,
                    client_to_server: true,
                    after: 15,
                },
            )],
        },
        FaultPlan {
            name: "partial_reply",
            refuse_first: 0,
            fires: &[(
                8,
                Fault::CutAfter {
                    idx: 0,
                    client_to_server: false,
                    after: 6,
                },
            )],
        },
        FaultPlan {
            name: "dial_refused",
            refuse_first: 2,
            fires: &[],
        },
        FaultPlan {
            name: "reset_then_cut_b_dial",
            refuse_first: 0,
            fires: &[(6, Fault::CutConn(1)), (12, Fault::CutAll)],
        },
        FaultPlan {
            name: "drain_acks",
            refuse_first: 0,
            fires: &[(10, Fault::DrainStream(Which::A, STREAM_AB))],
        },
    ];
    PLANS
}

/// Configuration for one [`explore`] sweep.
#[derive(Debug, Clone, Copy)]
pub struct AsyncCheckConfig {
    /// Seeds explored per fault plan.
    pub seeds_per_plan: u64,
    /// First seed; seed `base_seed + i` is used for the i-th run of every
    /// plan, so witnesses stay replayable from `(plan, seed)` alone.
    pub base_seed: u64,
    /// Poll budget per schedule; exhaustion is a T4 (livelock) verdict.
    pub step_budget: u64,
    /// Chooser-driven driver actions per schedule before convergence.
    pub driver_ops: u32,
    /// Stop collecting after this many witnesses (exploration continues).
    pub max_witnesses: usize,
}

impl Default for AsyncCheckConfig {
    fn default() -> AsyncCheckConfig {
        AsyncCheckConfig {
            seeds_per_plan: 6,
            base_seed: 0xf7c0_0001,
            step_budget: 200_000,
            driver_ops: 60,
            max_witnesses: 8,
        }
    }
}

impl AsyncCheckConfig {
    /// The PR-gate configuration: ≥ 1000 distinct schedules across the
    /// plan matrix (13 plans × 96 seeds).
    pub fn gate() -> AsyncCheckConfig {
        AsyncCheckConfig {
            seeds_per_plan: 96,
            ..AsyncCheckConfig::default()
        }
    }

    /// The nightly deep-exploration configuration.
    pub fn deep() -> AsyncCheckConfig {
        AsyncCheckConfig {
            seeds_per_plan: 512,
            ..AsyncCheckConfig::default()
        }
    }
}

/// A failed schedule, replayable via [`replay`] from its `Display` form.
#[derive(Debug, Clone)]
pub struct TransportWitness {
    /// Fault-plan name ([`FaultPlan::name`]).
    pub plan: String,
    /// The det-mode seed that reproduces the schedule.
    pub seed: u64,
    /// Which property failed: `"T1"`..`"T4"`.
    pub property: &'static str,
    /// Human-readable failure detail.
    pub detail: String,
}

impl fmt::Display for TransportWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "plan={} seed={:#018x} property={}: {}",
            self.plan, self.seed, self.property, self.detail
        )
    }
}

/// Outcome of an [`explore`] sweep.
#[derive(Debug, Default)]
pub struct TransportReport {
    /// Schedules executed (plans × seeds).
    pub schedules: u64,
    /// Distinct `(plan, choice-trace)` fingerprints among them.
    pub distinct_traces: usize,
    /// Total executor polls across all schedules.
    pub total_steps: u64,
    /// Failing schedules (empty on a clean sweep), capped at
    /// [`AsyncCheckConfig::max_witnesses`].
    pub witnesses: Vec<TransportWitness>,
}

impl TransportReport {
    /// True when every schedule satisfied T1–T4.
    pub fn passed(&self) -> bool {
        self.witnesses.is_empty()
    }
}

impl fmt::Display for TransportReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "async-transport check: {} schedules ({} distinct traces), {} steps: {}",
            self.schedules,
            self.distinct_traces,
            self.total_steps,
            if self.passed() { "PASS" } else { "FAIL" }
        )?;
        for w in &self.witnesses {
            writeln!(f, "  {w}")?;
        }
        Ok(())
    }
}

const STREAM_AB: u16 = 7;
const STREAM_BA: u16 = 8;
const STREAM_RPC: u16 = 9;

/// Explore the full plan matrix under `cfg`, running every schedule
/// against the real socket backend. Deterministic: equal configs produce
/// equal reports.
pub fn explore(cfg: &AsyncCheckConfig) -> TransportReport {
    let mut report = TransportReport::default();
    let mut traces: HashSet<(usize, u64)> = HashSet::new();
    for (pi, plan) in plans().iter().enumerate() {
        for s in 0..cfg.seeds_per_plan {
            let seed = cfg.base_seed.wrapping_add(s);
            let (stats, failure) = run_schedule(plan, seed, cfg);
            report.schedules += 1;
            report.total_steps += stats.steps;
            traces.insert((pi, stats.trace_hash));
            if let Some(w) = failure {
                if report.witnesses.len() < cfg.max_witnesses {
                    report.witnesses.push(w);
                }
            }
        }
    }
    report.distinct_traces = traces.len();
    report
}

/// Re-run one schedule from a printed witness string (`plan=<name>
/// seed=<hex>`; other tokens are ignored). Returns the reproduced witness,
/// or `None` if the schedule now passes.
pub fn replay(spec: &str) -> Result<Option<TransportWitness>, String> {
    let mut plan_name = None;
    let mut seed = None;
    for tok in spec.split_whitespace() {
        if let Some(p) = tok.strip_prefix("plan=") {
            plan_name = Some(p.to_string());
        } else if let Some(sv) = tok.strip_prefix("seed=") {
            let sv = sv.trim_start_matches("0x");
            seed = Some(u64::from_str_radix(sv, 16).map_err(|e| format!("bad seed {sv:?}: {e}"))?);
        }
    }
    let plan_name = plan_name.ok_or("witness spec missing plan= token")?;
    let seed = seed.ok_or("witness spec missing seed= token")?;
    let plan = plans()
        .iter()
        .find(|p| p.name == plan_name)
        .ok_or_else(|| format!("unknown fault plan {plan_name:?}"))?;
    let (_, failure) = run_schedule(plan, seed, &AsyncCheckConfig::default());
    Ok(failure)
}

struct RunStats {
    steps: u64,
    trace_hash: u64,
}

struct CallSlot {
    req: String,
    pending: Option<ftc_net::sock::PendingCall>,
    outcome: Option<Result<Bytes, ftc_net::rpc::RpcError>>,
}

/// Drive one full schedule: wire two nodes over sim sockets, run the
/// chooser-picked driver actions with the plan's faults fired at their
/// action indices, then converge and check T1–T4.
fn run_schedule(
    plan: &FaultPlan,
    seed: u64,
    cfg: &AsyncCheckConfig,
) -> (RunStats, Option<TransportWitness>) {
    // Declared first so it drops last: task futures (which hold the nodes'
    // shared state) are torn down only after the local handles go away.
    let _guard = det::enter(seed, cfg.step_budget);
    let fail = |property: &'static str, detail: String| TransportWitness {
        plan: plan.name.to_string(),
        seed,
        property,
        detail,
    };

    if plan.refuse_first > 0 {
        sim::refuse_next("chk-b", plan.refuse_first);
    }
    let addr_a = PeerAddr::Sim("chk-a".to_string());
    let addr_b = PeerAddr::Sim("chk-b".to_string());
    let node_a = SockNode::bind(&addr_a).expect("bind sim a");
    let node_b = SockNode::bind(&addr_b).expect("bind sim b");
    let ta = SockTransport::new(node_a.clone());
    let tb = SockTransport::new(node_b.clone());
    let ep_a = Endpoint::sock(addr_a);
    let ep_b = Endpoint::sock(addr_b);

    // Two reliable streams in opposite directions plus a pipelined RPC
    // channel, all multiplexed over the same connection pair.
    let mut tx_ab = ta.open_tx(&ep_b, STREAM_AB);
    let mut rx_ab = tb.open_rx(&ep_b, STREAM_AB);
    let mut tx_ba = tb.open_tx(&ep_a, STREAM_BA);
    let mut rx_ba = ta.open_rx(&ep_a, STREAM_BA);
    let caller = SockRpcCaller::connect(&node_a, &ep_b, STREAM_RPC);
    let mut responder = tb.rpc_responder(&ep_b, STREAM_RPC);

    let mut sent_a = 0u32;
    let mut sent_b = 0u32;
    let mut got_a: Vec<u32> = Vec::new(); // delivered on b from a
    let mut got_b: Vec<u32> = Vec::new(); // delivered on a from b
    let mut calls: Vec<CallSlot> = Vec::new();
    let mut handler = |req: Bytes| {
        let mut out = BytesMut::from(req.as_ref());
        out.extend_from_slice(b"-pong");
        out.freeze()
    };

    let payload = |i: u32| BytesMut::from(&i.to_be_bytes()[..]);
    let read_u32 = |b: &[u8]| u32::from_be_bytes(b[..4].try_into().expect("4-byte payload"));

    macro_rules! drain {
        ($rx:expr, $into:expr) => {
            while let Ok(Some(p)) = $rx.recv_timeout(Duration::ZERO) {
                $into.push(read_u32(&p));
            }
        };
    }
    macro_rules! pump_calls {
        () => {
            for c in calls.iter_mut() {
                if let Some(pc) = c.pending.as_mut() {
                    if let Some(out) = pc.try_complete() {
                        c.outcome = Some(out);
                        c.pending = None;
                    }
                }
            }
        };
    }

    // Chooser-driven driver phase: faults fire at fixed action indices so
    // the plan name alone pins *when* each fault lands relative to the
    // driver's protocol progress.
    for op in 0..cfg.driver_ops {
        for (at, fault) in plan.fires {
            if *at == op {
                apply_fault(*fault, &node_a, &node_b);
            }
        }
        match det::choose(9) {
            0 => {
                if sent_a < N_MSGS {
                    tx_ab.send(payload(sent_a)).expect("send a->b");
                    sent_a += 1;
                }
            }
            1 => {
                if sent_b < N_MSGS {
                    tx_ba.send(payload(sent_b)).expect("send b->a");
                    sent_b += 1;
                }
            }
            2 => {
                tx_ab.poll().expect("poll a->b");
                tx_ba.poll().expect("poll b->a");
            }
            3 => drain!(rx_ab, got_a),
            4 => drain!(rx_ba, got_b),
            5 => {
                if calls.len() < N_CALLS {
                    let req = format!("ping{}", calls.len());
                    let pc = caller.call_start(Bytes::copy_from_slice(req.as_bytes()), RPC_TIMEOUT);
                    calls.push(CallSlot {
                        req,
                        pending: Some(pc),
                        outcome: None,
                    });
                } else {
                    pump_calls!();
                }
            }
            6 => {
                let _ = responder.serve_next_bytes(Duration::from_millis(1), &mut handler);
            }
            7 => {
                det::step();
            }
            _ => det::advance(Duration::from_millis(2)),
        }
        if det::budget_exhausted() {
            return (
                stats(),
                Some(fail(
                    "T4",
                    format!("step budget exhausted during driver phase (op {op})"),
                )),
            );
        }
    }

    // Finish the workload regardless of what the chooser got to.
    while sent_a < N_MSGS {
        tx_ab.send(payload(sent_a)).expect("send a->b");
        sent_a += 1;
    }
    while sent_b < N_MSGS {
        tx_ba.send(payload(sent_b)).expect("send b->a");
        sent_b += 1;
    }
    while calls.len() < N_CALLS {
        let req = format!("ping{}", calls.len());
        let pc = caller.call_start(Bytes::copy_from_slice(req.as_bytes()), RPC_TIMEOUT);
        calls.push(CallSlot {
            req,
            pending: Some(pc),
            outcome: None,
        });
    }

    // Convergence phase (T3/T4): pump everything under a virtual-time
    // budget. The reliable layer's RTO + redial must recover whatever the
    // fault schedule destroyed.
    let conv_deadline = det::now_ns() + CONVERGE_BUDGET.as_nanos() as u64;
    loop {
        let streams_done = got_a.len() == N_MSGS as usize && got_b.len() == N_MSGS as usize;
        let calls_done = calls.iter().all(|c| c.outcome.is_some());
        if streams_done && calls_done {
            break;
        }
        if det::budget_exhausted() {
            return (
                stats(),
                Some(fail(
                    "T4",
                    format!(
                        "step budget exhausted before convergence \
                         (a->b {}/{N_MSGS}, b->a {}/{N_MSGS})",
                        got_a.len(),
                        got_b.len()
                    ),
                )),
            );
        }
        if det::now_ns() > conv_deadline {
            return (
                stats(),
                Some(fail(
                    "T3",
                    format!(
                        "no convergence within {CONVERGE_BUDGET:?} virtual time: \
                         a->b delivered {}/{N_MSGS} (in flight {}), \
                         b->a delivered {}/{N_MSGS} (in flight {}), \
                         calls unresolved {}",
                        got_a.len(),
                        tx_ab.in_flight(),
                        got_b.len(),
                        tx_ba.in_flight(),
                        calls.iter().filter(|c| c.outcome.is_none()).count()
                    ),
                )),
            );
        }
        tx_ab.poll().expect("poll a->b");
        tx_ba.poll().expect("poll b->a");
        drain!(rx_ab, got_a);
        drain!(rx_ba, got_b);
        let _ = responder.serve_next_bytes(Duration::from_millis(1), &mut handler);
        pump_calls!();
        if !det::step() {
            det::advance(Duration::from_millis(1));
        }
    }

    // T1: exactly-once in-order delivery on both streams.
    let expect: Vec<u32> = (0..N_MSGS).collect();
    if got_a != expect {
        return (
            stats(),
            Some(fail(
                "T1",
                format!("a->b stream delivered {got_a:?}, want {expect:?}"),
            )),
        );
    }
    if got_b != expect {
        return (
            stats(),
            Some(fail(
                "T1",
                format!("b->a stream delivered {got_b:?}, want {expect:?}"),
            )),
        );
    }

    // T2: every completed call's response is its own; on fault-free plans
    // a timeout is itself a failure.
    let faultless = plan.fires.is_empty() && plan.refuse_first == 0;
    for c in &calls {
        match c.outcome.as_ref().expect("calls resolved above") {
            Ok(resp) => {
                let want = format!("{}-pong", c.req);
                if resp.as_ref() != want.as_bytes() {
                    return (
                        stats(),
                        Some(fail(
                            "T2",
                            format!(
                                "call {:?} got response {:?}, want {want:?}",
                                c.req,
                                String::from_utf8_lossy(resp)
                            ),
                        )),
                    );
                }
            }
            Err(e) if faultless => {
                return (
                    stats(),
                    Some(fail(
                        "T2",
                        format!("call {:?} failed ({e:?}) on a fault-free plan", c.req),
                    )),
                );
            }
            Err(_) => {} // a request lost to an injected reset may time out
        }
    }

    // T4: the system must quiesce — nothing runnable unless virtual time
    // moves (periodic idle timers excluded by `quiesced_now`).
    let quiesced = det::block_until(Some(QUIESCE_BUDGET), || det::quiesced_now().then_some(()));
    if quiesced.is_none() {
        return (
            stats(),
            Some(fail(
                "T4",
                format!(
                    "executor did not quiesce within {QUIESCE_BUDGET:?} after convergence \
                     (budget exhausted: {})",
                    det::budget_exhausted()
                ),
            )),
        );
    }

    (stats(), None)
}

fn stats() -> RunStats {
    RunStats {
        steps: det::steps(),
        trace_hash: det::trace_hash(),
    }
}

fn apply_fault(fault: Fault, node_a: &SockNode, node_b: &SockNode) {
    match fault {
        Fault::CutAll => sim::cut_all(),
        Fault::CutConn(idx) => sim::cut_conn(idx),
        Fault::CutAfter {
            idx,
            client_to_server,
            after,
        } => sim::cut_conn_after(idx, client_to_server, after),
        Fault::KillNode(Which::A) => node_a.kill_connections(),
        Fault::KillNode(Which::B) => node_b.kill_connections(),
        Fault::DrainStream(Which::A, stream) => {
            node_a.drain_stream(stream);
        }
        Fault::DrainStream(Which::B, stream) => {
            node_b.drain_stream(stream);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_faultless_schedule_passes() {
        let plan = &plans()[0];
        assert_eq!(plan.name, "none");
        let (st, failure) = run_schedule(plan, 1, &AsyncCheckConfig::default());
        assert!(failure.is_none(), "{}", failure.unwrap());
        assert!(st.steps > 0, "executor must actually run tasks");
    }

    #[test]
    fn same_schedule_same_trace() {
        let plan = &plans()[2];
        let cfg = AsyncCheckConfig::default();
        let (a, _) = run_schedule(plan, 42, &cfg);
        let (b, _) = run_schedule(plan, 42, &cfg);
        assert_eq!(a.trace_hash, b.trace_hash, "same (plan, seed) must replay");
        let (c, _) = run_schedule(plan, 43, &cfg);
        assert_ne!(a.trace_hash, c.trace_hash, "seeds must diverge");
    }

    #[test]
    fn witness_spec_round_trips() {
        let w = TransportWitness {
            plan: "reset_wire_mid".into(),
            seed: 0xdead_beef,
            property: "T3",
            detail: "x".into(),
        };
        let spec = w.to_string();
        // Parsing back must find the plan and seed even with extra tokens.
        let err = replay(&spec);
        assert!(err.is_ok(), "{err:?}");
    }

    #[test]
    fn replay_rejects_garbage() {
        assert!(replay("plan=does_not_exist seed=0x1").is_err());
        assert!(replay("seed=0x1").is_err());
        assert!(replay("plan=none").is_err());
        assert!(replay("plan=none seed=0xzz").is_err());
    }
}
