//! Offline serializability checking of a committed history.
//!
//! The head store's commit path (strict 2PL, paper §4.2) stamps every
//! writing transaction with the *pre-increment* sequence number of each
//! partition it touched. Those stamps define, per partition, a total order
//! over the transactions that touched it. Serializability of the whole
//! history is equivalent to the union of these per-partition orders — the
//! *direct serialization graph* (DSG) — being acyclic: a topological order
//! of the DSG is a serial execution equivalent to what actually ran.
//!
//! The checker therefore verifies three things:
//!
//! 1. **Exclusive stamps** — no two transactions claim the same
//!    `(partition, seq)` pair. A duplicate means two transactions held the
//!    same partition "exclusively" at the same sequence point, i.e. the
//!    2PL lock was not actually exclusive.
//! 2. **Gapless stamps** — per partition, the observed sequence numbers
//!    are contiguous from the smallest observed. A gap means a committed
//!    transaction's log was lost (the replication invariant of §4.3
//!    cannot hold if the head itself skipped a sequence number).
//! 3. **Acyclic DSG** — a cycle is a serializability violation: no serial
//!    order can agree with every partition's commit order.

use crate::history::History;
use ftc_stm::SeqNo;
use std::collections::HashMap;

/// A single audit violation, with the transaction indices involved
/// (indices into [`History::txns`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two transactions claim the same pre-increment sequence number on
    /// one partition: partition locking was not exclusive.
    DuplicateSeq {
        /// The partition with the duplicated stamp.
        partition: u16,
        /// The duplicated sequence number.
        seq: SeqNo,
        /// The two claiming transactions.
        txns: (usize, usize),
    },
    /// A partition's observed sequence numbers skip `missing`: a committed
    /// log is absent from the history.
    SeqGap {
        /// The partition with the gap.
        partition: u16,
        /// The absent sequence number.
        missing: SeqNo,
    },
    /// The direct serialization graph has a cycle: the history is not
    /// serializable.
    Cycle {
        /// One witness cycle, as transaction indices (first ≠ last; the
        /// edge from the last back to the first closes the cycle).
        txns: Vec<usize>,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::DuplicateSeq {
                partition,
                seq,
                txns,
            } => write!(
                f,
                "partition {partition}: txns #{} and #{} both claim seq {seq}",
                txns.0, txns.1
            ),
            Violation::SeqGap { partition, missing } => {
                write!(f, "partition {partition}: no txn claims seq {missing}")
            }
            Violation::Cycle { txns } => write!(f, "serialization cycle through txns {txns:?}"),
        }
    }
}

/// Outcome of [`check`].
#[derive(Debug, Clone)]
pub struct SerializabilityReport {
    /// Number of transactions audited.
    pub txns: usize,
    /// Number of DSG edges derived from the per-partition orders.
    pub edges: usize,
    /// All violations found (empty = the history is serializable).
    pub violations: Vec<Violation>,
    /// A witness serial order (topological order of the DSG), present iff
    /// no violations were found.
    pub serial_order: Option<Vec<usize>>,
}

impl SerializabilityReport {
    /// True iff the history passed every check.
    pub fn is_serializable(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Audits `history` for serializability. See the module docs for the
/// checks performed.
pub fn check(history: &History) -> SerializabilityReport {
    let n = history.txns.len();
    let mut violations = Vec::new();

    // Per-partition claim lists: partition -> sorted [(seq, txn index)].
    let mut claims: HashMap<u16, Vec<(SeqNo, usize)>> = HashMap::new();
    for (i, t) in history.txns.iter().enumerate() {
        for &(p, seq) in t.deps.entries() {
            claims.entry(p).or_default().push((seq, i));
        }
    }

    // DSG adjacency: edge a -> b means "a serialized before b".
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indegree: Vec<usize> = vec![0; n];
    let mut edges = 0;
    let mut parts: Vec<_> = claims.into_iter().collect();
    parts.sort_unstable_by_key(|(p, _)| *p);
    for (p, mut list) in parts {
        list.sort_unstable();
        for w in list.windows(2) {
            let ((s0, t0), (s1, t1)) = (w[0], w[1]);
            if s0 == s1 {
                violations.push(Violation::DuplicateSeq {
                    partition: p,
                    seq: s0,
                    txns: (t0, t1),
                });
                continue;
            }
            if s1 != s0 + 1 {
                violations.push(Violation::SeqGap {
                    partition: p,
                    missing: s0 + 1,
                });
            }
            // The consecutive edges of a total order imply all others.
            succs[t0].push(t1);
            indegree[t1] += 1;
            edges += 1;
        }
    }

    // Kahn's algorithm: a complete elimination is a witness serial order;
    // leftovers contain (and only contain) cycles.
    let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = ready.pop() {
        order.push(i);
        for &j in &succs[i] {
            indegree[j] -= 1;
            if indegree[j] == 0 {
                ready.push(j);
            }
        }
    }
    if order.len() < n {
        violations.push(Violation::Cycle {
            txns: witness_cycle(&succs, &indegree),
        });
    }

    let serial_order = violations.is_empty().then_some(order);
    SerializabilityReport {
        txns: n,
        edges,
        violations,
        serial_order,
    }
}

/// Extracts one concrete cycle from the sub-graph of nodes Kahn's
/// algorithm could not eliminate (`indegree > 0`): walking successors
/// within that sub-graph must eventually revisit a node.
fn witness_cycle(succs: &[Vec<usize>], indegree: &[usize]) -> Vec<usize> {
    let start = indegree
        .iter()
        .position(|&d| d > 0)
        .expect("a cycle exists");
    let mut path = vec![start];
    let mut seen: HashMap<usize, usize> = HashMap::new(); // node -> path pos
    seen.insert(start, 0);
    let mut cur = start;
    loop {
        let next = *succs[cur]
            .iter()
            .find(|&&j| indegree[j] > 0)
            .expect("cyclic nodes keep a cyclic successor");
        if let Some(&pos) = seen.get(&next) {
            return path.split_off(pos);
        }
        seen.insert(next, path.len());
        path.push(next);
        cur = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_stm::DepVector;

    fn dv(entries: &[(u16, SeqNo)]) -> DepVector {
        DepVector::from_entries(entries.to_vec()).unwrap()
    }

    #[test]
    fn empty_history_is_serializable() {
        let r = check(&History::default());
        assert!(r.is_serializable());
        assert_eq!(r.serial_order.as_deref(), Some(&[][..]));
    }

    #[test]
    fn clean_chain_is_serializable() {
        // Three txns on one partition, seqs 0,1,2.
        let h = History::from_logs((0..3).map(|s| (dv(&[(0, s)]), vec![])));
        let r = check(&h);
        assert!(r.is_serializable(), "{:?}", r.violations);
        assert_eq!(r.edges, 2);
        assert_eq!(r.serial_order, Some(vec![0, 1, 2]));
    }

    #[test]
    fn duplicate_seq_is_rejected() {
        let h = History::from_logs([(dv(&[(0, 0)]), vec![]), (dv(&[(0, 0)]), vec![])]);
        let r = check(&h);
        assert!(matches!(
            r.violations[..],
            [Violation::DuplicateSeq {
                partition: 0,
                seq: 0,
                ..
            }]
        ));
    }

    #[test]
    fn gap_is_rejected() {
        let h = History::from_logs([(dv(&[(4, 0)]), vec![]), (dv(&[(4, 2)]), vec![])]);
        let r = check(&h);
        assert!(matches!(
            r.violations[..],
            [Violation::SeqGap {
                partition: 4,
                missing: 1
            }]
        ));
    }

    #[test]
    fn cross_partition_cycle_is_rejected() {
        // A before B on p0, B before A on p1: classic non-serializable pair.
        let h = History::from_logs([
            (dv(&[(0, 0), (1, 1)]), vec![]),
            (dv(&[(0, 1), (1, 0)]), vec![]),
        ]);
        let r = check(&h);
        assert!(!r.is_serializable());
        let cycle = r
            .violations
            .iter()
            .find_map(|v| match v {
                Violation::Cycle { txns } => Some(txns.clone()),
                _ => None,
            })
            .expect("cycle reported");
        let mut sorted = cycle.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1]);
        assert!(r.serial_order.is_none());
    }

    #[test]
    fn disjoint_partitions_allow_any_order() {
        let h = History::from_logs([(dv(&[(0, 0)]), vec![]), (dv(&[(1, 0)]), vec![])]);
        let r = check(&h);
        assert!(r.is_serializable());
        assert_eq!(r.edges, 0);
    }

    #[test]
    fn nonzero_base_seq_is_fine() {
        // A recorder attached to a warm store starts above zero.
        let h = History::from_logs((5..9).map(|s| (dv(&[(2, s)]), vec![])));
        assert!(check(&h).is_serializable());
    }
}
