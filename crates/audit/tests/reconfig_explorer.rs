//! The reconfiguration model checker's gate tests: the full PR-gate
//! crash-during-reconfiguration matrix (≥ 1000 schedules) must be
//! violation-free on the real handover/splice engines, witnesses must be
//! replayable from their labels, and the deep matrix runs nightly
//! (opt-in via `FTC_RECONFIG_DEEP=1`).
//!
//! The `reconfig-sabotage` feature deliberately breaks the release phase,
//! so these positive gates are compiled out under it — the sabotage
//! expectation lives in `reconfig_sabotage.rs`, run as a separate cargo
//! invocation by `check.sh --reconfig-check`.

#![cfg(not(feature = "reconfig-sabotage"))]

use ftc_audit::{explore_reconfig, replay, ReconfigCheckConfig};

/// The PR gate: every migrate/scale/splice crash case × all 24
/// interleavings of the steppable actors, checking I1–I6 on each.
#[test]
fn pr_gate_reconfig_exploration_is_violation_free() {
    let cfg = ReconfigCheckConfig::pr_gate();
    let report = explore_reconfig(&cfg);
    eprintln!("reconfig-check gate: {}", report.summary());
    assert!(
        report.ok(),
        "invariant violations on the current implementation:\n{}",
        report
            .witnesses
            .iter()
            .map(|w| format!("  {w}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.schedules >= 1000,
        "the PR gate must explore at least 1000 distinct schedules: {}",
        report.summary()
    );
    assert_eq!(report.schedules, report.crash_cases * report.interleavings);
    assert_eq!(report.interleavings, 24);
    // 50 of the 56 cases arm a crash, and every armed point is reachable
    // (the executor records a "coverage" witness otherwise, failing ok()).
    assert!(
        report.crashes_fired > report.schedules / 2,
        "most schedules must execute their participant crash: {}",
        report.summary()
    );
    assert!(
        report.retries > 0,
        "rolled-back attempts must be exercised and retried: {}",
        report.summary()
    );
    assert!(
        report.ops_completed > 0 && report.ops_completed < report.schedules,
        "both committed and §5.2-recovered outcomes must occur: {}",
        report.summary()
    );
}

/// Witness labels double as replay handles: re-running any schedule from
/// its `case/permN` label must reproduce the same (violation-free) run.
#[test]
fn schedules_replay_from_their_labels() {
    let cfg = ReconfigCheckConfig::pr_gate();
    for label in [
        "migrate@1/clean/perm3",
        "scale@1/crash[destination@transfer#2]/perm17",
        "splice-in@1/crash[orchestrator@release#0]/perm0",
        "splice-out@1/crash[source@transfer#1]/perm23",
    ] {
        let report = replay(&cfg, label);
        assert_eq!(report.schedules, 1, "{label}");
        assert!(
            report.ok(),
            "replayed schedule {label} found witnesses: {:#?}",
            report.witnesses
        );
    }
}

/// The deep matrix: every operation at every position with a denser
/// transfer-trigger grid. Heavier than the PR gate, so it only runs when
/// `FTC_RECONFIG_DEEP=1` (the nightly CI job sets it).
#[test]
fn deep_reconfig_exploration_is_violation_free() {
    if std::env::var("FTC_RECONFIG_DEEP")
        .map(|v| v != "1")
        .unwrap_or(true)
    {
        eprintln!("skipping deep reconfig exploration (set FTC_RECONFIG_DEEP=1 to run)");
        return;
    }
    let cfg = ReconfigCheckConfig::nightly_deep();
    let report = explore_reconfig(&cfg);
    eprintln!("reconfig-check deep: {}", report.summary());
    assert!(
        report.ok(),
        "invariant violations in the deep matrix:\n{}",
        report
            .witnesses
            .iter()
            .map(|w| format!("  {w}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.schedules > 3000,
        "deep mode must widen the matrix: {}",
        report.summary()
    );
}
