//! The protocol model checker's gate tests: exhaustive `f = 1` exploration
//! must be violation-free on the real implementation, a sabotaged buffer
//! must yield an I1 witness, and the bounded `f = 2` matrix runs nightly
//! (opt-in via `FTC_PROTOCOL_F2=1`).

use ftc_audit::{explore, ProtocolCheckConfig};

/// Exhaustively explores every single-crash schedule for the 3-middlebox
/// `f = 1` chain: all 120 interleavings of the five steppable actors ×
/// the full crash matrix (every victim × every step phase × two triggers,
/// plus quiesced kills, recovery aborts, and source-death retries).
#[test]
fn f1_exhaustive_exploration_is_violation_free() {
    let cfg = ProtocolCheckConfig::f1_exhaustive();
    let report = explore(&cfg);
    eprintln!("protocol-check f=1: {}", report.summary());
    assert!(
        report.ok(),
        "invariant violations on the current implementation:\n{}",
        report
            .witnesses
            .iter()
            .map(|w| format!("  {w}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The matrix really is exhaustive: 120 interleavings of
    // [R0, R1, R2, Buffer, FwdFeedback], and every crash case in it.
    assert_eq!(report.interleavings, 120);
    assert!(
        report.crash_cases >= 25,
        "expected the full f=1 crash matrix, got {} cases",
        report.crash_cases
    );
    assert_eq!(report.schedules, report.crash_cases * report.interleavings);
    assert!(
        report.crashes_fired > report.schedules / 2,
        "most schedules must execute their crash: {}",
        report.summary()
    );
    assert!(report.steps > report.schedules, "{}", report.summary());
}

/// Negative fixture: a buffer that releases one commit-vector entry early
/// (`max[p] ≥ seq` instead of the strict `max[p] > seq`) frees packets
/// whose wrapped-group update has not yet completed the feedback loop —
/// the checker must produce an I1 witness naming the lagging replica.
#[test]
fn sabotaged_buffer_produces_i1_witness() {
    let cfg = ProtocolCheckConfig {
        sabotage_buffer: true,
        perm_limit: Some(6),
        ..ProtocolCheckConfig::f1_exhaustive()
    };
    let report = explore(&cfg);
    eprintln!("protocol-check sabotage: {}", report.summary());
    assert!(
        !report.ok(),
        "the sabotaged release rule must be caught: {}",
        report.summary()
    );
    let i1 = report
        .witnesses
        .iter()
        .find(|w| w.invariant == "I1")
        .expect("an I1 witness");
    assert!(
        i1.detail.contains("fewer than f+1 live copies"),
        "witness must explain the violation: {i1}"
    );
}

/// Bounded `f = 2` exploration (4 middleboxes, stride-sampled
/// interleavings, double-failure / fallback-fetch / recovery-abort cases).
/// Heavier than the PR gate, so it only runs when `FTC_PROTOCOL_F2=1`
/// (the nightly CI job sets it).
#[test]
fn f2_nightly_exploration_is_violation_free() {
    if std::env::var("FTC_PROTOCOL_F2")
        .map(|v| v != "1")
        .unwrap_or(true)
    {
        eprintln!("skipping f=2 exploration (set FTC_PROTOCOL_F2=1 to run)");
        return;
    }
    let cfg = ProtocolCheckConfig::f2_nightly();
    let report = explore(&cfg);
    eprintln!("protocol-check f=2: {}", report.summary());
    assert!(
        report.ok(),
        "invariant violations at f=2:\n{}",
        report
            .witnesses
            .iter()
            .map(|w| format!("  {w}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.crashes_fired > 0, "{}", report.summary());
}
