//! Migration transfer frames on the wire (the test `ftc_stm::migrate`'s
//! docs pin the codec contract to).
//!
//! A reconfiguration transfer ships one [`PartitionExport`] per flow
//! partition as the payload of an `ftc_packet::frame` DATA frame. Over a
//! real socket those frames arrive re-chunked arbitrarily and — when the
//! source dies mid-transfer — cut at any byte. The properties forced
//! here, over the PR-8 sim socket with its fault hooks
//! (`tokio::sim::cut_conn_after`):
//!
//! * a clean transfer round-trips **byte-identically**: every re-encoded
//!   export equals the bytes the source put on the wire, and the
//!   destination store re-exports to the same bytes;
//! * a torn transfer yields only whole, decodable frames — the cut tail
//!   never produces a phantom export, and every strict prefix of an
//!   export payload fails [`PartitionExport::decode`] with a typed error;
//! * imports are idempotent per partition, so re-sending everything on a
//!   fresh connection completes the migration byte-identically.

use bytes::Bytes;
use ftc_packet::frame::{self, kind, FrameDecoder};
use ftc_stm::{EngineKind, PartitionExport, StateBackend, StateBackendExt, StateStore};
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use tokio::runtime::Runtime;
use tokio::sim;

/// Unique sim names per case — the sim registry is thread-local and
/// never reset between proptest cases.
static NEXT_NAME: AtomicUsize = AtomicUsize::new(0);

fn fresh_name() -> String {
    format!("mig-frames-{}", NEXT_NAME.fetch_add(1, Ordering::Relaxed))
}

const PREFIXES: &[&str] = &["mon:", "gen:", "ids:", "lb:"];

/// A store populated with the generated writes, plus the wire form of
/// every partition export (the transfer the source would send).
fn source_and_wire(partitions: usize, writes: &[(u8, u16, u64)]) -> (StateStore, Vec<Bytes>) {
    let store = StateStore::new(partitions);
    for &(prefix, suffix, value) in writes {
        let key = Bytes::from(format!(
            "{}{:04x}",
            PREFIXES[prefix as usize % PREFIXES.len()],
            suffix
        ));
        store.transaction(|txn| {
            txn.write_u64(key.clone(), value)?;
            Ok(())
        });
    }
    let wire = (0..partitions as u16)
        .map(|p| store.export_partition(p).encode())
        .collect();
    (store, wire)
}

/// [`source_and_wire`], but over an arbitrary [`StateBackend`] engine.
fn backend_and_wire(
    kind: EngineKind,
    partitions: usize,
    writes: &[(u8, u16, u64)],
) -> (Arc<dyn StateBackend>, Vec<Bytes>) {
    let store = kind.build(partitions);
    for &(prefix, suffix, value) in writes {
        let key = Bytes::from(format!(
            "{}{:04x}",
            PREFIXES[prefix as usize % PREFIXES.len()],
            suffix
        ));
        store.transaction(|txn| {
            txn.write_u64(key.clone(), value)?;
            Ok(())
        });
    }
    let wire = (0..partitions as u16)
        .map(|p| store.export_partition(p).encode())
        .collect();
    (store, wire)
}

/// Frame every export as `[DATA, stream=partition, seq=export seq]`.
fn frame_exports(wire: &[Bytes]) -> Vec<Bytes> {
    wire.iter()
        .enumerate()
        .map(|(p, w)| {
            let seq = PartitionExport::decode(w).expect("self-encoded").seq;
            frame::encode(kind::DATA, p as u16, seq, w).freeze()
        })
        .collect()
}

/// Drains the reader until EOF/reset, feeding every chunk to `dec` and
/// collecting the whole frames that come out. Returns `false` if the
/// decoder reported a corrupt stream (torn connection).
async fn read_frames(
    rx: &mut tokio::net::OwnedReadHalf,
    dec: &mut FrameDecoder,
    out: &mut Vec<ftc_packet::frame::Frame>,
) -> bool {
    let mut buf = [0u8; 512];
    loop {
        match rx.read(&mut buf).await {
            Ok(0) | Err(_) => return true,
            Ok(n) => {
                dec.extend(&buf[..n]);
                loop {
                    match dec.next_frame() {
                        Ok(Some(f)) => out.push(f),
                        Ok(None) => break,
                        Err(_) => return false,
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Clean transfer: every partition's export crosses the sim socket
    /// and round-trips byte-identically into the destination store.
    #[test]
    fn exports_roundtrip_byte_identically_over_the_sim_socket(
        partitions in 1usize..8,
        writes in pvec((any::<u8>(), any::<u16>(), any::<u64>()), 0..32),
    ) {
        let (src, wire) = source_and_wire(partitions, &writes);
        let frames = frame_exports(&wire);
        let name = fresh_name();

        let rt = Runtime::new().unwrap();
        let got = rt.block_on(async {
            let listener = sim::SimListener::bind(&name).unwrap();
            let client = sim::connect(&name).unwrap();
            let (server, _) = listener.accept().await.unwrap();
            let (_cr, mut cw) = client.into_split();
            let (mut sr, _sw) = server.into_split();
            for f in &frames {
                cw.write_all(f).await.unwrap();
            }
            cw.shutdown().await.unwrap();
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            let clean = read_frames(&mut sr, &mut dec, &mut got).await;
            prop_assert!(clean, "clean stream must not decode as corrupt");
            prop_assert_eq!(dec.pending(), 0);
            got
        });

        prop_assert_eq!(got.len(), partitions);
        let dst = StateStore::new(partitions);
        for (f, original) in got.iter().zip(&wire) {
            // Byte-identical payload, and the decoded export re-encodes
            // to the same bytes.
            prop_assert_eq!(&f.payload[..], &original[..]);
            let ex = PartitionExport::decode(&f.payload).expect("whole frame decodes");
            prop_assert_eq!(&ex.encode()[..], &original[..]);
            prop_assert_eq!(ex.partition as usize, f.stream as usize);
            dst.import_partition(&ex);
        }
        // The destination's own exports reproduce the source's bytes.
        for (p, original) in wire.iter().enumerate() {
            prop_assert_eq!(&dst.export_partition(p as u16).encode()[..], &original[..]);
        }
        prop_assert_eq!(dst.snapshot(), src.snapshot());
        prop_assert_eq!(dst.seq_vector(), src.seq_vector());
    }

    /// Cross-engine migration (`ftc reconfig` moving a middlebox between
    /// engines): for the same committed history the 2PL and batched
    /// engines put **byte-identical** [`PartitionExport`] frames on the
    /// wire, and shipping one engine's frames over the sim socket into a
    /// destination running the *other* engine completes the migration —
    /// the destination re-exports the source's exact bytes.
    #[test]
    fn exports_cross_engines_byte_identically_over_the_sim_socket(
        partitions in 1usize..6,
        writes in pvec((any::<u8>(), any::<u16>(), any::<u64>()), 0..24),
        src_is_batched in any::<bool>(),
    ) {
        let (src_kind, dst_kind) = if src_is_batched {
            (EngineKind::Batched, EngineKind::TwoPl)
        } else {
            (EngineKind::TwoPl, EngineKind::Batched)
        };
        let (src, wire) = backend_and_wire(src_kind, partitions, &writes);

        // Engine-independence of the wire form: the twin engine, fed the
        // identical history, exports the identical bytes.
        let (_twin, twin_wire) = backend_and_wire(dst_kind, partitions, &writes);
        for (a, b) in wire.iter().zip(&twin_wire) {
            prop_assert_eq!(&a[..], &b[..], "{} vs {}", src_kind, dst_kind);
        }

        let frames = frame_exports(&wire);
        let name = fresh_name();
        let rt = Runtime::new().unwrap();
        let got = rt.block_on(async {
            let listener = sim::SimListener::bind(&name).unwrap();
            let client = sim::connect(&name).unwrap();
            let (server, _) = listener.accept().await.unwrap();
            let (_cr, mut cw) = client.into_split();
            let (mut sr, _sw) = server.into_split();
            for f in &frames {
                cw.write_all(f).await.unwrap();
            }
            cw.shutdown().await.unwrap();
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            let clean = read_frames(&mut sr, &mut dec, &mut got).await;
            prop_assert!(clean, "clean stream must not decode as corrupt");
            got
        });

        prop_assert_eq!(got.len(), partitions);
        let dst = dst_kind.build(partitions);
        for (f, original) in got.iter().zip(&wire) {
            prop_assert_eq!(&f.payload[..], &original[..]);
            dst.import_partition(&PartitionExport::decode(&f.payload).expect("whole frame"));
        }
        for (p, original) in wire.iter().enumerate() {
            prop_assert_eq!(
                &dst.export_partition(p as u16).encode()[..],
                &original[..],
                "{} -> {} re-export (partition {})", src_kind, dst_kind, p
            );
        }
        prop_assert_eq!(dst.snapshot(), src.snapshot());
        prop_assert_eq!(dst.seq_vector(), src.seq_vector());
    }

    /// Torn transfer: cut the connection after an arbitrary byte count.
    /// Only whole frames come out (each byte-identical), the torn tail
    /// yields no phantom export, and a resend on a fresh connection
    /// completes the migration.
    #[test]
    fn torn_transfer_yields_whole_frames_then_resumes(
        partitions in 1usize..6,
        writes in pvec((any::<u8>(), any::<u16>(), any::<u64>()), 1..24),
        cut_frac in 0.0f64..1.0,
        prefix_frac in 0.0f64..1.0,
    ) {
        let (src, wire) = source_and_wire(partitions, &writes);
        let frames = frame_exports(&wire);
        let total: usize = frames.iter().map(|f| f.len()).sum();
        let cut = 1 + ((total - 1) as f64 * cut_frac) as usize; // 1..=total-? always < total+1

        // Every strict prefix of an export payload is a typed decode
        // error — the codec can never be fooled by a torn frame body.
        let sample = &wire[(partitions - 1).min(wire.len() - 1)];
        if sample.len() > 1 {
            let cut_at = 1 + ((sample.len() - 2) as f64 * prefix_frac) as usize;
            prop_assert!(PartitionExport::decode(&sample[..cut_at]).is_err());
        }

        let name = fresh_name();
        let rt = Runtime::new().unwrap();
        let dst = StateStore::new(partitions);
        let (received, resumed) = rt.block_on(async {
            let listener = sim::SimListener::bind(&name).unwrap();
            let client = sim::connect(&name).unwrap();
            let idx = sim::conn_count() - 1;
            let (server, _) = listener.accept().await.unwrap();
            sim::cut_conn_after(idx, true, cut);
            let (_cr, mut cw) = client.into_split();
            let (mut sr, _sw) = server.into_split();
            for f in &frames {
                if cw.write_all(f).await.is_err() {
                    break; // connection died mid-write: source crashed
                }
            }
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            read_frames(&mut sr, &mut dec, &mut got).await;
            // Whatever follows the last whole frame must never decode:
            // the next poll yields "need more bytes" forever (or the
            // stream was already flagged corrupt above).
            if let Ok(tail) = dec.next_frame() {
                prop_assert!(tail.is_none(), "phantom frame out of a torn tail");
            }

            // The destination imports what landed, then the transfer is
            // retried in full on a fresh connection (imports are
            // idempotent, so the overlap is harmless).
            for f in &got {
                let ex = PartitionExport::decode(&f.payload).expect("whole frame");
                dst.import_partition(&ex);
            }

            let client2 = sim::connect(&name).unwrap();
            let (server2, _) = listener.accept().await.unwrap();
            let (_cr2, mut cw2) = client2.into_split();
            let (mut sr2, _sw2) = server2.into_split();
            for f in &frames {
                cw2.write_all(f).await.unwrap();
            }
            cw2.shutdown().await.unwrap();
            let mut dec2 = FrameDecoder::new();
            let mut got2 = Vec::new();
            let clean = read_frames(&mut sr2, &mut dec2, &mut got2).await;
            prop_assert!(clean, "retry stream must be clean");
            (got, got2)
        });

        // The torn run delivered a prefix of the frame sequence,
        // byte-identical as far as it got.
        prop_assert!(received.len() <= partitions);
        for (f, original) in received.iter().zip(&wire) {
            prop_assert_eq!(&f.payload[..], &original[..]);
        }

        prop_assert_eq!(resumed.len(), partitions);
        for (f, original) in resumed.iter().zip(&wire) {
            prop_assert_eq!(&f.payload[..], &original[..]);
            dst.import_partition(&PartitionExport::decode(&f.payload).unwrap());
        }
        prop_assert_eq!(dst.snapshot(), src.snapshot());
        prop_assert_eq!(dst.seq_vector(), src.seq_vector());
    }
}
