//! Static/dynamic agreement: a randomly generated chain deployment either
//! passes the static verifier ([`ftc_mbox::verify_deploy_spec`]) or the
//! dynamic checker finds a violation on at least one schedule — and never
//! both. Structurally infeasible topologies cannot be built as real chains
//! (the constructor pads and asserts), so the dynamic side explores them on
//! [`ftc_audit::check_abstract_deploy`]'s bounded abstract ring model;
//! feasible ones additionally run clean on the concrete model checker.

use ftc_audit::{check_abstract_deploy, explore, ProtocolCheckConfig};
use ftc_mbox::{verify_deploy_spec, DeploySpec, MbSpec};
use proptest::prelude::*;

fn arb_mbspec() -> impl Strategy<Value = MbSpec> {
    prop_oneof![
        (1usize..4).prop_map(|sharing_level| MbSpec::Monitor { sharing_level }),
        (8usize..128).prop_map(|state_size| MbSpec::Gen { state_size }),
        Just(MbSpec::Passthrough),
        Just(MbSpec::Firewall { rules: vec![] }),
    ]
}

fn arb_engine() -> impl Strategy<Value = String> {
    // Both real engines plus a typo: the agreement property must hold in
    // the unknown-engine direction too (static `unknown-engine` ⇔ dynamic
    // `no-engine`).
    prop_oneof![
        Just("twopl".to_string()),
        Just("batched".to_string()),
        Just("optimist".to_string()),
    ]
}

fn arb_raw_spec() -> impl Strategy<Value = DeploySpec> {
    (
        proptest::collection::vec(arb_mbspec(), 0..4),
        0usize..3,
        0usize..6,
        0usize..6,
        1usize..5,
        (1usize..5, arb_engine()),
    )
        .prop_map(
            |(middleboxes, f, ring_len, buffer_pos, partitions, (workers, engine))| DeploySpec {
                middleboxes,
                f,
                ring_len,
                buffer_pos,
                partitions,
                workers,
                engine,
            },
        )
}

proptest! {
    /// The agreement property, in both directions: statically rejected
    /// specs have a concrete dynamic counterexample schedule; statically
    /// accepted specs survive the bounded dynamic exploration.
    #[test]
    fn static_and_dynamic_verdicts_agree(spec in arb_raw_spec()) {
        let statically_ok = verify_deploy_spec(&spec).is_ok();
        let witnesses = check_abstract_deploy(&spec);
        prop_assert_eq!(
            statically_ok,
            witnesses.is_empty(),
            "disagreement on {:?}: static ok = {}, dynamic found {:?}",
            spec, statically_ok, witnesses
        );
    }

    /// `DeploySpec::feasible` always constructs deployments both checkers
    /// accept.
    #[test]
    fn feasible_constructor_satisfies_both_checkers(
        mbs in proptest::collection::vec(arb_mbspec(), 1..4),
        f in 0usize..3,
    ) {
        let spec = DeploySpec::feasible(mbs, f);
        prop_assert!(verify_deploy_spec(&spec).is_ok(), "{spec:?}");
        prop_assert!(check_abstract_deploy(&spec).is_empty(), "{spec:?}");
    }
}

/// Every canonical infeasible shape maps to the documented dynamic failure
/// class, with a concrete schedule in the witness.
#[test]
fn infeasible_shapes_map_to_expected_dynamic_failures() {
    let mon = || MbSpec::Monitor { sharing_level: 1 };
    let cases: [(DeploySpec, &str); 3] = [
        (
            // Ring shorter than f + 1.
            DeploySpec {
                middleboxes: vec![mon()],
                f: 2,
                ring_len: 1,
                buffer_pos: 0,
                partitions: 8,
                workers: 1,
                engine: "twopl".into(),
            },
            "under-replication",
        ),
        (
            // More middleboxes than ring positions.
            DeploySpec {
                middleboxes: vec![mon(); 4],
                f: 1,
                ring_len: 2,
                buffer_pos: 1,
                partitions: 8,
                workers: 1,
                engine: "twopl".into(),
            },
            "no-replica-slot",
        ),
        (
            // Buffer attached before the last tail.
            DeploySpec {
                middleboxes: vec![mon(); 3],
                f: 1,
                ring_len: 3,
                buffer_pos: 1,
                partitions: 8,
                workers: 1,
                engine: "twopl".into(),
            },
            "processing-gap",
        ),
    ];
    for (spec, code) in &cases {
        assert!(
            verify_deploy_spec(spec).is_err(),
            "fixture must be statically infeasible: {spec:?}"
        );
        let witnesses = check_abstract_deploy(spec);
        assert!(
            witnesses.iter().any(|w| w.code == *code),
            "expected a `{code}` witness for {spec:?}, got {witnesses:?}"
        );
    }
}

/// Statically accepted, buildable chains also run clean on the *concrete*
/// model checker (a small schedule matrix keeps this fast).
#[test]
fn accepted_chains_survive_concrete_exploration() {
    let chains: [Vec<MbSpec>; 2] = [
        vec![MbSpec::Monitor { sharing_level: 1 }; 2],
        vec![
            MbSpec::Gen { state_size: 32 },
            MbSpec::Monitor { sharing_level: 1 },
        ],
    ];
    for specs in chains {
        let spec = DeploySpec::feasible(specs.clone(), 1);
        assert!(verify_deploy_spec(&spec).is_ok());
        let cfg = ProtocolCheckConfig {
            specs,
            f: 1,
            warm: 2,
            post: 1,
            triggers: 1,
            perm_limit: Some(4),
            max_steps: 4000,
            sabotage_buffer: false,
        };
        let report = explore(&cfg);
        assert!(
            report.ok(),
            "statically accepted chain violated invariants: {}\n{:#?}",
            report.summary(),
            report.witnesses
        );
    }
}
