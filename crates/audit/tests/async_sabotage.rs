//! Sabotage self-test: with `--features sabotage` the reliable sender
//! drops its resend queue when retransmission comes due (a deliberate
//! reconnect bug in `ftc-net`). The async-transport checker's T3 property
//! must catch it on reset plans and print a witness that [`replay`]
//! reproduces exactly. Run via `check.sh --transport-check` as a separate
//! cargo invocation — never alongside the default tests (cargo feature
//! unification would infect every other ftc-net test with the bug).

#![cfg(feature = "sabotage")]

use ftc_audit::async_check::{explore, replay, AsyncCheckConfig};

#[test]
fn sabotage_is_caught_with_replayable_witness() {
    let cfg = AsyncCheckConfig::default();
    let report = explore(&cfg);
    eprintln!("{report}");
    assert!(
        !report.passed(),
        "checker failed to catch the sabotaged resend queue: {report}"
    );
    let w = report
        .witnesses
        .iter()
        .find(|w| w.property == "T3")
        .unwrap_or_else(|| {
            panic!("expected a T3 (frame acknowledged-by-nobody) witness, got: {report}")
        });
    // The printed witness must replay to the same failure.
    let spec = w.to_string();
    let again = replay(&spec)
        .expect("witness spec parses")
        .unwrap_or_else(|| panic!("witness did not reproduce on replay: {spec}"));
    assert_eq!(again.plan, w.plan);
    assert_eq!(again.seed, w.seed);
    assert_eq!(again.property, w.property, "replayed verdict diverged");
}
