//! Sabotage self-test: with `--features reconfig-sabotage` the handover
//! engine drops the release phase — the source's failure-assumption
//! timeout re-opens its claims and resumes it while the destination has
//! already switched, so two serviceable owners exist for every partition
//! of the migrated position. The I5 single-owner invariant must catch it
//! and the witness label must replay to the same violation. Run via
//! `check.sh --reconfig-check` as a separate cargo invocation — never
//! alongside the default tests (cargo feature unification would poison
//! every other ftc-core handover test).

#![cfg(feature = "reconfig-sabotage")]

use ftc_audit::{explore_reconfig, replay, ReconfigCheckConfig};

#[test]
fn skip_release_sabotage_trips_i5_with_replayable_witness() {
    // One clean migrate per position suffices: only fully-successful
    // handovers reach the sabotaged release phase.
    let cfg = ReconfigCheckConfig {
        perm_limit: Some(2),
        ..ReconfigCheckConfig::pr_gate()
    };
    let report = explore_reconfig(&cfg);
    eprintln!("reconfig-check sabotage: {}", report.summary());
    assert!(
        !report.ok(),
        "checker failed to catch the skip-release sabotage: {}",
        report.summary()
    );
    let w = report
        .witnesses
        .iter()
        .find(|w| w.invariant == "I5")
        .unwrap_or_else(|| panic!("expected an I5 witness, got: {:#?}", report.witnesses));
    assert!(
        w.detail.contains("serviceable owner"),
        "witness must name the double ownership: {w}"
    );
    // The label replays to the same violation.
    let again = replay(&cfg, &w.schedule);
    assert!(
        !again.ok(),
        "witness schedule {} did not reproduce on replay",
        w.schedule
    );
    assert!(
        again.witnesses.iter().any(|r| r.invariant == "I5"),
        "replayed schedule lost the I5 witness: {:#?}",
        again.witnesses
    );
}
