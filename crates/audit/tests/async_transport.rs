//! Async-transport model checker sweep over the real socket backend.
//!
//! Default run: a smoke-sized sweep (every fault plan, a few seeds each)
//! so `cargo test` stays fast. `FTC_TRANSPORT_GATE=1` switches to the PR
//! gate (≥ 1000 distinct schedules; `check.sh --transport-check`), and
//! `FTC_TRANSPORT_DEEP=1` to the nightly deep bound.

#![cfg(not(feature = "sabotage"))]

use ftc_audit::async_check::{explore, replay, AsyncCheckConfig};

fn sweep_config() -> (AsyncCheckConfig, usize, &'static str) {
    if std::env::var("FTC_TRANSPORT_DEEP").as_deref() == Ok("1") {
        (AsyncCheckConfig::deep(), 5000, "deep")
    } else if std::env::var("FTC_TRANSPORT_GATE").as_deref() == Ok("1") {
        (AsyncCheckConfig::gate(), 1000, "gate")
    } else {
        (AsyncCheckConfig::default(), 32, "smoke")
    }
}

#[test]
fn transport_sweep_is_clean() {
    let (cfg, min_distinct, tier) = sweep_config();
    let report = explore(&cfg);
    eprintln!("[{tier}] {report}");
    assert!(report.passed(), "T1–T4 violated:\n{report}");
    assert!(
        report.distinct_traces >= min_distinct,
        "only {} distinct schedules at the {tier} bound (want >= {min_distinct}); \
         the chooser is not actually diversifying interleavings",
        report.distinct_traces
    );
}

#[test]
fn replay_is_deterministic() {
    // Any (plan, seed) pair must replay to the same verdict and the
    // witness string format must round-trip through the replay parser.
    let r1 = replay("plan=reset_double seed=0x2a").expect("valid spec");
    let r2 = replay("plan=reset_double seed=0x2a").expect("valid spec");
    match (&r1, &r2) {
        (None, None) => {}
        (Some(a), Some(b)) => assert_eq!(a.to_string(), b.to_string()),
        _ => panic!("replay verdict flipped between identical runs: {r1:?} vs {r2:?}"),
    }
}
