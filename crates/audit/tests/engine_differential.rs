//! Differential audit of the two state engines (DESIGN.md §13).
//!
//! [`StateBackend`] promises the 2PL and epoch-batched engines are
//! *observationally identical*: the same transaction bodies commit with
//! the same log shape, bump the same sequence numbers, and leave the same
//! state. These tests force that promise three ways:
//!
//! * **Sequential byte-identity** — a single-threaded history produces
//!   byte-identical `TxnLog`s (dependency vectors and write sets), equal
//!   snapshots, and equal sequence vectors on both engines, including
//!   delete paths.
//! * **Concurrent differential** — the same randomized transaction plans
//!   run contended (exercising wound-wait aborts on 2PL and
//!   requeue/re-execution on batched); each engine's recorded history
//!   must pass the full serializability + convergence audit, and because
//!   the bodies are commutative read-modify-write increments, both
//!   engines must converge to the same snapshot and sequence vector.
//! * **Contended battery** — the `audit_e2e` shared-counter workload,
//!   rerun on the batched engine: the direct-serialization-graph checker
//!   and adversarial convergence replay accept a real multi-threaded
//!   optimistic run, and no increment is lost.

use bytes::Bytes;
use ftc_audit::{audit, Recorder};
use ftc_stm::{EngineKind, StateBackend, StateBackendExt, TxnLog};
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use std::sync::Arc;

const PARTITIONS: usize = 8;
/// Small key space so concurrent plans actually collide.
const KEYS: u16 = 12;
const THREADS: usize = 3;

fn key(k: u16) -> Bytes {
    // Middlebox-shaped keys spread over the standard prefixes.
    const PREFIXES: &[&str] = &["mon:", "gen:", "ids:", "lb:"];
    Bytes::from(format!("{}k{}", PREFIXES[k as usize % PREFIXES.len()], k))
}

/// One transaction body: read some keys, then increment some counters.
/// Increments commute, so any serializable execution of a fixed plan set
/// reaches the same final state.
#[derive(Debug, Clone)]
struct TxnPlan {
    reads: Vec<u16>,
    incs: Vec<(u16, u64)>,
    deletes: Vec<u16>,
}

fn arb_plan(with_deletes: bool) -> impl Strategy<Value = TxnPlan> {
    let deletes = if with_deletes {
        pvec(0..KEYS, 0..2).boxed()
    } else {
        Just(Vec::new()).boxed()
    };
    (
        pvec(0..KEYS, 0..3),
        pvec((0..KEYS, 1..100u64), 0..3),
        deletes,
    )
        .prop_map(|(reads, incs, deletes)| TxnPlan {
            reads,
            incs,
            deletes,
        })
}

fn run_plan(store: &dyn StateBackend, plan: &TxnPlan) -> Option<TxnLog> {
    store
        .transaction(|txn| {
            for &k in &plan.reads {
                txn.read_u64(&key(k))?;
            }
            for &(k, d) in &plan.incs {
                let c = txn.read_u64(&key(k))?.unwrap_or(0);
                txn.write_u64(key(k), c + d)?;
            }
            for &k in &plan.deletes {
                txn.delete(key(k))?;
            }
            Ok(())
        })
        .log
}

/// Runs `plans` across [`THREADS`] worker threads (thread `t` executes
/// plans `t, t + THREADS, ...` in order) and returns the backend plus the
/// recorded history tap.
fn run_concurrent(kind: EngineKind, plans: &[TxnPlan]) -> (Arc<dyn StateBackend>, Arc<Recorder>) {
    let store = kind.build(PARTITIONS);
    let rec = Recorder::attach_backend(&*store);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let store = Arc::clone(&store);
            s.spawn(move || {
                for plan in plans.iter().skip(t).step_by(THREADS) {
                    run_plan(&*store, plan);
                }
            });
        }
    });
    (store, rec)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Single-threaded, both engines execute the identical history — the
    /// piggyback logs (dependency vectors *and* write sets, deletions
    /// included) must be byte-identical transaction by transaction.
    #[test]
    fn sequential_histories_are_byte_identical_across_engines(
        plans in pvec(arb_plan(true), 0..24),
    ) {
        let stores: Vec<Arc<dyn StateBackend>> =
            EngineKind::ALL.iter().map(|k| k.build(PARTITIONS)).collect();
        for plan in &plans {
            let logs: Vec<Option<TxnLog>> =
                stores.iter().map(|s| run_plan(&**s, plan)).collect();
            prop_assert_eq!(&logs[0], &logs[1], "diverging log for {:?}", plan);
        }
        prop_assert_eq!(stores[0].snapshot(), stores[1].snapshot());
        prop_assert_eq!(stores[0].seq_vector(), stores[1].seq_vector());
        for p in 0..PARTITIONS as u16 {
            prop_assert_eq!(
                &stores[0].export_partition(p).encode()[..],
                &stores[1].export_partition(p).encode()[..],
                "export frames must be engine-independent (partition {})", p
            );
        }
    }

    /// Concurrent differential: the same plans, contended on each engine.
    /// Both recorded histories must be serializable with converging
    /// replays, and (increments being commutative) both engines must end
    /// in the same state with the same per-partition commit counts.
    #[test]
    fn concurrent_runs_audit_clean_and_converge_across_engines(
        plans in pvec(arb_plan(false), 1..32),
    ) {
        let mut results = Vec::new();
        for kind in EngineKind::ALL {
            let (store, rec) = run_concurrent(kind, &plans);
            let history = rec.history();
            let writing = plans.iter().filter(|p| !p.incs.is_empty()).count();
            prop_assert_eq!(
                history.len(), writing,
                "{}: every writing plan commits exactly once", kind
            );
            let report = audit(&history, &store.snapshot(), PARTITIONS);
            prop_assert!(report.passed(), "{} audit failed:\n{}", kind, report);
            results.push((kind, store));
        }
        let (_, ref two) = results[0];
        let (_, ref bat) = results[1];
        prop_assert_eq!(two.snapshot(), bat.snapshot());
        prop_assert_eq!(two.seq_vector(), bat.seq_vector());
    }
}

const BATTERY_THREADS: usize = 4;
const BATTERY_TXNS: u64 = 50;

/// The `audit_e2e` contended workload on a given engine: every thread
/// hammers one shared counter (forcing aborts/requeues on one partition)
/// and writes a private key per iteration.
fn contended_run(kind: EngineKind) -> (Arc<dyn StateBackend>, Arc<Recorder>) {
    let store = kind.build(PARTITIONS);
    let rec = Recorder::attach_backend(&*store);
    std::thread::scope(|s| {
        for t in 0..BATTERY_THREADS {
            let store = Arc::clone(&store);
            s.spawn(move || {
                let shared = Bytes::from_static(b"shared-counter");
                for i in 0..BATTERY_TXNS {
                    store.transaction(|txn| {
                        let c = txn.read_u64(&shared)?.unwrap_or(0);
                        txn.write_u64(shared.clone(), c + 1)?;
                        txn.write_u64(Bytes::from(format!("t{t}:i{i}")), i)?;
                        Ok(())
                    });
                }
            });
        }
    });
    (store, rec)
}

#[test]
fn batched_contended_run_passes_full_audit() {
    let (store, rec) = contended_run(EngineKind::Batched);
    let history = rec.history();
    let total = BATTERY_THREADS as u64 * BATTERY_TXNS;
    assert_eq!(history.len(), total as usize);

    let report = audit(&history, &store.snapshot(), PARTITIONS);
    assert!(report.passed(), "audit failed:\n{report}");
    let order = report.serializability.serial_order.as_ref().unwrap();
    assert_eq!(order.len(), history.len());

    // No lost updates: every committed increment is visible exactly once.
    assert_eq!(store.peek_u64(b"shared-counter"), Some(total));
    let (commits, _aborts, _applied) = store.stats_snapshot();
    assert_eq!(commits, total);
}

#[test]
fn both_engines_reach_the_same_contended_final_state() {
    let (two, _) = contended_run(EngineKind::TwoPl);
    let (bat, _) = contended_run(EngineKind::Batched);
    assert_eq!(two.snapshot(), bat.snapshot());
    assert_eq!(two.seq_vector(), bat.seq_vector());
}
