//! End-to-end audit: record a real multi-threaded contended run through
//! the head store, then put the recorded history through the full audit
//! battery — serializability check plus adversarial convergence replay
//! against the live store's final snapshot.

use bytes::Bytes;
use ftc_audit::{audit, History, Recorder, Violation};
use ftc_stm::{DepVector, StateStore};
use std::sync::Arc;

const PARTITIONS: usize = 8;
const THREADS: usize = 4;
const TXNS_PER_THREAD: u64 = 50;

/// Runs a contended workload: every thread increments a shared counter
/// (forcing wound-wait conflicts on one partition) and writes one
/// private key per iteration (spreading load over the others).
fn contended_run() -> (Arc<StateStore>, Arc<Recorder>) {
    let store = Arc::new(StateStore::new(PARTITIONS));
    let rec = Recorder::attach(&store);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let store = Arc::clone(&store);
            s.spawn(move || {
                let shared = Bytes::from_static(b"shared-counter");
                for i in 0..TXNS_PER_THREAD {
                    store.transaction(|txn| {
                        let c = txn.read_u64(&shared)?.unwrap_or(0);
                        txn.write_u64(shared.clone(), c + 1)?;
                        txn.write_u64(Bytes::from(format!("t{t}:i{i}")), i)?;
                        Ok(())
                    });
                }
            });
        }
    });
    (store, rec)
}

#[test]
fn contended_multithreaded_run_passes_full_audit() {
    let (store, rec) = contended_run();
    let history = rec.history();
    assert_eq!(history.len(), THREADS * TXNS_PER_THREAD as usize);

    let report = audit(&history, &store.snapshot(), PARTITIONS);
    assert!(report.passed(), "audit failed:\n{report}");

    // The witness serial order must replay the shared counter to its
    // final value — i.e. it really is an equivalent serial execution.
    let order = report.serializability.serial_order.as_ref().unwrap();
    assert_eq!(order.len(), history.len());
}

#[test]
fn shared_counter_reaches_txn_count() {
    let (store, rec) = contended_run();
    let snap = store.snapshot();
    let total: u64 = THREADS as u64 * TXNS_PER_THREAD;
    let shared = Bytes::from_static(b"shared-counter");
    let val = snap
        .maps
        .iter()
        .flatten()
        .find(|(k, _)| *k == shared)
        .map(|(_, v)| u64::from_be_bytes(v.as_ref().try_into().unwrap()));
    // Every committed increment must be visible exactly once.
    assert_eq!(val, Some(total));
    assert_eq!(rec.commit_count(), total as usize);
}

#[test]
fn broken_ordering_fixture_is_rejected() {
    // Intentionally broken history: two transactions observe each other's
    // partitions in opposite orders — the classic write-skew cycle no
    // serial order can explain. The real lock manager can never emit
    // this; the checker must reject it.
    let dv = |e: &[(u16, u64)]| DepVector::from_entries(e.to_vec()).unwrap();
    let history = History::from_logs([
        (dv(&[(0, 0), (1, 1)]), vec![]),
        (dv(&[(0, 1), (1, 0)]), vec![]),
    ]);
    let store = StateStore::new(2);
    let report = audit(&history, &store.snapshot(), 2);
    assert!(!report.passed());
    assert!(report
        .serializability
        .violations
        .iter()
        .any(|v| matches!(v, Violation::Cycle { .. })));
    assert!(
        report.convergence.is_none(),
        "convergence replay must be skipped for non-serializable histories"
    );
}

#[test]
fn lost_log_fixture_is_rejected() {
    let (store, rec) = contended_run();
    let mut history = rec.history();
    history.txns.remove(history.txns.len() / 2);
    let report = audit(&history, &store.snapshot(), PARTITIONS);
    assert!(!report.passed(), "a dropped log must fail the audit");
    assert!(report
        .serializability
        .violations
        .iter()
        .all(|v| matches!(v, Violation::SeqGap { .. })));
}

#[test]
fn replica_applies_are_recorded_and_replayable() {
    // Head records commits; a replica (with its own recorder) applies the
    // piggyback logs. The replica's applied stream must match the head's
    // commit stream one-to-one and leave identical state.
    let head = StateStore::new(PARTITIONS);
    let head_rec = Recorder::attach(&head);
    let replica = StateStore::new(PARTITIONS);
    let replica_rec = Recorder::attach(&replica);

    let max = ftc_stm::MaxVector::new(PARTITIONS);
    for i in 0..30u64 {
        let out = head.transaction(|txn| {
            let k = Bytes::from(format!("k{}", i % 5));
            let c = txn.read_u64(&k)?.unwrap_or(0);
            txn.write_u64(k, c + i)?;
            Ok(())
        });
        let log = out.log.expect("writing txn yields a log");
        max.offer(&log.deps, &log.writes, &replica);
    }

    let head_hist = head_rec.history();
    let replica_hist = replica_rec.history();
    assert_eq!(head_hist.len(), 30);
    assert_eq!(replica_hist.applied.len(), 30);
    for (c, a) in head_hist.txns.iter().zip(&replica_hist.applied) {
        assert_eq!(c.deps, a.deps);
        assert_eq!(c.writes, a.writes);
    }

    let report = audit(&head_hist, &head.snapshot(), PARTITIONS);
    assert!(report.passed(), "{report}");
}
