//! The FTC orchestrator (paper §3.2, §5.2).
//!
//! "A central orchestrator manages the network and chains. The orchestrator
//! deploys fault tolerant chains, reliably monitors them, detects their
//! failures, and initiates failure recovery. … After deploying a chain, the
//! orchestrator is not involved in normal chain operations to avoid
//! becoming a performance bottleneck."
//!
//! The orchestrator here plays the role ONOS plays in the paper's
//! implementation: a control-plane process that heartbeats the replicas
//! ([`detector`]), and when one fail-stops, executes the three recovery
//! steps of §5.2 — **initialization** (spawn a new replica at the failure
//! position and tell it about its groups), **state recovery** (parallel
//! fetches following the §4.1 source-selection rule), and **rerouting**
//! (steering traffic through the replacement) — reporting the duration of
//! each step, which is exactly what Fig. 13 plots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detector;
pub mod orchestrator;
pub mod proc;
pub mod reconfig;
pub mod testkit;

pub use detector::detect_failures;
pub use orchestrator::{spawn_monitor, Orchestrator, OrchestratorConfig, RecoveryReport};
pub use proc::{NodeOpts, ProcChain, ProcConfig};
pub use reconfig::{ReconfigError, ReconfigReport};
