//! Integration-test harness over the threaded orchestrator stack.
//!
//! [`OrchCrashTarget`] implements [`ftc_core::testkit::CrashTarget`] for an
//! [`Orchestrator`] driving a real (threaded) [`ftc_core::FtcChain`], so the
//! repo-level failure tests (`tests/failover.rs`,
//! `tests/failure_under_load.rs`) express their kill-server scenarios in the
//! same [`CrashSchedule`](ftc_core::testkit::CrashSchedule) vocabulary the
//! protocol model checker enumerates. One schedule description, two
//! executors: the model checker runs it step-granularly over `SyncChain`,
//! this target runs it wall-clock over the threaded stack.

use crate::orchestrator::{Orchestrator, RecoveryReport};
use ftc_core::testkit::{CrashPhase, CrashPoint, CrashTarget};
use ftc_net::topology::RegionId;
use ftc_packet::builder::UdpPacketBuilder;
use ftc_packet::Packet;
use std::net::Ipv4Addr;
use std::time::Duration;

/// [`CrashTarget`] over the threaded [`Orchestrator`] stack: quiesced-kill
/// execution with real recovery (the three-step protocol, wall-clock
/// timing, recovery reports).
pub struct OrchCrashTarget {
    /// The orchestrator + threaded chain under test.
    pub orch: Orchestrator,
    /// `(victim, report)` for every recovery this target executed, in
    /// order — tests assert on transfer sizes and phase timings here.
    pub reports: Vec<(usize, RecoveryReport)>,
    recover_region: RegionId,
    grace: Duration,
    ring_grace: Duration,
    next: u32,
}

impl OrchCrashTarget {
    /// Wraps `orch` with default settle timing (750 ms egress silence,
    /// 100 ms ring-replication grace) and recovery into `RegionId(0)`.
    pub fn new(orch: Orchestrator) -> OrchCrashTarget {
        OrchCrashTarget {
            orch,
            reports: Vec::new(),
            recover_region: RegionId(0),
            grace: Duration::from_millis(750),
            ring_grace: Duration::from_millis(100),
            next: 0,
        }
    }

    /// Region replacements are instantiated in (WAN tests recover into a
    /// remote region to measure RTT-dominated recovery).
    pub fn recover_region(mut self, region: RegionId) -> OrchCrashTarget {
        self.recover_region = region;
        self
    }

    /// The released-packet counter of `replica`'s head monitor group —
    /// the consistency witness every failover test asserts on. `None`
    /// until the first released packet's update lands.
    pub fn mon_packets(&self, replica: usize) -> Option<u64> {
        self.orch.chain.replicas[replica]
            .state
            .own_store
            .peek_u64(b"mon:packets:g0")
    }

    /// Kills every victim first, then recovers them in order — the
    /// simultaneous multi-failure case (f ≥ 2) that the one-at-a-time
    /// [`CrashTarget::crash`] path cannot express.
    pub fn crash_many(&mut self, victims: &[usize]) {
        for &v in victims {
            self.orch.chain.kill(v);
        }
        for &v in victims {
            let report = self
                .orch
                .recover(v, self.recover_region)
                .expect("recovery after simultaneous failures");
            self.reports.push((v, report));
        }
    }

    fn fresh_pkt(&mut self) -> Packet {
        self.next += 1;
        let i = self.next;
        UdpPacketBuilder::new()
            .src(Ipv4Addr::new(10, 7, 0, 1), 1024 + (i % 4096) as u16)
            .dst(Ipv4Addr::new(10, 99, 0, 1), 443)
            .ident(i as u16)
            .build()
    }
}

impl CrashTarget for OrchCrashTarget {
    fn inject(&mut self, n: usize) {
        for _ in 0..n {
            let pkt = self.fresh_pkt();
            self.orch.chain.inject(pkt);
        }
    }

    fn settle(&mut self) -> usize {
        let mut released = 0;
        while self.orch.chain.egress().recv(self.grace).is_some() {
            released += 1;
        }
        // Egress silence only proves the packets released; give the ring
        // one more beat to finish replicating the tail group's updates
        // before a crash is allowed to fire.
        std::thread::sleep(self.ring_grace);
        released
    }

    fn crash(&mut self, point: &CrashPoint) {
        match point.phase {
            CrashPhase::Quiesced => {}
            CrashPhase::Reconfig { .. } => panic!(
                "OrchCrashTarget executes quiesced kills; reconfiguration \
                 crash phases belong to the ftc-audit reconfig checker's \
                 SyncChain executor — drive the threaded handshake through \
                 Orchestrator::{{migrate_instance,scale_instance}} with a \
                 probe on Orchestrator::reconfig_probe instead"
            ),
            _ => panic!(
                "OrchCrashTarget executes quiesced kills; step-granular \
                 phases belong to the protocol model checker's SyncChain \
                 executor"
            ),
        }
        self.orch.chain.kill(point.victim);
        let report = self
            .orch
            .recover(point.victim, self.recover_region)
            .expect("recovery");
        self.reports.push((point.victim, report));
    }
}
