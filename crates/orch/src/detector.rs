//! Heartbeat failure detection.
//!
//! Failures are fail-stop (paper §2): a dead replica's control thread is
//! gone, so its RPC channel disconnects or times out. The orchestrator's
//! monitor pings every replica each interval and reports the positions that
//! miss `missed_threshold` consecutive heartbeats.

use ftc_core::chain::FtcChain;
use ftc_core::control::{CtrlReq, CtrlResp};
use ftc_core::journal::{EventKind, EventSource};
use std::time::Duration;

/// Pings every replica once; returns the positions that failed to answer.
pub fn detect_failures(chain: &FtcChain, timeout: Duration) -> Vec<usize> {
    let mut dead = Vec::new();
    for (i, slot) in chain.replicas.iter().enumerate() {
        match slot.ctrl.call(CtrlReq::Ping, timeout) {
            Ok(CtrlResp::Pong) => {}
            _ => dead.push(i),
        }
    }
    dead
}

/// A stateful detector that requires several consecutive misses before
/// declaring a failure, avoiding false positives under load.
#[derive(Debug)]
pub struct FailureDetector {
    misses: Vec<u32>,
    threshold: u32,
    timeout: Duration,
}

impl FailureDetector {
    /// Creates a detector for a chain of `n` replicas.
    pub fn new(n: usize, threshold: u32, timeout: Duration) -> FailureDetector {
        assert!(threshold >= 1);
        FailureDetector {
            misses: vec![0; n],
            threshold,
            timeout,
        }
    }

    /// Runs one heartbeat round; returns newly confirmed failures.
    pub fn round(&mut self, chain: &FtcChain) -> Vec<usize> {
        let mut confirmed = Vec::new();
        for (i, slot) in chain.replicas.iter().enumerate() {
            let alive = matches!(
                slot.ctrl.call(CtrlReq::Ping, self.timeout),
                Ok(CtrlResp::Pong)
            );
            if alive {
                self.misses[i] = 0;
            } else {
                self.misses[i] += 1;
                chain.metrics.journal.record(
                    EventSource::Orchestrator,
                    EventKind::HeartbeatMissed { replica: i as u16 },
                );
                if self.misses[i] == self.threshold {
                    chain.metrics.journal.record(
                        EventSource::Orchestrator,
                        EventKind::FailureDetected { replica: i as u16 },
                    );
                    confirmed.push(i);
                }
            }
        }
        confirmed
    }

    /// Resets the miss counter for a recovered position.
    pub fn mark_recovered(&mut self, idx: usize) {
        self.misses[idx] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_core::config::ChainConfig;
    use ftc_mbox::MbSpec;

    fn chain(n: usize) -> FtcChain {
        let specs = (0..n)
            .map(|_| MbSpec::Monitor { sharing_level: 1 })
            .collect();
        FtcChain::deploy(ChainConfig::new(specs).with_f(1))
    }

    #[test]
    fn healthy_chain_reports_nothing() {
        let c = chain(3);
        assert!(detect_failures(&c, Duration::from_millis(200)).is_empty());
    }

    #[test]
    fn killed_replica_is_detected() {
        let mut c = chain(3);
        c.kill(1);
        let dead = detect_failures(&c, Duration::from_millis(200));
        assert_eq!(dead, vec![1]);
    }

    #[test]
    fn detector_requires_consecutive_misses() {
        let mut c = chain(2);
        let mut det = FailureDetector::new(2, 3, Duration::from_millis(100));
        assert!(det.round(&c).is_empty());
        c.kill(0);
        assert!(det.round(&c).is_empty(), "miss 1 of 3");
        assert!(det.round(&c).is_empty(), "miss 2 of 3");
        assert_eq!(det.round(&c), vec![0], "confirmed at threshold");
        assert!(det.round(&c).is_empty(), "reported once, not repeatedly");
        det.mark_recovered(0);
        assert_eq!(det.misses[0], 0);
    }
}
