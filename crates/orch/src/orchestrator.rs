//! Three-step failure recovery (paper §5.2) and its timing report.

use crate::detector::FailureDetector;
use ftc_core::chain::FtcChain;
use ftc_core::config::RingMath;
use ftc_core::control::{CtrlClient, CtrlReq, CtrlResp, OutPort};
use ftc_core::journal::{EventKind, EventSource};
use ftc_core::recovery::{source_order, RecoveryError};
use ftc_core::replica::ReplicaState;
use ftc_net::topology::RegionId;
use ftc_stm::StoreSnapshot;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Orchestrator tunables.
#[derive(Debug, Clone)]
pub struct OrchestratorConfig {
    /// Region the orchestrator (SDN controller) runs in.
    pub region: RegionId,
    /// RPC timeout for state fetches.
    pub fetch_timeout: Duration,
    /// Heartbeat interval for the monitoring loop.
    pub heartbeat_interval: Duration,
    /// Heartbeat timeout per ping.
    pub heartbeat_timeout: Duration,
    /// Consecutive misses before declaring a failure.
    pub miss_threshold: u32,
    /// Fixed cost of instantiating a middlebox + replica process on a
    /// server (container/VM start), added to the initialization phase.
    pub spawn_cost: Duration,
}

impl Default for OrchestratorConfig {
    fn default() -> Self {
        OrchestratorConfig {
            region: RegionId(0),
            fetch_timeout: Duration::from_secs(10),
            heartbeat_interval: Duration::from_millis(10),
            heartbeat_timeout: Duration::from_millis(50),
            miss_threshold: 2,
            spawn_cost: Duration::from_millis(1),
        }
    }
}

/// Durations of the three recovery steps (the Fig. 13 quantities).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Spawning the replacement and informing it of its groups
    /// (orchestrator↔region round trip + process start).
    pub initialization: Duration,
    /// Fetching and restoring state from group members (WAN-dominated).
    pub state_recovery: Duration,
    /// Updating routing rules to steer traffic through the replacement.
    pub rerouting: Duration,
    /// Total state bytes transferred.
    pub bytes_transferred: usize,
}

impl RecoveryReport {
    /// Total recovery time.
    pub fn total(&self) -> Duration {
        self.initialization + self.state_recovery + self.rerouting
    }
}

/// The chain orchestrator: detection + recovery sequencing.
pub struct Orchestrator {
    /// The managed chain.
    pub chain: FtcChain,
    /// Step-granular hook for the planned-reconfiguration handshake
    /// ([`crate::reconfig`]): every phase of a handover reports a
    /// [`ProbePoint::Reconfig`](ftc_core::probe::ProbePoint) here, and a
    /// `Crash` verdict fail-stops that participant at that exact point.
    /// Empty in production; tests install probes to exercise the
    /// rollback/roll-forward paths.
    pub reconfig_probe: ftc_core::probe::ProbeSlot,
    pub(crate) cfg: OrchestratorConfig,
    detector: FailureDetector,
}

impl Orchestrator {
    /// Takes over management of a deployed chain.
    pub fn new(chain: FtcChain, cfg: OrchestratorConfig) -> Orchestrator {
        let n = chain.len();
        let detector = FailureDetector::new(n, cfg.miss_threshold, cfg.heartbeat_timeout);
        Orchestrator {
            chain,
            reconfig_probe: ftc_core::probe::ProbeSlot::new(),
            cfg,
            detector,
        }
    }

    /// One monitoring round: ping everything, recover what died. Returns
    /// `(position, report)` for every recovery performed.
    pub fn monitor_round(&mut self) -> Vec<(usize, Result<RecoveryReport, RecoveryError>)> {
        let dead = self.detector.round(&self.chain);
        if dead.is_empty() {
            return Vec::new();
        }
        // §5.2: "for simultaneous failures, the orchestrator waits until all
        // new replicas confirm that they have finished their state recovery
        // procedures before updating routing rules." Our respawn couples
        // state restore and rewiring per position; positions are processed
        // in sequence after *all* state has been fetched.
        let mut results = Vec::new();
        for idx in dead {
            let region = self.chain.replicas[idx].region;
            let r = self.recover(idx, region);
            if r.is_ok() {
                self.detector.mark_recovered(idx);
            }
            results.push((idx, r));
        }
        results
    }

    /// Recovers the replica at `idx` onto a fresh server in `region`,
    /// following §5.2: initialization, parallel state recovery, rerouting.
    pub fn recover(
        &mut self,
        idx: usize,
        region: RegionId,
    ) -> Result<RecoveryReport, RecoveryError> {
        let ring = self.chain.cfg.ring();
        self.journal(EventKind::RespawnIssued {
            replica: idx as u16,
        });

        // ---- Step 1: initialization -------------------------------------
        // Spawn a new middlebox instance + replica on a server in `region`
        // and inform it about the replication groups of the failed replica.
        // Cost: an orchestrator↔region round trip plus process start.
        let t0 = Instant::now();
        // WAN RTT + spawn-cost emulation (a modeled delay, not a poll).
        // forbidden-ok: thread-sleep
        std::thread::sleep(
            self.chain
                .topology
                .rtt(self.cfg.region, region)
                .saturating_add(self.cfg.spawn_cost),
        );
        let spec = &self.chain.cfg.effective_middleboxes()[idx];
        let state = ReplicaState::new(
            idx,
            Arc::clone(&self.chain.cfg),
            spec.build(),
            Arc::new(OutPort::empty()),
            Arc::clone(&self.chain.metrics),
        );
        let initialization = t0.elapsed();

        // ---- Step 2: state recovery -------------------------------------
        // "The control module spawns a thread to fetch state per each
        // replication group" (§6) — fetches run in parallel; WAN RTT to the
        // source region dominates. Sources quiesce while serving (§4.1).
        let t1 = Instant::now();
        self.journal(EventKind::StateFetchStarted {
            replica: idx as u16,
        });
        let (bytes, sources) = self.parallel_state_recovery(&state, idx, region, ring)?;
        self.journal(EventKind::StateFetchFinished {
            replica: idx as u16,
            bytes: bytes as u64,
        });
        let state_recovery = t1.elapsed();

        // ---- Step 3: rerouting ------------------------------------------
        // Install fresh links around the replacement (the SDN rule update;
        // the paper observes negligible delay here), then resume the
        // quiesced recovery sources.
        let t2 = Instant::now();
        self.chain.respawn(idx, region, state);
        self.resume_replicas(&sources);
        self.journal(EventKind::TrafficResumed {
            replica: idx as u16,
        });
        let rerouting = t2.elapsed();

        Ok(RecoveryReport {
            initialization,
            state_recovery,
            rerouting,
            bytes_transferred: bytes,
        })
    }

    /// Sends [`CtrlReq::Resume`] to the given replicas (best effort).
    pub(crate) fn resume_replicas(&self, sources: &[usize]) {
        for &src in sources {
            if let Some(slot) = self.chain.replicas.get(src) {
                let _ = slot.ctrl.call(CtrlReq::Resume, self.cfg.fetch_timeout);
            }
        }
    }

    /// Vertically rescales the replica at `idx` to `workers` worker threads
    /// (paper §4.3: dependency vectors "easily support vertical scaling as
    /// a running middlebox can be replaced with a new instance with a
    /// different number of CPU cores", and "a middlebox and its replicas
    /// can also run with a different number of threads").
    ///
    /// This is a *planned* replacement, executed as the four-phase
    /// [`crate::reconfig`] handshake (prepare → transfer → switch →
    /// release): state is fetched from the live instance itself (the
    /// freshest copy), the old server is fail-stopped at the switch
    /// commit point, and traffic is rerouted through the replacement.
    /// Packets in flight at the old instance during the switch are
    /// dropped, exactly as during unplanned recovery.
    ///
    /// The phased engine ([`Orchestrator::scale_instance`]) is the real
    /// implementation; this wrapper keeps the Fig-13-shaped
    /// [`RecoveryReport`] for callers that time rescales like recoveries.
    pub fn rescale(&mut self, idx: usize, workers: usize) -> Result<RecoveryReport, RecoveryError> {
        match self.scale_instance(idx, workers) {
            Ok(r) => Ok(RecoveryReport {
                initialization: r.prepare,
                state_recovery: r.transfer,
                rerouting: r.switch + r.release,
                bytes_transferred: r.bytes_transferred,
            }),
            Err(crate::reconfig::ReconfigError::Fetch(e)) => Err(e),
            // Participant crashes only occur with a probe installed; probe
            // -driven tests call the phased engine directly. Map the
            // fail-stopped position onto the recovery vocabulary.
            Err(crate::reconfig::ReconfigError::Failed(_)) => {
                Err(RecoveryError::Aborted { mbox: idx })
            }
        }
    }

    /// Fetches every group's state in parallel threads, then restores.
    fn parallel_state_recovery(
        &self,
        state: &Arc<ReplicaState>,
        idx: usize,
        region: RegionId,
        ring: RingMath,
    ) -> Result<(usize, Vec<usize>), RecoveryError> {
        // The groups to repair: the replica's own middlebox plus the f it
        // replicates.
        let mut groups: Vec<usize> = Vec::with_capacity(ring.f + 1);
        if ring.f > 0 {
            groups.push(idx);
        }
        groups.extend(ring.replicated_by(idx));

        type Fetched = (usize, usize, StoreSnapshot, Vec<u64>);
        let fetch_one = |m: usize| -> Result<Fetched, RecoveryError> {
            for src in source_order(ring, idx, m) {
                if src == idx {
                    continue;
                }
                let Some(client) = self.delayed_client(src, region) else {
                    continue;
                };
                match client.call(CtrlReq::FetchState { mbox: m }, self.cfg.fetch_timeout) {
                    Ok(CtrlResp::State { snapshot, max }) => return Ok((src, m, snapshot, max)),
                    _ => continue, // dead or does not hold it: try the next source
                }
            }
            Err(RecoveryError::NoSource { mbox: m })
        };

        let results: Vec<Result<Fetched, RecoveryError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = groups
                .iter()
                .map(|&m| scope.spawn(move || fetch_one(m)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("fetch thread"))
                .collect()
        });

        let mut bytes = 0;
        let mut sources = Vec::new();
        let mut fetched = Vec::new();
        for r in results {
            match r {
                Ok(f) => fetched.push(f),
                Err(e) => {
                    // Don't leave partial sources quiesced forever.
                    let touched: Vec<usize> = fetched.iter().map(|(src, _, _, _)| *src).collect();
                    self.resume_replicas(&touched);
                    return Err(e);
                }
            }
        }
        for (src, m, snapshot, max) in fetched {
            bytes += snapshot.byte_size();
            sources.push(src);
            if m == idx {
                state.restore_own(&snapshot, &max);
            } else {
                state.restore_replicated(m, &snapshot, max);
            }
        }
        sources.sort_unstable();
        sources.dedup();
        Ok((bytes, sources))
    }

    /// A control client for `src` as seen from `caller_region` (None if the
    /// replica's server is dead).
    fn delayed_client(&self, src: usize, caller_region: RegionId) -> Option<CtrlClient> {
        if !self.chain.is_alive(src) {
            return None;
        }
        let slot = &self.chain.replicas[src];
        let delay = self.chain.topology.one_way(caller_region, slot.region);
        Some(slot.ctrl.with_delay(delay))
    }

    /// Records a journal event attributed to the orchestrator.
    pub(crate) fn journal(&self, kind: EventKind) {
        self.chain
            .metrics
            .journal
            .record(EventSource::Orchestrator, kind);
    }

    /// Derives the Fig-13 recovery timelines from the chain's journal
    /// without draining it (one entry per completed recovery).
    pub fn recovery_timelines(&self) -> Vec<ftc_core::journal::RecoveryTimeline> {
        ftc_core::journal::recovery_timelines(&self.chain.metrics.journal.trace())
    }

    /// Access to the orchestrator config.
    pub fn config(&self) -> &OrchestratorConfig {
        &self.cfg
    }
}

/// Runs the orchestrator's monitoring loop on a background thread until
/// `stop` is set: heartbeat every `heartbeat_interval`, recover whatever
/// fail-stops. This is the hands-off production mode; experiments that need
/// step-by-step control call [`Orchestrator::monitor_round`] directly.
///
/// The orchestrator is shared behind a mutex so callers can still inject
/// traffic and inspect the chain between rounds.
pub fn spawn_monitor(
    orch: Arc<parking_lot::Mutex<Orchestrator>>,
    stop: Arc<std::sync::atomic::AtomicBool>,
) -> std::thread::JoinHandle<Vec<(usize, Duration)>> {
    std::thread::Builder::new()
        .name("ftc-orchestrator".into())
        .spawn(move || {
            let mut recoveries = Vec::new();
            let interval = orch.lock().cfg.heartbeat_interval;
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                let results = orch.lock().monitor_round();
                for (idx, r) in results {
                    if let Ok(report) = r {
                        recoveries.push((idx, report.total()));
                    }
                }
                // Heartbeat cadence (§4.2): a fixed detection interval, the
                // detector's own timeout machinery, not ad-hoc polling.
                // forbidden-ok: thread-sleep
                std::thread::sleep(interval);
            }
            recoveries
        })
        .expect("spawn orchestrator thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_core::config::ChainConfig;
    use ftc_mbox::MbSpec;
    use ftc_packet::builder::UdpPacketBuilder;
    use std::net::Ipv4Addr;

    fn pkt(i: u16) -> ftc_packet::Packet {
        UdpPacketBuilder::new()
            .src(Ipv4Addr::new(10, 0, 0, 1), 1000 + i)
            .dst(Ipv4Addr::new(10, 9, 9, 9), 80)
            .ident(i)
            .build()
    }

    fn orch(n: usize, f: usize) -> Orchestrator {
        let specs = (0..n)
            .map(|_| MbSpec::Monitor { sharing_level: 1 })
            .collect();
        let chain = FtcChain::deploy(ChainConfig::new(specs).with_f(f));
        Orchestrator::new(chain, OrchestratorConfig::default())
    }

    #[test]
    fn recover_middle_replica_restores_state_and_traffic() {
        let mut o = orch(3, 1);
        for i in 0..20 {
            o.chain.inject(pkt(i));
        }
        let got = o.chain.egress().collect(20, Duration::from_secs(10));
        assert_eq!(got.len(), 20);
        std::thread::sleep(Duration::from_millis(50)); // let the ring commit

        o.chain.kill(1);
        let report = o.recover(1, RegionId(0)).expect("recovery succeeds");
        assert!(report.bytes_transferred > 0);
        assert!(report.total() > Duration::ZERO);

        // The replacement holds m1's pre-failure state (recovered from its
        // successor r2) …
        let new_r1 = &o.chain.replicas[1].state;
        assert_eq!(new_r1.own_store.peek_u64(b"mon:packets:g0"), Some(20));
        // … and m0's replica copy (recovered from its predecessor r0).
        assert_eq!(
            new_r1.replicated[&0].store.peek_u64(b"mon:packets:g0"),
            Some(20)
        );

        // Traffic flows again and the counter continues from 20.
        for i in 20..30 {
            o.chain.inject(pkt(i));
        }
        let got = o.chain.egress().collect(10, Duration::from_secs(10));
        assert_eq!(got.len(), 10);
        assert_eq!(new_r1.own_store.peek_u64(b"mon:packets:g0"), Some(30));
    }

    #[test]
    fn monitor_round_detects_and_recovers() {
        let mut o = orch(3, 1);
        for i in 0..5 {
            o.chain.inject(pkt(i));
        }
        o.chain.egress().collect(5, Duration::from_secs(10));
        o.chain.kill(2);
        // Two rounds to cross the miss threshold.
        assert!(o.monitor_round().is_empty());
        let results = o.monitor_round();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].0, 2);
        assert!(results[0].1.is_ok());
        assert!(o.chain.is_alive(2));
    }

    #[test]
    fn head_and_tail_positions_recover() {
        for idx in [0usize, 2] {
            let mut o = orch(3, 1);
            for i in 0..10 {
                o.chain.inject(pkt(i));
            }
            assert_eq!(
                o.chain.egress().collect(10, Duration::from_secs(10)).len(),
                10
            );
            std::thread::sleep(Duration::from_millis(50));
            o.chain.kill(idx);
            let report = o.recover(idx, RegionId(0)).expect("recovery");
            assert!(report.bytes_transferred > 0, "idx {idx}");
            // Post-recovery traffic flows end to end.
            for i in 10..20 {
                o.chain.inject(pkt(i));
            }
            let got = o.chain.egress().collect(10, Duration::from_secs(10));
            assert_eq!(got.len(), 10, "traffic must flow after recovering r{idx}");
        }
    }

    #[test]
    fn vertical_rescale_changes_thread_count_and_keeps_state() {
        // §4.3: replicas may run with a different number of threads than
        // the middlebox they replicate — scale r1 from 1 to 2 workers while
        // the rest of the chain stays single-threaded.
        let mut o = orch(3, 1);
        for i in 0..30 {
            o.chain.inject(pkt(i));
        }
        assert_eq!(
            o.chain.egress().collect(30, Duration::from_secs(10)).len(),
            30
        );
        std::thread::sleep(Duration::from_millis(80));

        let report = o.rescale(1, 2).expect("rescale");
        assert!(report.bytes_transferred > 0);
        assert_eq!(o.chain.replicas[1].state.cfg.workers, 2);
        assert_eq!(o.chain.replicas[0].state.cfg.workers, 1, "others untouched");

        // State survived the planned replacement…
        assert_eq!(
            o.chain.replicas[1]
                .state
                .own_store
                .peek_u64(b"mon:packets:g0"),
            Some(30)
        );
        // …and the mixed-thread-count chain keeps processing correctly
        // (with 2 workers the Monitor splits counts across per-worker
        // group counters; the total is what must be exact).
        for i in 0..40 {
            o.chain.inject(pkt(100 + i));
        }
        assert_eq!(
            o.chain.egress().collect(40, Duration::from_secs(10)).len(),
            40
        );
        let total = |o: &Orchestrator| {
            let s = &o.chain.replicas[1].state.own_store;
            s.peek_u64(b"mon:packets:g0").unwrap_or(0) + s.peek_u64(b"mon:packets:g1").unwrap_or(0)
        };
        assert_eq!(total(&o), 70);
        // The resized instance can itself fail and recover afterwards.
        std::thread::sleep(Duration::from_millis(80));
        o.chain.kill(1);
        o.recover(1, RegionId(0)).expect("recover resized replica");
        assert_eq!(total(&o), 70);
    }

    #[test]
    fn scale_down_to_fewer_workers() {
        // "failing over to a server with fewer CPU cores when resources are
        // scarce during a major outage" (§1).
        let specs = vec![
            MbSpec::Monitor { sharing_level: 2 },
            MbSpec::Monitor { sharing_level: 2 },
        ];
        let chain = FtcChain::deploy(ChainConfig::new(specs).with_f(1).with_workers(2));
        let mut o = Orchestrator::new(chain, OrchestratorConfig::default());
        for i in 0..20 {
            o.chain.inject(pkt(i));
        }
        assert_eq!(
            o.chain.egress().collect(20, Duration::from_secs(10)).len(),
            20
        );
        std::thread::sleep(Duration::from_millis(80));
        o.rescale(0, 1).expect("scale down");
        assert_eq!(o.chain.replicas[0].state.cfg.workers, 1);
        for i in 0..20 {
            o.chain.inject(pkt(200 + i));
        }
        assert_eq!(
            o.chain.egress().collect(20, Duration::from_secs(10)).len(),
            20
        );
        let s = &o.chain.replicas[0].state.own_store;
        let total =
            s.peek_u64(b"mon:packets:g0").unwrap_or(0) + s.peek_u64(b"mon:packets:g1").unwrap_or(0);
        assert_eq!(total, 40);
    }

    #[test]
    fn background_monitor_auto_recovers() {
        let o = Arc::new(parking_lot::Mutex::new(orch(3, 1)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let handle = super::spawn_monitor(Arc::clone(&o), Arc::clone(&stop));

        // Traffic, then a failure the background loop must notice.
        for i in 0..20 {
            o.lock().chain.inject(pkt(i));
        }
        {
            let guard = o.lock();
            assert_eq!(
                guard
                    .chain
                    .egress()
                    .collect(20, Duration::from_secs(10))
                    .len(),
                20
            );
        }
        std::thread::sleep(Duration::from_millis(80));
        o.lock().chain.kill(1);

        // Wait for the loop to repair it.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            {
                let guard = o.lock();
                if guard.chain.is_alive(1)
                    && guard.chain.replicas[1]
                        .state
                        .own_store
                        .peek_u64(b"mon:packets:g0")
                        == Some(20)
                {
                    break;
                }
            }
            assert!(
                Instant::now() < deadline,
                "monitor loop failed to repair r1"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
        let recoveries = handle.join().unwrap();
        assert!(recoveries.iter().any(|(idx, _)| *idx == 1));
    }

    #[test]
    fn unrecoverable_when_all_sources_dead() {
        let mut o = orch(2, 1);
        o.chain.kill(0);
        o.chain.kill(1);
        let err = o.recover(0, RegionId(0)).unwrap_err();
        assert!(matches!(err, RecoveryError::NoSource { .. }));
    }
}
