//! Planned reconfiguration over the threaded chain (ROADMAP item 2).
//!
//! The orchestrator-driven counterpart of the deterministic
//! [`SyncChain`](ftc_core::testkit::SyncChain) handover the model checker
//! exercises: the same four-phase handshake of [`ftc_core::reconfig`] —
//! **prepare** (quiesce the source exactly like a §4.1 recovery source),
//! **transfer** (fetch the committed prefix group by group over the
//! control plane), **switch** (the commit point: fail-stop the old server,
//! wire in the replacement), **release** (decommission the source and
//! resume traffic) — executed wall-clock against real replica threads.
//!
//! Every phase reports a
//! [`ProbePoint::Reconfig`](ftc_core::probe::ProbePoint) to the
//! orchestrator's [`reconfig_probe`](crate::Orchestrator::reconfig_probe)
//! slot before its effects land. A `Crash` verdict fail-stops that
//! participant at exactly that point, which puts the chain in one of the
//! two defined states of the [`ReconfigFailure`] contract:
//!
//! * **roll back** (crash before the switch commit) — the old
//!   configuration is intact, the quiesced source is resumed, and the
//!   operation can simply be retried;
//! * **roll forward** (crash at or after the switch) — the position is
//!   fail-stopped on the *new* configuration and standard §5.2 recovery
//!   ([`Orchestrator::recover`]) repairs it, or (orchestrator dying at
//!   release) the destination is already serving and only the
//!   decommission message is lost.
//!
//! Journal shape is identical to unplanned recovery (`RespawnIssued` →
//! `StateFetchStarted` → `StateFetchFinished` → `TrafficResumed`), so a
//! completed handover shows up in
//! [`recovery_timelines`](Orchestrator::recovery_timelines) like any
//! Fig-13 recovery — reconfiguration is planned failure, not a new
//! subsystem.

use crate::orchestrator::Orchestrator;
use ftc_core::control::{CtrlReq, CtrlResp, OutPort};
use ftc_core::journal::EventKind;
use ftc_core::probe::{ProbePoint, ProbeVerdict};
use ftc_core::reconfig::{ReconfigActor, ReconfigFailure, ReconfigOp, ReconfigPhase};
use ftc_core::recovery::RecoveryError;
use ftc_core::replica::ReplicaState;
use ftc_net::topology::RegionId;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-phase timings and transfer volume of one completed handover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconfigReport {
    /// The operation performed.
    pub op: ReconfigOp,
    /// The ring position reconfigured.
    pub position: usize,
    /// Prepare: destination spawn (RTT + process start) and source seal.
    pub prepare: Duration,
    /// Transfer: group-by-group state fetch from the quiesced source.
    pub transfer: Duration,
    /// Switch: the commit point — old server fail-stopped, replacement
    /// wired in.
    pub switch: Duration,
    /// Release: source decommission and traffic resume.
    pub release: Duration,
    /// State bytes moved during the transfer phase.
    pub bytes_transferred: usize,
}

impl ReconfigReport {
    /// End-to-end handover time.
    pub fn total(&self) -> Duration {
        self.prepare + self.transfer + self.switch + self.release
    }
}

/// Why a handover did not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReconfigError {
    /// A participant fail-stopped mid-handshake (probe verdict). The
    /// chain is in the defined state the [`ReconfigFailure`] variant
    /// documents: rolled back (retry at will) or rolled forward (repair
    /// with [`Orchestrator::recover`]).
    Failed(ReconfigFailure),
    /// The state fetch could not complete (source stopped answering).
    /// The operation rolls back; the old configuration keeps serving.
    Fetch(RecoveryError),
}

impl std::fmt::Display for ReconfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReconfigError::Failed(e) => write!(f, "reconfiguration failed: {e}"),
            ReconfigError::Fetch(e) => write!(f, "reconfiguration state fetch failed: {e}"),
        }
    }
}

impl std::error::Error for ReconfigError {}

impl From<ReconfigFailure> for ReconfigError {
    fn from(e: ReconfigFailure) -> ReconfigError {
        ReconfigError::Failed(e)
    }
}

impl Orchestrator {
    /// Migrates the instance at `idx` onto a fresh server in `region`
    /// through the four-phase handshake. State, worker count, and ring
    /// role carry over; only the server (and possibly region) changes.
    pub fn migrate_instance(
        &mut self,
        idx: usize,
        region: RegionId,
    ) -> Result<ReconfigReport, ReconfigError> {
        let workers = self.chain.replicas[idx].state.cfg.workers;
        self.handover(ReconfigOp::Migrate, idx, region, workers)
    }

    /// Rescales the instance at `idx` to `workers` worker threads through
    /// the four-phase handshake (paper §4.3: a running middlebox "can be
    /// replaced with a new instance with a different number of CPU
    /// cores"). The replacement lands on a server in the same region.
    pub fn scale_instance(
        &mut self,
        idx: usize,
        workers: usize,
    ) -> Result<ReconfigReport, ReconfigError> {
        assert!(workers >= 1);
        let region = self.chain.replicas[idx].region;
        self.handover(ReconfigOp::Scale, idx, region, workers)
    }

    /// Reports a reconfiguration probe point; true means a crash verdict.
    fn crash_at(
        &self,
        op: ReconfigOp,
        phase: ReconfigPhase,
        role: ReconfigActor,
        idx: usize,
    ) -> bool {
        self.reconfig_probe.observe_with(|| ProbePoint::Reconfig {
            op,
            phase,
            role,
            mbox: idx,
        }) == ProbeVerdict::Crash
    }

    /// The four-phase handover: replace the instance at `idx` with a
    /// fresh one (`workers` threads, server in `region`) without losing
    /// committed state.
    fn handover(
        &mut self,
        op: ReconfigOp,
        idx: usize,
        region: RegionId,
        workers: usize,
    ) -> Result<ReconfigReport, ReconfigError> {
        let ring = self.chain.cfg.ring();

        // ---- Phase 1: prepare -------------------------------------------
        // Orchestrator commit record first: a crash here loses the whole
        // plan before anything is touched.
        let t0 = Instant::now();
        if self.crash_at(op, ReconfigPhase::Prepare, ReconfigActor::Orchestrator, idx) {
            return Err(ReconfigFailure::OrchestratorCrashed {
                phase: ReconfigPhase::Prepare,
            }
            .into());
        }
        self.journal(EventKind::RespawnIssued {
            replica: idx as u16,
        });
        // Spawn the destination on a server in `region`: WAN RTT +
        // spawn-cost emulation (a modeled delay, not a poll).
        // forbidden-ok: thread-sleep
        std::thread::sleep(
            self.chain
                .topology
                .rtt(self.cfg.region, region)
                .saturating_add(self.cfg.spawn_cost),
        );
        let spec = &self.chain.cfg.effective_middleboxes()[idx];
        let mut cfg = (*self.chain.cfg).clone();
        cfg.workers = workers;
        let dest = ReplicaState::new(
            idx,
            Arc::new(cfg),
            spec.build(),
            Arc::new(OutPort::empty()),
            Arc::clone(&self.chain.metrics),
        );
        // The source seals here: its first FetchState answer pauses it and
        // discards parked packets, the §4.1 recovery-source rule. A source
        // crash at this point is an ordinary fail-stop of the position.
        if self.crash_at(op, ReconfigPhase::Prepare, ReconfigActor::Source, idx) {
            self.chain.kill(idx);
            return Err(ReconfigFailure::SourceCrashed {
                phase: ReconfigPhase::Prepare,
            }
            .into());
        }
        let prepare = t0.elapsed();

        // ---- Phase 2: transfer ------------------------------------------
        // The old instance is alive and is its own best source (the
        // freshest copy of every group it holds). One fetch per group, the
        // probe point firing source-side after the export and
        // destination-side after the import — the per-chunk crash hooks of
        // the model checker's transfer triggers.
        let t1 = Instant::now();
        self.journal(EventKind::StateFetchStarted {
            replica: idx as u16,
        });
        let mut bytes = 0usize;
        {
            let old = self.chain.replicas[idx].ctrl.clone();
            let timeout = self.cfg.fetch_timeout;
            let mut groups: Vec<usize> = Vec::with_capacity(ring.f + 1);
            if ring.f > 0 {
                groups.push(idx);
            }
            groups.extend(ring.replicated_by(idx));
            for m in groups {
                let (snapshot, max) = match old.call(CtrlReq::FetchState { mbox: m }, timeout) {
                    Ok(CtrlResp::State { snapshot, max }) => (snapshot, max),
                    _ => {
                        // Source stopped answering: roll back (best
                        // effort — if it is truly dead, Resume is a no-op
                        // and the detector's recovery path takes over).
                        self.resume_replicas(&[idx]);
                        return Err(ReconfigError::Fetch(RecoveryError::NoSource { mbox: m }));
                    }
                };
                if self.crash_at(op, ReconfigPhase::Transfer, ReconfigActor::Source, idx) {
                    self.chain.kill(idx);
                    return Err(ReconfigFailure::SourceCrashed {
                        phase: ReconfigPhase::Transfer,
                    }
                    .into());
                }
                bytes += snapshot.byte_size();
                if m == idx {
                    dest.restore_own(&snapshot, &max);
                } else {
                    dest.restore_replicated(m, &snapshot, max);
                }
                if self.crash_at(op, ReconfigPhase::Transfer, ReconfigActor::Destination, idx) {
                    // The half-built destination is discarded (dropped) and
                    // the sealed source resumes: old configuration intact.
                    self.resume_replicas(&[idx]);
                    return Err(ReconfigFailure::DestinationCrashed {
                        phase: ReconfigPhase::Transfer,
                    }
                    .into());
                }
            }
        }
        self.journal(EventKind::StateFetchFinished {
            replica: idx as u16,
            bytes: bytes as u64,
        });
        let transfer = t1.elapsed();

        // ---- Phase 3: switch --------------------------------------------
        // The commit point. Before it, everything rolls back; at it, the
        // destination owns the position.
        let t2 = Instant::now();
        if self.crash_at(op, ReconfigPhase::Switch, ReconfigActor::Orchestrator, idx) {
            self.resume_replicas(&[idx]);
            return Err(ReconfigFailure::OrchestratorCrashed {
                phase: ReconfigPhase::Switch,
            }
            .into());
        }
        self.chain.kill(idx);
        self.chain.respawn(idx, region, dest);
        if self.crash_at(op, ReconfigPhase::Switch, ReconfigActor::Destination, idx) {
            // Past the commit point: the position fail-stops on the *new*
            // configuration and §5.2 recovery rolls it forward.
            self.chain.kill(idx);
            return Err(ReconfigFailure::DestinationCrashed {
                phase: ReconfigPhase::Switch,
            }
            .into());
        }
        let switch = t2.elapsed();

        // ---- Phase 4: release -------------------------------------------
        // Decommission the source and declare traffic resumed. The old
        // server was already fail-stopped at the switch, so an
        // orchestrator crash here only loses the journal line — the
        // destination keeps serving (roll forward).
        let t3 = Instant::now();
        if self.crash_at(op, ReconfigPhase::Release, ReconfigActor::Orchestrator, idx) {
            return Err(ReconfigFailure::OrchestratorCrashed {
                phase: ReconfigPhase::Release,
            }
            .into());
        }
        self.journal(EventKind::TrafficResumed {
            replica: idx as u16,
        });
        let release = t3.elapsed();

        Ok(ReconfigReport {
            op,
            position: idx,
            prepare,
            transfer,
            switch,
            release,
            bytes_transferred: bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orchestrator::OrchestratorConfig;
    use ftc_core::chain::FtcChain;
    use ftc_core::config::ChainConfig;
    use ftc_core::probe::ProtocolProbe;
    use ftc_mbox::MbSpec;
    use ftc_packet::builder::UdpPacketBuilder;
    use parking_lot::Mutex;
    use std::net::Ipv4Addr;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn pkt(i: u16) -> ftc_packet::Packet {
        UdpPacketBuilder::new()
            .src(Ipv4Addr::new(10, 0, 0, 1), 1000 + i)
            .dst(Ipv4Addr::new(10, 9, 9, 9), 80)
            .ident(i)
            .build()
    }

    fn orch(n: usize, f: usize) -> Orchestrator {
        let specs = (0..n)
            .map(|_| MbSpec::Monitor { sharing_level: 1 })
            .collect();
        let chain = FtcChain::deploy(ChainConfig::new(specs).with_f(f));
        Orchestrator::new(chain, OrchestratorConfig::default())
    }

    /// Warm the chain with `n` packets and let the ring commit.
    fn warm(o: &mut Orchestrator, n: u16) {
        for i in 0..n {
            o.chain.inject(pkt(i));
        }
        assert_eq!(
            o.chain
                .egress()
                .collect(n as usize, Duration::from_secs(10))
                .len(),
            n as usize
        );
        std::thread::sleep(Duration::from_millis(80));
    }

    fn counter(o: &Orchestrator, idx: usize) -> u64 {
        let s = &o.chain.replicas[idx].state.own_store;
        s.peek_u64(b"mon:packets:g0").unwrap_or(0) + s.peek_u64(b"mon:packets:g1").unwrap_or(0)
    }

    /// Records every reconfiguration point as "phase:role".
    struct Recording(Mutex<Vec<String>>);
    impl ProtocolProbe for Recording {
        fn on_step(&self, point: ProbePoint) -> ProbeVerdict {
            if let ProbePoint::Reconfig { phase, role, .. } = point {
                self.0
                    .lock()
                    .push(format!("{}:{}", phase.label(), role.label()));
            }
            ProbeVerdict::Continue
        }
    }

    /// Crashes at the first observation of `(phase, role)`, then continues.
    struct CrashAt {
        phase: ReconfigPhase,
        role: ReconfigActor,
        fired: AtomicBool,
    }
    impl CrashAt {
        fn new(phase: ReconfigPhase, role: ReconfigActor) -> Arc<CrashAt> {
            Arc::new(CrashAt {
                phase,
                role,
                fired: AtomicBool::new(false),
            })
        }
    }
    impl ProtocolProbe for CrashAt {
        fn on_step(&self, point: ProbePoint) -> ProbeVerdict {
            if let ProbePoint::Reconfig { phase, role, .. } = point {
                if phase == self.phase
                    && role == self.role
                    && !self.fired.swap(true, Ordering::SeqCst)
                {
                    return ProbeVerdict::Crash;
                }
            }
            ProbeVerdict::Continue
        }
    }

    #[test]
    fn migrate_keeps_state_and_walks_the_phase_sequence() {
        let mut o = orch(3, 1);
        warm(&mut o, 20);

        let rec = Arc::new(Recording(Mutex::new(Vec::new())));
        o.reconfig_probe
            .install(Arc::clone(&rec) as Arc<dyn ProtocolProbe>);
        let report = o.migrate_instance(1, RegionId(0)).expect("migrate");
        o.reconfig_probe.clear();

        assert_eq!(report.op, ReconfigOp::Migrate);
        assert_eq!(report.position, 1);
        assert!(report.bytes_transferred > 0);
        assert!(report.total() > Duration::ZERO);
        // f=1 ⇒ the instance holds its own group plus one replicated
        // group: two transfer chunks, each with a source and a
        // destination point.
        assert_eq!(
            *rec.0.lock(),
            vec![
                "prepare:orchestrator",
                "prepare:source",
                "transfer:source",
                "transfer:destination",
                "transfer:source",
                "transfer:destination",
                "switch:orchestrator",
                "switch:destination",
                "release:orchestrator",
            ]
        );

        // State survived the handover and traffic continues.
        assert_eq!(counter(&o, 1), 20);
        for i in 20..30 {
            o.chain.inject(pkt(i));
        }
        assert_eq!(
            o.chain.egress().collect(10, Duration::from_secs(10)).len(),
            10
        );
        assert_eq!(counter(&o, 1), 30);
    }

    #[test]
    fn scale_instance_reports_phase_timings() {
        let mut o = orch(3, 1);
        warm(&mut o, 30);
        let report = o.scale_instance(1, 2).expect("scale");
        assert_eq!(report.op, ReconfigOp::Scale);
        assert_eq!(o.chain.replicas[1].state.cfg.workers, 2);
        assert_eq!(counter(&o, 1), 30);
        // A planned handover journals exactly like a recovery, so it shows
        // up as one more Fig-13 timeline.
        let timelines = o.recovery_timelines();
        assert!(
            timelines.iter().any(|t| t.replica == 1),
            "handover must appear in the journal timelines: {timelines:?}"
        );
    }

    #[test]
    fn destination_crash_in_transfer_rolls_back_and_retries() {
        let mut o = orch(3, 1);
        warm(&mut o, 20);

        let probe = CrashAt::new(ReconfigPhase::Transfer, ReconfigActor::Destination);
        o.reconfig_probe.install(probe as Arc<dyn ProtocolProbe>);
        let err = o.migrate_instance(1, RegionId(0)).unwrap_err();
        o.reconfig_probe.clear();
        assert_eq!(
            err,
            ReconfigError::Failed(ReconfigFailure::DestinationCrashed {
                phase: ReconfigPhase::Transfer
            })
        );

        // Old configuration intact: the source resumed and keeps serving.
        assert!(o.chain.is_alive(1));
        assert_eq!(counter(&o, 1), 20);
        for i in 20..30 {
            o.chain.inject(pkt(i));
        }
        assert_eq!(
            o.chain.egress().collect(10, Duration::from_secs(10)).len(),
            10
        );
        std::thread::sleep(Duration::from_millis(80));

        // Retrying the same operation now succeeds.
        let report = o.migrate_instance(1, RegionId(0)).expect("retry");
        assert!(report.bytes_transferred > 0);
        assert_eq!(counter(&o, 1), 30);
    }

    #[test]
    fn orchestrator_crash_at_prepare_touches_nothing() {
        let mut o = orch(3, 1);
        warm(&mut o, 10);
        let probe = CrashAt::new(ReconfigPhase::Prepare, ReconfigActor::Orchestrator);
        o.reconfig_probe.install(probe as Arc<dyn ProtocolProbe>);
        let err = o.scale_instance(1, 2).unwrap_err();
        o.reconfig_probe.clear();
        assert_eq!(
            err,
            ReconfigError::Failed(ReconfigFailure::OrchestratorCrashed {
                phase: ReconfigPhase::Prepare
            })
        );
        assert!(o.chain.is_alive(1));
        assert_eq!(o.chain.replicas[1].state.cfg.workers, 1, "unchanged");
        for i in 10..20 {
            o.chain.inject(pkt(i));
        }
        assert_eq!(
            o.chain.egress().collect(10, Duration::from_secs(10)).len(),
            10
        );
    }

    #[test]
    fn destination_crash_at_switch_rolls_forward_via_recovery() {
        let mut o = orch(3, 1);
        warm(&mut o, 20);

        let probe = CrashAt::new(ReconfigPhase::Switch, ReconfigActor::Destination);
        o.reconfig_probe.install(probe as Arc<dyn ProtocolProbe>);
        let err = o.migrate_instance(1, RegionId(0)).unwrap_err();
        o.reconfig_probe.clear();
        assert_eq!(
            err,
            ReconfigError::Failed(ReconfigFailure::DestinationCrashed {
                phase: ReconfigPhase::Switch
            })
        );

        // Past the commit point the position is fail-stopped on the new
        // configuration; §5.2 recovery repairs it from the group.
        assert!(!o.chain.is_alive(1));
        o.recover(1, RegionId(0)).expect("roll-forward recovery");
        assert_eq!(counter(&o, 1), 20);
        for i in 20..30 {
            o.chain.inject(pkt(i));
        }
        assert_eq!(
            o.chain.egress().collect(10, Duration::from_secs(10)).len(),
            10
        );
        assert_eq!(counter(&o, 1), 30);
    }

    #[test]
    fn orchestrator_crash_at_release_leaves_destination_serving() {
        let mut o = orch(3, 1);
        warm(&mut o, 20);
        let probe = CrashAt::new(ReconfigPhase::Release, ReconfigActor::Orchestrator);
        o.reconfig_probe.install(probe as Arc<dyn ProtocolProbe>);
        let err = o.scale_instance(1, 2).unwrap_err();
        o.reconfig_probe.clear();
        assert_eq!(
            err,
            ReconfigError::Failed(ReconfigFailure::OrchestratorCrashed {
                phase: ReconfigPhase::Release
            })
        );
        // Roll forward: the operation committed at the switch; only the
        // decommission/journal step was lost.
        assert!(o.chain.is_alive(1));
        assert_eq!(o.chain.replicas[1].state.cfg.workers, 2);
        assert_eq!(counter(&o, 1), 20);
        for i in 20..30 {
            o.chain.inject(pkt(i));
        }
        assert_eq!(
            o.chain.egress().collect(10, Duration::from_secs(10)).len(),
            10
        );
    }
}
