//! Multi-process chain deployment: one OS process per replica, sockets in
//! between.
//!
//! The in-process [`FtcChain`](ftc_core::FtcChain) wires replicas with
//! in-memory channels; this module deploys the *same* protocol code as N
//! OS processes speaking the socket transport ([`ftc_net::sock`]). The
//! parent process hosts the chain edges — the forwarder (ingress) and the
//! buffer (egress) — while each `ftc node` child process hosts one replica.
//! Nothing above the transport layer changes: replicas run the unchanged
//! [`spawn_replica`] loop over [`OutPort`]/[`InPort`]/[`CtrlServer`]
//! handles that happen to be socket-backed.
//!
//! # Socket and stream conventions
//!
//! All processes of a deployment rendezvous through Unix sockets in one
//! runtime directory: replica `i` listens at `node-<i>.sock`, the parent at
//! `parent.sock`. Logical streams are multiplexed per connection by the
//! unified frame codec; stream ids are assigned so that no process ever
//! hosts a reliable sender and a reliable receiver on the same stream id
//! (each half consumes frames of the other's kind from a shared per-stream
//! queue, so collocation would lose frames):
//!
//! | stream            | contents                                    |
//! |-------------------|---------------------------------------------|
//! | `1 + i`           | data edge into replica `i` (and its ACKs)   |
//! | `1 + n`           | data edge tail replica → parent buffer      |
//! | `0x1000 + i`      | replica control (`CtrlReq`) served by `i`   |
//! | `0x2000 + i`      | node management (`NodeReq`) served by `i`   |
//!
//! Replica-control streams assume one caller at a time (learned-source
//! response routing): the parent only calls them for `Resume`, after the
//! recovering node's state fetches have finished.
//!
//! # Failure and recovery
//!
//! [`ProcChain::kill`] SIGKILLs a replica process — a genuine fail-stop.
//! [`ProcChain::recover`] mirrors the §5.2 three steps across the process
//! boundary: **initialization** respawns `ftc node … --recover`;
//! **state recovery** happens inside the replacement, which fetches the
//! `f + 1` groups from the survivors over their control sockets (quiescing
//! them, §4.1) before it answers on its management stream; **rerouting**
//! installs fresh reliable endpoints on the two edges around the
//! replacement — the predecessor's sender first, then the receivers, with
//! stale-epoch frames drained in between — and finally resumes every
//! replica.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use crossbeam::channel::{self, Receiver, Sender};
use ftc_core::buffer::{spawn_buffer, BufferState};
use ftc_core::chain::{ChainSystem, Egress};
use ftc_core::config::ChainConfig;
use ftc_core::control::{CtrlClient, CtrlReq, CtrlServer, InPort, OutPort};
use ftc_core::forwarder::{spawn_forwarder, ForwarderState};
use ftc_core::metrics::{ChainMetrics, MetricsSnapshot, StageStats};
use ftc_core::recovery::{recover_replica_state, RpcFetcher};
use ftc_core::replica::{spawn_replica, ReplicaState};
use ftc_mbox::parse_chain;
use ftc_net::nic::Nic;
use ftc_net::rpc::RpcError;
use ftc_net::sock::{SockNode, SockTransport};
use ftc_net::topology::RegionId;
use ftc_net::{reliable_pair, Endpoint, PeerAddr, RpcCaller, Server, Transport};
use ftc_packet::Packet;
use parking_lot::Mutex;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Stream carrying data into replica `i` (and, on the sender's side, the
/// ACK/NACKs coming back for that edge).
fn data_stream(i: usize) -> u16 {
    1 + i as u16
}

/// Stream carrying the tail replica's output into the parent's buffer.
fn tail_stream(n: usize) -> u16 {
    1 + n as u16
}

/// Replica-control stream ([`CtrlReq`]) served by replica `i`.
fn repl_ctrl_stream(i: usize) -> u16 {
    0x1000 + i as u16
}

/// Node-management stream ([`NodeReq`]) served by replica `i`.
fn node_ctrl_stream(i: usize) -> u16 {
    0x2000 + i as u16
}

/// Unix socket address of replica process `i` in `dir`.
pub fn node_addr(dir: &Path, i: usize) -> PeerAddr {
    PeerAddr::Uds(dir.join(format!("node-{i}.sock")))
}

/// Unix socket address of the parent (forwarder + buffer) process.
pub fn parent_addr(dir: &Path) -> PeerAddr {
    PeerAddr::Uds(dir.join("parent.sock"))
}

// ---------------------------------------------------------------------------
// Node-management protocol (parent → replica process).
// ---------------------------------------------------------------------------

/// A management request to a replica process. Distinct from [`CtrlReq`]:
/// control requests are part of the FTC protocol (§4.1/§5.2), management
/// requests operate the *process* — liveness, rerouting, stats, shutdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeReq {
    /// Liveness probe. A replacement only answers once state recovery is
    /// done, so the first `Pong` doubles as the ready signal.
    Ping,
    /// Install a fresh reliable sender on the outgoing data edge (the
    /// successor was respawned; its receiver restarts at sequence zero).
    ResetOut,
    /// Install a fresh reliable receiver on the incoming data edge,
    /// discarding frames queued from the dead predecessor's epoch.
    ResetIn,
    /// Report the node-local metrics counters.
    Stats,
    /// Stop the replica and exit the process.
    Shutdown,
}

/// A management response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeResp {
    /// Alive (and, for a replacement, recovered).
    Pong,
    /// The requested action completed.
    Done,
    /// Node-local counters.
    Stats(NodeStats),
}

/// The replica-side slice of the chain metrics: the stages and counters
/// that live in the node processes (the parent holds the forwarder and
/// buffer stages itself).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Piggyback logs applied at this replica.
    pub logs_applied: u64,
    /// Piggyback trailer bytes attached at this replica's head role.
    pub piggyback_bytes: u64,
    /// Packets that carried a trailer out of this replica.
    pub piggyback_count: u64,
    /// Table-2 stage: middlebox transaction execution.
    pub transaction: StageStats,
    /// Table-2 stage: piggyback construction.
    pub piggyback: StageStats,
    /// Table-2 stage: log application.
    pub apply: StageStats,
}

const REQ_PING: u8 = 1;
const REQ_RESET_OUT: u8 = 2;
const REQ_RESET_IN: u8 = 3;
const REQ_STATS: u8 = 4;
const REQ_SHUTDOWN: u8 = 5;

const RESP_PONG: u8 = 1;
const RESP_DONE: u8 = 2;
const RESP_STATS: u8 = 3;

/// Encodes a management request.
pub fn encode_node_req(req: NodeReq) -> Bytes {
    let tag = match req {
        NodeReq::Ping => REQ_PING,
        NodeReq::ResetOut => REQ_RESET_OUT,
        NodeReq::ResetIn => REQ_RESET_IN,
        NodeReq::Stats => REQ_STATS,
        NodeReq::Shutdown => REQ_SHUTDOWN,
    };
    Bytes::copy_from_slice(&[tag])
}

/// Decodes a management request (`None` on garbage).
pub fn decode_node_req(b: &[u8]) -> Option<NodeReq> {
    match b {
        [REQ_PING] => Some(NodeReq::Ping),
        [REQ_RESET_OUT] => Some(NodeReq::ResetOut),
        [REQ_RESET_IN] => Some(NodeReq::ResetIn),
        [REQ_STATS] => Some(NodeReq::Stats),
        [REQ_SHUTDOWN] => Some(NodeReq::Shutdown),
        _ => None,
    }
}

fn put_stage(buf: &mut BytesMut, s: &StageStats) {
    buf.put_u64(s.samples);
    buf.put_u64(s.mean_ns);
    buf.put_u64(s.p50_ns);
    buf.put_u64(s.p99_ns);
    buf.put_u64(s.p999_ns);
}

fn take_stage(b: &mut &[u8]) -> Option<StageStats> {
    if b.remaining() < 5 * 8 {
        return None;
    }
    Some(StageStats {
        samples: b.get_u64(),
        mean_ns: b.get_u64(),
        p50_ns: b.get_u64(),
        p99_ns: b.get_u64(),
        p999_ns: b.get_u64(),
    })
}

/// Encodes a management response.
pub fn encode_node_resp(resp: &NodeResp) -> Bytes {
    let mut buf = BytesMut::new();
    match resp {
        NodeResp::Pong => buf.put_u8(RESP_PONG),
        NodeResp::Done => buf.put_u8(RESP_DONE),
        NodeResp::Stats(s) => {
            buf.put_u8(RESP_STATS);
            buf.put_u64(s.logs_applied);
            buf.put_u64(s.piggyback_bytes);
            buf.put_u64(s.piggyback_count);
            put_stage(&mut buf, &s.transaction);
            put_stage(&mut buf, &s.piggyback);
            put_stage(&mut buf, &s.apply);
        }
    }
    buf.freeze()
}

/// Decodes a management response (`None` on garbage or truncation).
pub fn decode_node_resp(mut b: &[u8]) -> Option<NodeResp> {
    if !b.has_remaining() {
        return None;
    }
    match b.get_u8() {
        RESP_PONG => Some(NodeResp::Pong),
        RESP_DONE => Some(NodeResp::Done),
        RESP_STATS => {
            if b.remaining() < 3 * 8 {
                return None;
            }
            Some(NodeResp::Stats(NodeStats {
                logs_applied: b.get_u64(),
                piggyback_bytes: b.get_u64(),
                piggyback_count: b.get_u64(),
                transaction: take_stage(&mut b)?,
                piggyback: take_stage(&mut b)?,
                apply: take_stage(&mut b)?,
            }))
        }
        _ => None,
    }
}

/// Typed management client over any byte-level RPC caller.
pub struct NodeCtl {
    inner: Box<dyn RpcCaller>,
}

impl NodeCtl {
    /// Wraps a byte-level caller.
    pub fn new(inner: Box<dyn RpcCaller>) -> NodeCtl {
        NodeCtl { inner }
    }

    /// Performs one management request/response exchange.
    pub fn call(&self, req: NodeReq, timeout: Duration) -> Result<NodeResp, RpcError> {
        let resp = self.inner.call_bytes(encode_node_req(req), timeout)?;
        decode_node_resp(resp.as_ref()).ok_or(RpcError::Disconnected)
    }
}

// ---------------------------------------------------------------------------
// The replica process (`ftc node`).
// ---------------------------------------------------------------------------

/// Options for one replica process, mirrored by the `ftc node` CLI flags.
#[derive(Debug, Clone)]
pub struct NodeOpts {
    /// Chain spec (same grammar as every other subcommand); all processes
    /// of a deployment must be given the identical spec.
    pub chain: String,
    /// Failures to tolerate.
    pub f: usize,
    /// Worker threads per replica.
    pub workers: usize,
    /// This process's position in the effective chain.
    pub idx: usize,
    /// Runtime directory holding the deployment's Unix sockets.
    pub dir: PathBuf,
    /// Replacement mode: fetch state from the survivors before serving.
    pub recover: bool,
}

/// Runs one replica as the current process: binds `node-<idx>.sock`,
/// wires socket-backed ports to the neighbours, (optionally) recovers
/// state, spawns the unchanged replica loop, and serves management
/// requests until [`NodeReq::Shutdown`]. Blocks for the process lifetime.
pub fn run_node(opts: &NodeOpts) -> Result<(), String> {
    let specs = parse_chain(&opts.chain).map_err(|e| format!("--chain: {e}"))?;
    let cfg = Arc::new(
        ChainConfig::new(specs)
            .with_f(opts.f)
            .with_workers(opts.workers),
    );
    cfg.validate();
    let eff = cfg.effective_middleboxes();
    let n = eff.len();
    if opts.idx >= n {
        return Err(format!(
            "--idx {} out of range (effective chain length {n})",
            opts.idx
        ));
    }

    let local = node_addr(&opts.dir, opts.idx);
    let node = SockNode::bind(&local).map_err(|e| format!("binding {local}: {e}"))?;
    let transport = SockTransport::new(node.clone());
    let local_ep = Endpoint::sock(local);

    // Outgoing data edge: the successor replica, or the parent's buffer.
    let (next_ep, out_stream) = if opts.idx + 1 < n {
        (
            Endpoint::sock(node_addr(&opts.dir, opts.idx + 1)),
            data_stream(opts.idx + 1),
        )
    } else {
        (Endpoint::sock(parent_addr(&opts.dir)), tail_stream(n))
    };
    let out = Arc::new(OutPort::wired(transport.open_tx(&next_ep, out_stream)));
    let metrics = Arc::new(ChainMetrics::default());
    let state = ReplicaState::new(
        opts.idx,
        Arc::clone(&cfg),
        eff[opts.idx].build(),
        Arc::clone(&out),
        metrics,
    );

    if opts.recover {
        // Replacement: restore the f + 1 groups from the survivors over
        // their control sockets, following the §4.1 source order. The
        // sources quiesce themselves on FetchState; the parent resumes
        // everyone once rerouting is done. Dead peers cost one bounded
        // connect attempt before the next source is tried.
        let clients = (0..n)
            .map(|i| {
                if i == opts.idx {
                    return None;
                }
                let ep = Endpoint::sock(node_addr(&opts.dir, i))
                    .with_connect_timeout(Duration::from_millis(500));
                Some(CtrlClient::from_caller(
                    transport.rpc_caller(&ep, repl_ctrl_stream(i)),
                ))
            })
            .collect();
        let fetcher = RpcFetcher {
            clients,
            timeout: Duration::from_secs(5),
            _phantom: std::marker::PhantomData,
        };
        recover_replica_state(&state, &fetcher).map_err(|e| format!("state recovery: {e}"))?;
    }

    let in_port = Arc::new(InPort::wired(
        transport.open_rx(&local_ep, data_stream(opts.idx)),
    ));
    let ctrl =
        CtrlServer::from_responder(transport.rpc_responder(&local_ep, repl_ctrl_stream(opts.idx)));
    let mut nic = Nic::new(cfg.workers, cfg.nic_queue_depth);
    let queues = (0..cfg.workers).map(|w| nic.take_queue(w)).collect();
    let nic = Arc::new(nic);
    let mut server = Server::new(format!("node{}", opts.idx), RegionId(0));
    spawn_replica(
        &mut server,
        Arc::clone(&state),
        Arc::clone(&in_port),
        nic,
        queues,
        ctrl,
    );

    // Management loop on the main thread. Serving starts only after
    // recovery, so the parent's first successful Ping implies readiness.
    let mut mgmt = transport.rpc_responder(&local_ep, node_ctrl_stream(opts.idx));
    let mut stop = false;
    while !stop {
        let served = mgmt.serve_next_bytes(Duration::from_millis(50), &mut |req| {
            let resp = match decode_node_req(req.as_ref()) {
                // Garbage is answered like a probe: harmless either way.
                Some(NodeReq::Ping) | None => NodeResp::Pong,
                Some(NodeReq::ResetOut) => {
                    // Stale ACKs from the successor's previous incarnation
                    // must not prune the fresh sender's sequence space.
                    node.drain_stream(out_stream);
                    out.install(transport.open_tx(&next_ep, out_stream));
                    NodeResp::Done
                }
                Some(NodeReq::ResetIn) => {
                    node.drain_stream(data_stream(opts.idx));
                    in_port.install(transport.open_rx(&local_ep, data_stream(opts.idx)));
                    NodeResp::Done
                }
                Some(NodeReq::Stats) => {
                    let snap = state.metrics.snapshot();
                    NodeResp::Stats(NodeStats {
                        logs_applied: snap.logs_applied,
                        piggyback_bytes: snap.piggyback_bytes,
                        piggyback_count: snap.piggyback_count,
                        transaction: snap.transaction,
                        piggyback: snap.piggyback,
                        apply: snap.apply,
                    })
                }
                Some(NodeReq::Shutdown) => {
                    stop = true;
                    NodeResp::Done
                }
            };
            encode_node_resp(&resp)
        });
        if served.is_err() {
            break;
        }
    }
    server.kill();
    server.join();
    Ok(())
}

// ---------------------------------------------------------------------------
// The parent process.
// ---------------------------------------------------------------------------

/// Configuration for a multi-process chain deployment.
#[derive(Debug, Clone)]
pub struct ProcConfig {
    /// Chain spec (see [`parse_chain`] for the grammar).
    pub chain: String,
    /// Failures to tolerate.
    pub f: usize,
    /// Worker threads per replica.
    pub workers: usize,
    /// Runtime directory for the Unix sockets (created if missing).
    pub dir: PathBuf,
    /// Path to the `ftc` binary used to spawn replica processes.
    pub exe: PathBuf,
}

/// A chain deployed as `n + 1` OS processes: this (parent) process hosts
/// the forwarder and buffer; each replica runs in an `ftc node` child.
/// Implements [`ChainSystem`], so the traffic harness drives it exactly
/// like the in-process chain.
pub struct ProcChain {
    /// The parent's view of the (effective) configuration.
    pub cfg: Arc<ChainConfig>,
    chain_spec: String,
    dir: PathBuf,
    exe: PathBuf,
    node: SockNode,
    transport: SockTransport,
    children: Mutex<Vec<Option<Child>>>,
    /// Parent-side metrics: forwarder and buffer stages, ingress/egress
    /// counters. Merge in the replica-side counters with
    /// [`ProcChain::merged_snapshot`].
    pub metrics: Arc<ChainMetrics>,
    ingress: Sender<BytesMut>,
    ingress_out: Arc<OutPort>,
    tail_in: Arc<InPort>,
    egress_rx: Receiver<Packet>,
    server: Option<Server>,
    repl_ctrl: Mutex<Vec<CtrlClient>>,
    node_ctrl: Mutex<Vec<NodeCtl>>,
}

/// Management-call timeout used by the parent's rerouting steps.
const MGMT_TIMEOUT: Duration = Duration::from_secs(5);

impl ProcChain {
    /// Deploys the chain: binds `parent.sock`, spawns one `ftc node`
    /// process per effective middlebox, and wires the parent-side edges
    /// (forwarder → replica 0, tail replica → buffer).
    pub fn deploy(pc: ProcConfig) -> Result<ProcChain, String> {
        let specs = parse_chain(&pc.chain).map_err(|e| format!("chain spec: {e}"))?;
        let cfg = Arc::new(
            ChainConfig::new(specs)
                .with_f(pc.f)
                .with_workers(pc.workers),
        );
        cfg.validate();
        let n = cfg.effective_middleboxes().len();
        std::fs::create_dir_all(&pc.dir).map_err(|e| format!("creating {:?}: {e}", pc.dir))?;

        let local = parent_addr(&pc.dir);
        let node = SockNode::bind(&local).map_err(|e| format!("binding {local}: {e}"))?;
        let transport = SockTransport::new(node.clone());
        let local_ep = Endpoint::sock(local);
        let metrics = Arc::new(ChainMetrics::default());

        // Children first: their listeners come up while we wire our side
        // (patient dials wait out the startup race).
        let mut children = Vec::with_capacity(n);
        for i in 0..n {
            children.push(Some(spawn_node_proc(
                &pc.exe, &pc.chain, &cfg, i, &pc.dir, false,
            )?));
        }

        // Parent-side data plane. The forwarder dispatches into a local
        // single-queue NIC; a pump thread forwards that queue into the
        // socket edge toward replica 0. The buffer reads the tail edge and
        // feeds the forwarder back over an in-process link (both live
        // here).
        let ingress_out = Arc::new(OutPort::wired(
            transport.open_tx(&Endpoint::sock(node_addr(&pc.dir, 0)), data_stream(0)),
        ));
        let tail_in = Arc::new(InPort::wired(transport.open_rx(&local_ep, tail_stream(n))));
        let (fb_tx, fb_rx) = reliable_pair(&Endpoint::in_proc());
        let feedback_out = Arc::new(OutPort::wired(fb_tx));
        let feedback_in = Arc::new(InPort::wired(fb_rx));
        let (ingress_tx, ingress_rx) = channel::unbounded::<BytesMut>();
        let (egress_tx, egress_rx) = channel::unbounded::<Packet>();
        let forwarder = ForwarderState::new(Arc::clone(&metrics));
        let buffer = BufferState::new(cfg.ring(), egress_tx, feedback_out, Arc::clone(&metrics));

        let mut server = Server::new("gateway".to_string(), RegionId(0));
        let mut nic = Nic::new(1, cfg.nic_queue_depth);
        let nic_q = nic.take_queue(0);
        let nic = Arc::new(nic);
        spawn_forwarder(
            &mut server,
            forwarder,
            ingress_rx,
            feedback_in,
            nic,
            cfg.propagate_timeout,
        );
        spawn_buffer(&mut server, buffer, Arc::clone(&tail_in), cfg.resend_period);
        {
            let out = Arc::clone(&ingress_out);
            server.spawn("ingress-pump", move |alive| {
                while alive.is_alive() {
                    match nic_q.recv_timeout(Duration::from_millis(1)) {
                        Ok(frame) => out.send(frame),
                        Err(channel::RecvTimeoutError::Timeout) => {}
                        Err(channel::RecvTimeoutError::Disconnected) => break,
                    }
                    out.poll();
                }
            });
        }

        // Control clients (the callers patient-dial, so this also waits
        // until every child has bound its socket).
        let repl_ctrl = (0..n)
            .map(|i| {
                CtrlClient::from_caller(
                    transport
                        .rpc_caller(&Endpoint::sock(node_addr(&pc.dir, i)), repl_ctrl_stream(i)),
                )
            })
            .collect();
        let node_ctrl = (0..n)
            .map(|i| {
                NodeCtl::new(
                    transport
                        .rpc_caller(&Endpoint::sock(node_addr(&pc.dir, i)), node_ctrl_stream(i)),
                )
            })
            .collect();

        let chain = ProcChain {
            cfg,
            chain_spec: pc.chain,
            dir: pc.dir,
            exe: pc.exe,
            node,
            transport,
            children: Mutex::new(children),
            metrics,
            ingress: ingress_tx,
            ingress_out,
            tail_in,
            egress_rx,
            server: Some(server),
            repl_ctrl: Mutex::new(repl_ctrl),
            node_ctrl: Mutex::new(node_ctrl),
        };

        // Block until every replica answers its management probe: after
        // this, the chain is ready for traffic. (On failure the Drop impl
        // reaps whatever children did come up.)
        let deadline = Instant::now() + Duration::from_secs(30);
        for i in 0..n {
            chain
                .wait_ready(i, deadline)
                .map_err(|e| format!("replica {i} did not come up: {e}"))?;
        }
        Ok(chain)
    }

    fn node_ep(&self, i: usize) -> Endpoint {
        Endpoint::sock(node_addr(&self.dir, i))
    }

    fn spawn_node(&self, idx: usize, recover: bool) -> Result<Child, String> {
        spawn_node_proc(
            &self.exe,
            &self.chain_spec,
            &self.cfg,
            idx,
            &self.dir,
            recover,
        )
    }

    fn wait_ready(&self, idx: usize, deadline: Instant) -> Result<(), String> {
        loop {
            let r = self.node_ctrl.lock()[idx].call(NodeReq::Ping, Duration::from_millis(500));
            match r {
                Ok(NodeResp::Pong) => return Ok(()),
                _ if Instant::now() > deadline => {
                    return Err("management ping timed out".to_string())
                }
                _ => {}
            }
        }
    }

    /// Number of replica processes (effective chain length).
    pub fn len(&self) -> usize {
        self.cfg.effective_middleboxes().len()
    }

    /// True if the chain has no replicas (never the case after deploy).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Injects an external packet at the chain ingress.
    pub fn inject(&self, pkt: Packet) {
        let _ = self.ingress.send(pkt.into_bytes());
    }

    /// Returns a handle to the chain's egress.
    pub fn egress(&self) -> Egress {
        Egress::new(self.egress_rx.clone())
    }

    /// Fail-stops replica `idx`'s process (SIGKILL — state is lost, which
    /// is the point).
    pub fn kill(&self, idx: usize) {
        if let Some(mut c) = self.children.lock()[idx].take() {
            let _ = c.kill();
            let _ = c.wait();
        }
    }

    /// True if replica `idx`'s process is running.
    pub fn is_alive(&self, idx: usize) -> bool {
        match self.children.lock()[idx].as_mut() {
            Some(c) => matches!(c.try_wait(), Ok(None)),
            None => false,
        }
    }

    /// Three-step recovery (§5.2) across the process boundary. See the
    /// module docs for the rerouting order and why it matters.
    pub fn recover(&self, idx: usize) -> Result<(), String> {
        let n = self.len();
        // Initialization: respawn the position in replacement mode. The
        // replacement performs its own state recovery before serving.
        self.children.lock()[idx] = Some(self.spawn_node(idx, true)?);

        // Retire the dead process's RPC epoch on our side: stale responses
        // must not correlate against fresh request ids.
        self.node.drain_stream(repl_ctrl_stream(idx));
        self.node.drain_stream(node_ctrl_stream(idx));
        self.node_ctrl.lock()[idx] = NodeCtl::new(
            self.transport
                .rpc_caller(&self.node_ep(idx), node_ctrl_stream(idx)),
        );
        self.repl_ctrl.lock()[idx] = CtrlClient::from_caller(
            self.transport
                .rpc_caller(&self.node_ep(idx), repl_ctrl_stream(idx)),
        );
        self.wait_ready(idx, Instant::now() + Duration::from_secs(30))
            .map_err(|e| format!("replacement {idx} not ready: {e}"))?;

        // Rerouting: fresh sender into the replacement first, then fresh
        // receivers downstream of each fresh sender — so every old-epoch
        // frame is either drained or provably never arrives after a drain.
        if idx == 0 {
            self.node.drain_stream(data_stream(0));
            self.ingress_out
                .install(self.transport.open_tx(&self.node_ep(0), data_stream(0)));
        } else {
            self.node_ctrl.lock()[idx - 1]
                .call(NodeReq::ResetOut, MGMT_TIMEOUT)
                .map_err(|e| format!("reset-out at {}: {e:?}", idx - 1))?;
        }
        self.node_ctrl.lock()[idx]
            .call(NodeReq::ResetIn, MGMT_TIMEOUT)
            .map_err(|e| format!("reset-in at {idx}: {e:?}"))?;
        if idx + 1 == n {
            self.node.drain_stream(tail_stream(n));
            self.tail_in.install(
                self.transport
                    .open_rx(&Endpoint::sock(parent_addr(&self.dir)), tail_stream(n)),
            );
        } else {
            self.node_ctrl.lock()[idx + 1]
                .call(NodeReq::ResetIn, MGMT_TIMEOUT)
                .map_err(|e| format!("reset-in at {}: {e:?}", idx + 1))?;
        }

        // Resume every replica (idempotent for those that never paused).
        for c in self.repl_ctrl.lock().iter() {
            let _ = c.call(CtrlReq::Resume, MGMT_TIMEOUT);
        }
        Ok(())
    }

    /// Chain-wide metrics: the parent's counters (forwarder and buffer
    /// stages, ingress/egress) merged with every replica's node-local
    /// counters. Stage sample counts add up; means are sample-weighted;
    /// percentiles keep the worst observed tail across replicas (exact
    /// cross-process percentiles would need the raw samples).
    pub fn merged_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        let ctls = self.node_ctrl.lock();
        for ctl in ctls.iter() {
            if let Ok(NodeResp::Stats(s)) = ctl.call(NodeReq::Stats, Duration::from_secs(2)) {
                snap.logs_applied += s.logs_applied;
                snap.piggyback_bytes += s.piggyback_bytes;
                snap.piggyback_count += s.piggyback_count;
                merge_stage(&mut snap.transaction, &s.transaction);
                merge_stage(&mut snap.piggyback, &s.piggyback);
                merge_stage(&mut snap.apply, &s.apply);
            }
        }
        snap.mean_piggyback_bytes = if snap.piggyback_count == 0 {
            0.0
        } else {
            snap.piggyback_bytes as f64 / snap.piggyback_count as f64
        };
        snap
    }
}

fn spawn_node_proc(
    exe: &Path,
    chain_spec: &str,
    cfg: &ChainConfig,
    idx: usize,
    dir: &Path,
    recover: bool,
) -> Result<Child, String> {
    let mut cmd = Command::new(exe);
    cmd.arg("node")
        .arg("--chain")
        .arg(chain_spec)
        .arg("--f")
        .arg(cfg.f.to_string())
        .arg("--workers")
        .arg(cfg.workers.to_string())
        .arg("--idx")
        .arg(idx.to_string())
        .arg("--dir")
        .arg(dir)
        .stdin(Stdio::null());
    if recover {
        cmd.arg("--recover");
    }
    cmd.spawn()
        .map_err(|e| format!("spawning replica {idx} via {exe:?}: {e}"))
}

fn merge_stage(into: &mut StageStats, s: &StageStats) {
    let total = into.samples + s.samples;
    let weighted = into.mean_ns * into.samples + s.mean_ns * s.samples;
    if let Some(mean) = weighted.checked_div(total) {
        into.mean_ns = mean;
    }
    into.samples = total;
    into.p50_ns = into.p50_ns.max(s.p50_ns);
    into.p99_ns = into.p99_ns.max(s.p99_ns);
    into.p999_ns = into.p999_ns.max(s.p999_ns);
}

impl ChainSystem for ProcChain {
    fn inject_pkt(&self, pkt: Packet) {
        self.inject(pkt);
    }

    fn egress_pkt(&self, timeout: Duration) -> Option<Packet> {
        self.egress_rx.recv_timeout(timeout).ok()
    }

    fn system_name(&self) -> &'static str {
        "FTC/proc"
    }
}

impl Drop for ProcChain {
    fn drop(&mut self) {
        // Polite shutdown so the children release their sockets…
        for ctl in self.node_ctrl.lock().iter() {
            let _ = ctl.call(NodeReq::Shutdown, Duration::from_millis(500));
        }
        if let Some(server) = self.server.as_mut() {
            server.kill();
            server.join();
        }
        // …then make sure of it.
        for c in self.children.lock().iter_mut().filter_map(Option::take) {
            let mut c = c;
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_protocol_roundtrips() {
        for req in [
            NodeReq::Ping,
            NodeReq::ResetOut,
            NodeReq::ResetIn,
            NodeReq::Stats,
            NodeReq::Shutdown,
        ] {
            assert_eq!(decode_node_req(encode_node_req(req).as_ref()), Some(req));
        }
        let stats = NodeResp::Stats(NodeStats {
            logs_applied: 7,
            piggyback_bytes: 1024,
            piggyback_count: 16,
            transaction: StageStats {
                samples: 5,
                mean_ns: 100,
                p50_ns: 90,
                p99_ns: 200,
                p999_ns: 300,
            },
            piggyback: StageStats::default(),
            apply: StageStats::default(),
        });
        for resp in [NodeResp::Pong, NodeResp::Done, stats] {
            assert_eq!(
                decode_node_resp(encode_node_resp(&resp).as_ref()),
                Some(resp.clone())
            );
        }
        assert_eq!(decode_node_req(b"junk"), None);
        assert_eq!(decode_node_resp(&[RESP_STATS, 1, 2]), None, "truncated");
    }

    #[test]
    fn stream_ids_never_collide_per_process() {
        // The invariant behind the numbering: on any single process, the
        // streams it receives on are pairwise distinct (sender and
        // receiver halves share per-stream queues).
        for n in 1..10 {
            for i in 0..n {
                let mut inbound = vec![
                    data_stream(i),      // its data in-edge
                    repl_ctrl_stream(i), // control requests
                    node_ctrl_stream(i), // management requests
                ];
                // ACKs for its out-edge arrive on the out-edge stream.
                inbound.push(if i + 1 < n {
                    data_stream(i + 1)
                } else {
                    tail_stream(n)
                });
                let mut dedup = inbound.clone();
                dedup.sort_unstable();
                dedup.dedup();
                assert_eq!(dedup.len(), inbound.len(), "n={n} i={i}: {inbound:?}");
            }
        }
    }

    #[test]
    fn merge_stage_weights_means_and_keeps_worst_tails() {
        let mut a = StageStats {
            samples: 10,
            mean_ns: 100,
            p50_ns: 80,
            p99_ns: 500,
            p999_ns: 900,
        };
        let b = StageStats {
            samples: 30,
            mean_ns: 200,
            p50_ns: 120,
            p99_ns: 400,
            p999_ns: 1500,
        };
        merge_stage(&mut a, &b);
        assert_eq!(a.samples, 40);
        assert_eq!(a.mean_ns, 175, "sample-weighted mean");
        assert_eq!(a.p50_ns, 120);
        assert_eq!(a.p99_ns, 500);
        assert_eq!(a.p999_ns, 1500);
    }
}
