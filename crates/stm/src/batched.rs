//! Epoch-batched optimistic state engine (the `batched` [`EngineKind`]).
//!
//! Where the 2PL [`StateStore`](crate::StateStore) pessimistically locks
//! every partition a packet touches, this engine runs transaction bodies
//! **without any partition lock**: accesses record an optimistic
//! *footprint* — the sequence number first observed in each touched
//! partition plus the buffered write set — and the finished body submits
//! that footprint to the [`epoch scheduler`](crate::epoch). Whoever wins
//! the epoch's commit lock seals the open batch and decides it in one
//! pass:
//!
//! 1. **Freshness.** A transaction whose recorded versions no longer match
//!    the store (some earlier epoch committed into its footprint) is
//!    invalidated.
//! 2. **Dependency graph.** Over the surviving batch, transactions
//!    conflict when either *writes* a partition the other touched
//!    (write-write or read-write at partition granularity; read-read
//!    overlap commutes). In arrival order, each transaction joins the
//!    epoch's conflict-free set iff no already-admitted transaction
//!    conflicts with it — conflicting pairs (the dependency cycles of the
//!    batch) keep the earlier arrival and requeue the later one.
//! 3. **Commit.** Admitted transactions commit exactly like a 2PL commit:
//!    every touched partition's sequence number is bumped and the
//!    piggyback log carries pre-increment values, so dependency vectors,
//!    sequence vectors, snapshots, and [`PartitionExport`] frames are
//!    indistinguishable from the 2PL engine's. Requeued transactions are
//!    transparently re-executed by [`BatchedStore::transaction_dyn`].
//!
//! A transaction that keeps losing validation escalates after
//! [`MAX_OPTIMISTIC_ATTEMPTS`] to a *pessimistic fallback*: it runs its
//! body while holding the commit lock, where its reads cannot go stale,
//! and commits unconditionally. Together with FIFO-ish mutex handoff this
//! gives the same starvation freedom the 2PL engine gets from wound-wait
//! timestamps.
//!
//! The win over 2PL is contention behavior: hot-partition workloads
//! (Monitor at sharing 8) pay one uncontended mutex pair plus group
//! validation instead of a wound-wait storm of condvar sleeps and lock
//! handoffs, and disjoint-flow workloads commit whole batches with zero
//! lock-manager traffic. The cost is wasted body re-execution when
//! conflicts are frequent *and* interleaved — `ftc bench --engine` plus
//! the sharing-level sweep in `BENCH_table2.json` quantify both sides.

use crate::epoch::{EpochScheduler, Footprint, Submission, Verdict, VerdictSlot};
use crate::migrate::PartitionExport;
use crate::recorder::{HistorySink, RecorderCell};
use crate::store::{PartitionId, StoreSnapshot, StoreStats};
use crate::txn::{TxnError, TxnLog};
use crate::{partition_of, DepVector, EngineKind, StateBackend, StateTxn, StateWrite};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Optimistic attempts before a transaction escalates to the pessimistic
/// fallback (body re-executed under the commit lock, where validation
/// cannot fail). Low on purpose: by the third consecutive invalidation
/// the footprint is demonstrably hot and serial execution is cheaper than
/// another wasted body run.
pub const MAX_OPTIMISTIC_ATTEMPTS: u32 = 3;

/// One partition's map and sequence counter. Aligned to two cache lines
/// so neighbouring partitions never false-share under the adjacent-line
/// prefetcher (same layout rationale as the 2PL store's cells).
#[repr(align(128))]
struct Cell {
    state: Mutex<CellState>,
}

struct CellState {
    map: HashMap<Bytes, Bytes>,
    seq: u64,
}

impl Cell {
    fn new() -> Cell {
        Cell {
            state: Mutex::new(CellState {
                map: HashMap::new(),
                seq: 0,
            }),
        }
    }
}

/// The epoch-batched optimistic state engine.
///
/// ```
/// use ftc_stm::{BatchedStore, StateBackendExt};
/// use bytes::Bytes;
///
/// let store = BatchedStore::new(32);
/// let out = store.transaction(|txn| {
///     let hits = txn.read_u64(b"hits")?.unwrap_or(0);
///     txn.write_u64(Bytes::from_static(b"hits"), hits + 1)?;
///     Ok(hits + 1)
/// });
/// assert_eq!(out.value, 1);
/// // Same log shape as the 2PL engine: pre-increment dependency vector
/// // plus the committed write set, ready to piggyback.
/// let log = out.log.expect("wrote state");
/// assert_eq!(log.writes.len(), 1);
/// ```
pub struct BatchedStore {
    /// Partition cells in global index order (no lock shards: the engine
    /// has no lock manager, only per-cell internal mutexes).
    cells: Vec<Cell>,
    n_partitions: usize,
    /// Epoch formation and the commit lock (see [`crate::epoch`]).
    sched: EpochScheduler,
    /// Statistics. `wound_aborts` counts failed optimistic validations.
    pub stats: StoreStats,
    /// The audit-recorder attachment point (identical tap obligations to
    /// the 2PL engine; see [`crate::StateBackend`]).
    tap: RecorderCell,
}

impl BatchedStore {
    /// Creates a store with `partitions` state partitions.
    pub fn new(partitions: usize) -> BatchedStore {
        assert!(partitions > 0 && partitions <= u16::MAX as usize);
        BatchedStore {
            cells: (0..partitions).map(|_| Cell::new()).collect(),
            n_partitions: partitions,
            sched: EpochScheduler::default(),
            stats: StoreStats::default(),
            tap: RecorderCell::default(),
        }
    }

    fn cell(&self, p: PartitionId) -> &Cell {
        &self.cells[p as usize]
    }

    /// Number of epochs sealed so far (diagnostics / tests).
    pub fn sealed_epochs(&self) -> u64 {
        self.sched.sealed_epochs()
    }

    /// Validates and commits one sealed batch. Caller holds the commit
    /// lock.
    fn commit_epoch(&self, batch: &[Submission]) {
        // Freshness reference: the sequence number of every partition the
        // batch touches, at seal time (before any of the batch commits).
        let mut seal_seqs: HashMap<PartitionId, u64> = HashMap::new();
        for sub in batch {
            for &(p, _) in &sub.footprint.versions {
                seal_seqs
                    .entry(p)
                    .or_insert_with(|| self.cell(p).state.lock().seq);
            }
        }
        // Dependency-graph admission, arrival order: a transaction joins
        // the conflict-free set iff its snapshot is fresh and no admitted
        // earlier transaction conflicts with it. Admitted transactions
        // are pairwise conflict-free, so any commit order serializes; the
        // requeued remainder (stale reads and the losing side of every
        // conflict edge/cycle) re-executes against the post-epoch state.
        let mut admitted: Vec<bool> = Vec::with_capacity(batch.len());
        for (i, sub) in batch.iter().enumerate() {
            let fp = &sub.footprint;
            let fresh = fp
                .versions
                .iter()
                .all(|&(p, v)| seal_seqs.get(&p).copied() == Some(v));
            let clean = batch[..i]
                .iter()
                .zip(&admitted)
                .all(|(other, &ok)| !ok || !other.footprint.conflicts_with(fp));
            admitted.push(fresh && clean);
        }
        for (sub, ok) in batch.iter().zip(&admitted) {
            if *ok {
                let log = self.commit_one(&sub.footprint);
                self.stats.commits.fetch_add(1, Ordering::Relaxed);
                if let Some(log) = &log {
                    self.tap.record_commit(log);
                }
                sub.slot.fill(Verdict::Committed(log));
            } else {
                self.stats.wound_aborts.fetch_add(1, Ordering::Relaxed);
                sub.slot.fill(Verdict::Requeue);
            }
        }
    }

    /// Applies one validated footprint: bumps every touched partition's
    /// sequence number (pre-increment values go into the dependency
    /// vector) and lands the buffered writes — the exact commit shape of
    /// the 2PL engine's `Txn::commit`. Caller holds the commit lock.
    fn commit_one(&self, fp: &Footprint) -> Option<TxnLog> {
        if fp.writes.is_empty() {
            return None;
        }
        // Group writes by partition, preserving key order within each.
        let mut by_part: BTreeMap<PartitionId, Vec<&(Bytes, Bytes)>> = BTreeMap::new();
        for kv in &fp.writes {
            by_part
                .entry(partition_of(&kv.0, self.n_partitions))
                .or_default()
                .push(kv);
        }
        let mut deps = Vec::with_capacity(fp.versions.len());
        let mut writes = Vec::with_capacity(fp.writes.len());
        for &(p, _) in &fp.versions {
            let mut st = self.cell(p).state.lock();
            deps.push((p, st.seq));
            st.seq += 1;
            if let Some(kvs) = by_part.get(&p) {
                for (k, v) in kvs {
                    if v.is_empty() {
                        st.map.remove(k);
                    } else {
                        st.map.insert(k.clone(), v.clone());
                    }
                    writes.push(StateWrite {
                        key: k.clone(),
                        value: v.clone(),
                        partition: p,
                    });
                }
            }
        }
        let deps = DepVector::from_entries(deps).expect("footprint partitions are unique");
        Some(TxnLog { deps, writes })
    }

    /// The starvation-freedom escalation: run the body while holding the
    /// commit lock. Reads are then guaranteed fresh (only commit-lock
    /// holders mutate sequence numbers), so the commit is unconditional.
    /// The queued batch is committed first so transactions that submitted
    /// before the escalation keep their place.
    fn run_pessimistic(
        &self,
        body: &mut dyn FnMut(&mut dyn StateTxn) -> Result<(), TxnError>,
    ) -> Option<TxnLog> {
        let (_guard, batch) = self.sched.seal();
        if !batch.is_empty() {
            self.commit_epoch(&batch);
        }
        loop {
            let mut txn = OptTxn::new(self);
            match body(&mut txn) {
                Ok(()) => {
                    let log = self.commit_one(&txn.into_footprint());
                    self.stats.commits.fetch_add(1, Ordering::Relaxed);
                    if let Some(log) = &log {
                        self.tap.record_commit(log);
                    }
                    return log;
                }
                Err(TxnError::Wounded) => {
                    // A body-surfaced abort; nothing to roll back (writes
                    // were only buffered) — re-execute under the lock.
                    self.stats.wound_aborts.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            }
        }
    }
}

impl StateBackend for BatchedStore {
    fn engine(&self) -> EngineKind {
        EngineKind::Batched
    }

    fn partitions(&self) -> usize {
        self.n_partitions
    }

    fn transaction_dyn(
        &self,
        body: &mut dyn FnMut(&mut dyn StateTxn) -> Result<(), TxnError>,
    ) -> Option<TxnLog> {
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            if attempts > MAX_OPTIMISTIC_ATTEMPTS {
                return self.run_pessimistic(body);
            }
            let mut txn = OptTxn::new(self);
            match body(&mut txn) {
                Ok(()) => {}
                Err(TxnError::Wounded) => {
                    self.stats.wound_aborts.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            }
            let slot = Arc::new(VerdictSlot::default());
            self.sched.enqueue(Submission {
                footprint: txn.into_footprint(),
                slot: Arc::clone(&slot),
            });
            // Contend for the epoch: the winner commits everything queued
            // (cooperatively including other threads' submissions); losers
            // arrive to find their verdict already decided.
            let (guard, batch) = self.sched.seal();
            if !batch.is_empty() {
                self.commit_epoch(&batch);
            }
            drop(guard);
            match slot.take() {
                Some(Verdict::Committed(log)) => return log,
                Some(Verdict::Requeue) => continue,
                // Unreachable by the scheduler contract (every submission
                // is decided before the deciding epoch releases the
                // lock); requeue defensively rather than losing the txn.
                None => continue,
            }
        }
    }

    fn apply_writes(&self, deps: &DepVector, writes: &[StateWrite]) {
        if deps.entries().is_empty() {
            // Defensive: a no-op log carries no deps; nothing to bump.
            debug_assert!(writes.is_empty());
            return;
        }
        // Seq numbers only move under the commit lock, so replica apply
        // and local epochs serialize against each other.
        let _guard = self.sched.pause();
        let mut by_part: BTreeMap<PartitionId, Vec<&StateWrite>> = BTreeMap::new();
        for w in writes {
            by_part.entry(w.partition).or_default().push(w);
        }
        for &(p, _) in deps.entries() {
            let mut st = self.cell(p).state.lock();
            st.seq += 1;
            if let Some(ws) = by_part.remove(&p) {
                for w in ws {
                    if w.value.is_empty() {
                        st.map.remove(&w.key);
                    } else {
                        st.map.insert(w.key.clone(), w.value.clone());
                    }
                }
            }
        }
        debug_assert!(
            by_part.is_empty(),
            "write partitions must appear in the dependency vector"
        );
        self.stats.applied_logs.fetch_add(1, Ordering::Relaxed);
        self.tap.record_apply(deps, writes);
    }

    fn peek(&self, key: &[u8]) -> Option<Bytes> {
        let p = StateBackend::partition_of(self, key);
        let st = self.cell(p).state.lock();
        st.map.get(key).cloned()
    }

    fn seq_vector(&self) -> Vec<u64> {
        self.cells.iter().map(|c| c.state.lock().seq).collect()
    }

    fn snapshot(&self) -> StoreSnapshot {
        let _guard = self.sched.pause();
        let mut maps = Vec::with_capacity(self.n_partitions);
        let mut seqs = Vec::with_capacity(self.n_partitions);
        for c in &self.cells {
            let st = c.state.lock();
            let mut entries: Vec<(Bytes, Bytes)> =
                st.map.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            entries.sort_unstable_by(|a, b| a.0.as_ref().cmp(b.0.as_ref()));
            maps.push(entries);
            seqs.push(st.seq);
        }
        StoreSnapshot { maps, seqs }
    }

    fn restore(&self, snap: &StoreSnapshot) {
        assert_eq!(
            snap.maps.len(),
            self.n_partitions,
            "partition count mismatch"
        );
        let _guard = self.sched.pause();
        for (i, c) in self.cells.iter().enumerate() {
            let mut st = c.state.lock();
            st.map = snap.maps[i].iter().cloned().collect();
            st.seq = snap.seqs[i];
        }
    }

    fn restore_seqs(&self, seqs: &[u64]) {
        assert_eq!(seqs.len(), self.n_partitions);
        let _guard = self.sched.pause();
        for (c, &s) in self.cells.iter().zip(seqs) {
            c.state.lock().seq = s;
        }
    }

    fn export_partition(&self, p: PartitionId) -> PartitionExport {
        let st = self.cell(p).state.lock();
        let mut entries: Vec<(Bytes, Bytes)> =
            st.map.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        entries.sort_unstable_by(|a, b| a.0.as_ref().cmp(b.0.as_ref()));
        PartitionExport {
            partition: p,
            seq: st.seq,
            entries,
        }
    }

    fn import_partition(&self, ex: &PartitionExport) {
        let _guard = self.sched.pause();
        let mut st = self.cell(ex.partition).state.lock();
        st.map = ex.entries.iter().cloned().collect();
        st.seq = ex.seq;
    }

    fn clear_partition(&self, p: PartitionId) {
        let _guard = self.sched.pause();
        let mut st = self.cell(p).state.lock();
        st.map.clear();
        st.seq = 0;
    }

    fn partition_seq(&self, p: PartitionId) -> u64 {
        self.cell(p).state.lock().seq
    }

    fn len(&self) -> usize {
        self.cells.iter().map(|c| c.state.lock().map.len()).sum()
    }

    fn set_recorder(&self, sink: Arc<dyn HistorySink>) {
        self.tap.set(sink);
    }

    fn clear_recorder(&self) {
        self.tap.clear();
    }

    fn stats_snapshot(&self) -> (u64, u64, u64) {
        self.stats.snapshot()
    }
}

impl std::fmt::Debug for BatchedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchedStore")
            .field("partitions", &self.n_partitions)
            .field("keys", &StateBackend::len(self))
            .field("sealed_epochs", &self.sealed_epochs())
            .finish()
    }
}

/// An in-flight optimistic transaction: no locks held, reads record the
/// partition sequence number first observed, writes are buffered.
struct OptTxn<'a> {
    store: &'a BatchedStore,
    /// First-observed sequence number per touched partition.
    versions: BTreeMap<PartitionId, u64>,
    /// Buffered writes (empty value = deletion).
    writes: BTreeMap<Bytes, Bytes>,
}

impl<'a> OptTxn<'a> {
    fn new(store: &'a BatchedStore) -> OptTxn<'a> {
        OptTxn {
            store,
            versions: BTreeMap::new(),
            writes: BTreeMap::new(),
        }
    }

    /// Records the partition's current sequence number if this is the
    /// first access, and returns the cell for the caller to use.
    fn touch(&mut self, p: PartitionId) {
        if !self.versions.contains_key(&p) {
            let seq = self.store.cell(p).state.lock().seq;
            self.versions.insert(p, seq);
        }
    }

    fn into_footprint(self) -> Footprint {
        Footprint {
            versions: self.versions.into_iter().collect(),
            writes: self.writes.into_iter().collect(),
        }
    }
}

impl StateTxn for OptTxn<'_> {
    fn read(&mut self, key: &[u8]) -> Result<Option<Bytes>, TxnError> {
        let p = partition_of(key, self.store.n_partitions);
        self.touch(p);
        if let Some(v) = self.writes.get(key) {
            return Ok(if v.is_empty() { None } else { Some(v.clone()) });
        }
        let st = self.store.cell(p).state.lock();
        Ok(st.map.get(key).cloned())
    }

    fn write(&mut self, key: Bytes, value: Bytes) -> Result<(), TxnError> {
        assert!(
            !value.is_empty(),
            "empty values encode deletions; use delete()"
        );
        let p = partition_of(&key, self.store.n_partitions);
        self.touch(p);
        self.writes.insert(key, value);
        Ok(())
    }

    fn delete(&mut self, key: Bytes) -> Result<(), TxnError> {
        let p = partition_of(&key, self.store.n_partitions);
        self.touch(p);
        self.writes.insert(key, Bytes::new());
        Ok(())
    }

    fn is_writing(&self) -> bool {
        !self.writes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StateBackendExt;
    use std::sync::Barrier;
    use std::thread;

    #[test]
    fn simple_read_write_txn() {
        let store = BatchedStore::new(8);
        let out = store.transaction(|txn| {
            assert_eq!(txn.read(b"k")?, None);
            txn.write(Bytes::from_static(b"k"), Bytes::from_static(b"v1"))?;
            Ok(())
        });
        let log = out.log.expect("writing txn must log");
        assert_eq!(log.writes.len(), 1);
        assert_eq!(
            StateBackend::peek(&store, b"k"),
            Some(Bytes::from_static(b"v1"))
        );
        assert_eq!(store.sealed_epochs(), 1);
    }

    #[test]
    fn read_only_txn_has_no_log_and_bumps_nothing() {
        let store = BatchedStore::new(8);
        store.transaction(|txn| {
            txn.write(Bytes::from_static(b"a"), Bytes::from_static(b"1"))?;
            Ok(())
        });
        let before = store.seq_vector();
        let out = store.transaction(|txn| txn.read(b"a"));
        assert_eq!(out.value, Some(Bytes::from_static(b"1")));
        assert!(out.log.is_none());
        assert_eq!(store.seq_vector(), before);
    }

    #[test]
    fn log_shape_matches_2pl_engine() {
        use crate::StateStore;
        let two = StateStore::new(8);
        let bat = BatchedStore::new(8);
        let ka = Bytes::from_static(b"a");
        let kb = Bytes::from_static(b"b");
        let body = |txn: &mut dyn StateTxn| {
            let _ = txn.read(&ka)?;
            txn.write(ka.clone(), Bytes::from_static(b"1"))?;
            txn.write(kb.clone(), Bytes::from_static(b"2"))?;
            Ok(())
        };
        let l2 = StateBackendExt::transaction(&two, body).log.unwrap();
        let lb = bat.transaction(body).log.unwrap();
        assert_eq!(l2.deps, lb.deps, "identical dependency vectors");
        assert_eq!(l2.writes, lb.writes, "identical write sets, same order");
        assert_eq!(StateStore::seq_vector(&two), store_seqs(&bat));
    }

    fn store_seqs(b: &BatchedStore) -> Vec<u64> {
        StateBackend::seq_vector(b)
    }

    #[test]
    fn delete_via_empty_value() {
        let store = BatchedStore::new(4);
        let k = Bytes::from_static(b"gone");
        store.transaction(|txn| {
            txn.write(k.clone(), Bytes::from_static(b"v"))?;
            Ok(())
        });
        store.transaction(|txn| {
            txn.delete(k.clone())?;
            Ok(())
        });
        assert_eq!(StateBackend::peek(&store, &k), None);
    }

    #[test]
    fn read_your_own_buffered_writes() {
        let store = BatchedStore::new(4);
        let k = Bytes::from_static(b"rw");
        let out = store.transaction(|txn| {
            txn.write_u64(k.clone(), 7)?;
            let v = txn.read_u64(&k)?;
            txn.delete(k.clone())?;
            let gone = txn.read(&k)?;
            Ok((v, gone))
        });
        assert_eq!(out.value, (Some(7), None));
    }

    #[test]
    fn concurrent_increments_never_lose_updates() {
        let store = Arc::new(BatchedStore::new(4));
        let key = Bytes::from_static(b"shared");
        let threads = 4;
        let per_thread = 500;
        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let store = Arc::clone(&store);
                let key = key.clone();
                let barrier = Arc::clone(&barrier);
                thread::spawn(move || {
                    barrier.wait();
                    for _ in 0..per_thread {
                        store.transaction(|txn| {
                            let c = txn.read_u64(&key)?.unwrap_or(0);
                            txn.write_u64(key.clone(), c + 1)?;
                            Ok(())
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            StateBackend::peek_u64(&*store, &key),
            Some((threads * per_thread) as u64)
        );
        let (commits, _aborts, _) = store.stats.snapshot();
        assert_eq!(commits, (threads * per_thread) as u64);
    }

    #[test]
    fn cross_partition_transfers_conserve_total() {
        let store = Arc::new(BatchedStore::new(16));
        let ka = Bytes::from_static(b"account:a");
        let kb = Bytes::from_static(b"account:b");
        store.transaction(|txn| {
            txn.write_u64(ka.clone(), 1000)?;
            txn.write_u64(kb.clone(), 1000)?;
            Ok(())
        });
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let store = Arc::clone(&store);
                let (from, to) = if i % 2 == 0 {
                    (ka.clone(), kb.clone())
                } else {
                    (kb.clone(), ka.clone())
                };
                thread::spawn(move || {
                    for _ in 0..200 {
                        store.transaction(|txn| {
                            let f = txn.read_u64(&from)?.unwrap_or(0);
                            let t = txn.read_u64(&to)?.unwrap_or(0);
                            if f > 0 {
                                txn.write_u64(from.clone(), f - 1)?;
                                txn.write_u64(to.clone(), t + 1)?;
                            }
                            Ok(())
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = StateBackend::peek_u64(&*store, &ka).unwrap()
            + StateBackend::peek_u64(&*store, &kb).unwrap();
        assert_eq!(total, 2000, "validation lost or duplicated value");
    }

    #[test]
    fn apply_writes_mirrors_commit_across_engines() {
        use crate::StateStore;
        let head = StateStore::new(8);
        let replica = BatchedStore::new(8);
        let k = Bytes::from_static(b"mirrored");
        let out = head.transaction(|txn| {
            txn.write(k.clone(), Bytes::from_static(b"v"))?;
            Ok(())
        });
        let log = out.log.unwrap();
        StateBackend::apply_writes(&replica, &log.deps, &log.writes);
        assert_eq!(
            StateBackend::peek(&replica, &k),
            Some(Bytes::from_static(b"v"))
        );
        assert_eq!(StateStore::seq_vector(&head), store_seqs(&replica));
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let store = BatchedStore::new(8);
        for i in 0..50 {
            let key = Bytes::from(format!("k{i}"));
            store.transaction(|txn| {
                txn.write(key.clone(), Bytes::from(format!("v{i}")))?;
                Ok(())
            });
        }
        let snap = StateBackend::snapshot(&store);
        let other = BatchedStore::new(8);
        StateBackend::restore(&other, &snap);
        assert_eq!(StateBackend::len(&other), 50);
        assert_eq!(store_seqs(&other), store_seqs(&store));
        assert_eq!(
            StateBackend::peek(&other, b"k17"),
            Some(Bytes::from_static(b"v17"))
        );
    }

    #[test]
    fn pessimistic_fallback_commits_under_sustained_conflicts() {
        // Hammer one partition from many threads; every transaction must
        // still commit exactly once (the escalation path guarantees
        // progress even if a thread keeps losing validation).
        let store = Arc::new(BatchedStore::new(1));
        let key = Bytes::from_static(b"hot");
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let store = Arc::clone(&store);
                let key = key.clone();
                thread::spawn(move || {
                    for _ in 0..200 {
                        store.transaction(|txn| {
                            let c = txn.read_u64(&key)?.unwrap_or(0);
                            txn.write_u64(key.clone(), c + 1)?;
                            Ok(())
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(StateBackend::peek_u64(&*store, &key), Some(1600));
        let (commits, _, _) = store.stats.snapshot();
        assert_eq!(commits, 1600);
    }

    #[test]
    fn recorder_tap_reports_commits_and_applies() {
        use crate::recorder::CommitRecord;
        #[derive(Default)]
        struct Counting {
            commits: std::sync::atomic::AtomicU64,
            applies: std::sync::atomic::AtomicU64,
        }
        impl HistorySink for Counting {
            fn on_commit(&self, _rec: CommitRecord) {
                self.commits.fetch_add(1, Ordering::SeqCst);
            }
            fn on_apply(&self, _deps: &DepVector, _writes: &[StateWrite]) {
                self.applies.fetch_add(1, Ordering::SeqCst);
            }
        }
        let store = BatchedStore::new(8);
        let sink = Arc::new(Counting::default());
        StateBackend::set_recorder(&store, Arc::clone(&sink) as Arc<dyn HistorySink>);
        let k = Bytes::from_static(b"rec");
        let out = store.transaction(|txn| {
            txn.write_u64(k.clone(), 1)?;
            Ok(())
        });
        let log = out.log.unwrap();
        store.transaction(|txn| txn.read(&k)); // read-only: not reported
        StateBackend::apply_writes(&store, &log.deps, &log.writes);
        assert_eq!(sink.commits.load(Ordering::SeqCst), 1);
        assert_eq!(sink.applies.load(Ordering::SeqCst), 1);
        StateBackend::clear_recorder(&store);
        store.transaction(|txn| {
            txn.write_u64(k.clone(), 2)?;
            Ok(())
        });
        assert_eq!(sink.commits.load(Ordering::SeqCst), 1, "detached");
    }
}
