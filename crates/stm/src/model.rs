//! Bounded exhaustive model checking of the concurrency core.
//!
//! Compiled only with `--features loom` (named for the loom convention of
//! feature-gated model checking; the checker itself is in-repo so the
//! crate set stays offline-buildable). Two checkers live here:
//!
//! 1. [`check_wound_wait`] — an explicit-state model of the wound-wait
//!    lock protocol in [`txn`](crate::Txn). Each transaction is reduced
//!    to its lock-acquisition *plan* (the partitions it touches, in
//!    order); the checker enumerates **every** interleaving of acquire /
//!    wound / abort-retry / commit steps by depth-first search over the
//!    reachable state space and verifies, in every state:
//!
//!    * **no deadlock** — some step is always enabled until all commit;
//!    * **oldest is never wounded** — the smallest-timestamp transaction
//!      has no smaller-timestamp rival, so it must run to completion
//!      without ever aborting (the wound-wait progress argument);
//!    * **liveness** — every reachable state can still reach the
//!      all-committed terminal state (no livelock);
//!
//!    and, in every terminal state:
//!
//!    * **exactly-once effects** — each partition's sequence counter
//!      equals the number of transactions that touched it, and every
//!      transaction holds one pre-increment stamp per touched partition;
//!    * **serializability** — the direct serialization graph induced by
//!      the stamps is acyclic.
//!
//!    The model mirrors the implementation's rules exactly: a wounded
//!    flag is only observed at the next acquire (a fully-acquired
//!    transaction commits even if wounded, as `Txn::commit` documents),
//!    retries keep their original timestamp, and wounding is sticky.
//!
//! 2. [`check_max_vector_permutations`] — exhaustive delivery-order
//!    checking of the *real* [`MaxVector`]: every permutation of a log
//!    batch (optionally with each log delivered twice) is offered to a
//!    fresh replica, which must drain its parking lot and converge to
//!    the reference state. `MaxVector` serializes offers internally, so
//!    concurrent delivery is equivalent to *some* permutation with
//!    interleaved duplicates — covering all permutations plus duplicate
//!    redelivery covers the concurrent behaviors.

//!
//! 3. [`check_epoch_batch`] — an explicit-state model of the epoch-batched
//!    optimistic engine in [`batched`](crate::BatchedStore). Each
//!    transaction is reduced to its *footprint plan* (touched partitions
//!    plus whether it writes); the checker enumerates every interleaving
//!    of per-partition version recording, submission, epoch seal/commit,
//!    and pessimistic escalation, and verifies that every commit is fresh
//!    at its commit point (no lost updates), every terminal history has
//!    exactly-once effects, and the serialization graph over writer
//!    stamps *and* reader-observed versions is acyclic. An options knob
//!    disables the batch conflict check, which must make the checker
//!    report a stale commit — the teeth test.

use crate::{DepVector, MaxVector, StateStore, StateWrite};
use std::collections::{HashMap, HashSet, VecDeque};

/// One transaction's lock-acquisition plan: the partitions it touches,
/// in acquisition order, each at most once.
pub type Plan = Vec<u8>;

/// Tuning knobs for [`check_wound_wait_opts`].
#[derive(Debug, Clone, Copy)]
pub struct ModelOptions {
    /// Whether lock requesters wound younger holders. Disabling this
    /// turns the protocol into plain blocking 2PL, whose deadlocks the
    /// checker must then report — a self-test that the checker has teeth.
    pub wound: bool,
    /// Abort counters saturate here, keeping the state space finite.
    pub abort_cap: u8,
}

impl Default for ModelOptions {
    fn default() -> Self {
        ModelOptions {
            wound: true,
            abort_cap: 3,
        }
    }
}

/// Exploration statistics from a successful check.
#[derive(Debug, Clone, Copy)]
pub struct ModelStats {
    /// Distinct states explored.
    pub states: usize,
    /// Distinct all-committed terminal states reached.
    pub terminals: usize,
    /// Largest (saturated) abort count any transaction reached.
    pub max_aborts: u8,
}

/// Per-transaction program counter state. `pc` counts acquired locks, so
/// the set of locks transaction `i` holds is exactly `plans[i][..pc[i]]`
/// — lock ownership needs no separate representation.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct State {
    pc: Vec<u8>,
    wounded: Vec<bool>,
    done: Vec<bool>,
    aborts: Vec<u8>,
    /// Per-partition commit sequence counters (the model of
    /// `PartitionState::seq`).
    seqs: Vec<u8>,
    /// Pre-increment stamps each committed transaction collected.
    deps: Vec<Vec<(u8, u8)>>,
}

impl State {
    fn initial(n: usize, partitions: usize) -> State {
        State {
            pc: vec![0; n],
            wounded: vec![false; n],
            done: vec![false; n],
            aborts: vec![0; n],
            seqs: vec![0; partitions],
            deps: vec![Vec::new(); n],
        }
    }

    /// Which transaction holds partition `p`, if any.
    fn owner(&self, plans: &[Plan], p: u8) -> Option<usize> {
        (0..plans.len()).find(|&i| !self.done[i] && plans[i][..self.pc[i] as usize].contains(&p))
    }

    fn all_done(&self) -> bool {
        self.done.iter().all(|&d| d)
    }
}

/// Every enabled successor of `s`. Timestamps are the transaction
/// indices: transaction 0 is the oldest, mirroring the wound-wait rule
/// "smaller ts = higher priority"; retries keep their timestamp.
fn successors(s: &State, plans: &[Plan], opts: ModelOptions) -> Vec<State> {
    let mut out = Vec::new();
    for i in 0..plans.len() {
        if s.done[i] {
            continue;
        }
        let len = plans[i].len();
        if (s.pc[i] as usize) == len {
            // Commit: stamp pre-increment seqs, release all locks. The
            // implementation commits even when wounded — once every lock
            // is held, nothing is gained by aborting.
            let mut t = s.clone();
            for &p in &plans[i] {
                t.deps[i].push((p, t.seqs[p as usize]));
                t.seqs[p as usize] += 1;
            }
            t.done[i] = true;
            t.wounded[i] = false;
            out.push(t);
            continue;
        }
        if s.wounded[i] {
            // Acquire observes the wound: abort, release, retry with the
            // same timestamp. This is the only step a wounded txn takes.
            let mut t = s.clone();
            t.pc[i] = 0;
            t.wounded[i] = false;
            t.aborts[i] = (t.aborts[i] + 1).min(opts.abort_cap);
            out.push(t);
            continue;
        }
        let p = plans[i][s.pc[i] as usize];
        match s.owner(plans, p) {
            None => {
                let mut t = s.clone();
                t.pc[i] += 1;
                out.push(t);
            }
            Some(j) if j == i => unreachable!("plans touch each partition once"),
            Some(j) => {
                // Holder j blocks us. If we are older, wounding j is a
                // step (no-op re-wounds are not distinct states). If we
                // are younger we wait — no step.
                if opts.wound && i < j && !s.wounded[j] {
                    let mut t = s.clone();
                    t.wounded[j] = true;
                    out.push(t);
                }
            }
        }
    }
    out
}

/// Checks the wound-wait protocol for `plans` over `partitions`
/// partitions with default options. See the module docs for the
/// properties verified. Returns exploration stats, or a description of
/// the first property violation found.
pub fn check_wound_wait(plans: &[Plan], partitions: usize) -> Result<ModelStats, String> {
    check_wound_wait_opts(plans, partitions, ModelOptions::default())
}

/// [`check_wound_wait`] with explicit [`ModelOptions`].
pub fn check_wound_wait_opts(
    plans: &[Plan],
    partitions: usize,
    opts: ModelOptions,
) -> Result<ModelStats, String> {
    assert!(plans.len() <= 4, "state space is exponential; keep n small");
    for plan in plans {
        let uniq: HashSet<_> = plan.iter().collect();
        assert_eq!(uniq.len(), plan.len(), "plans touch each partition once");
        assert!(plan.iter().all(|&p| (p as usize) < partitions));
    }

    // Forward exploration, remembering the transition graph for the
    // liveness pass.
    let init = State::initial(plans.len(), partitions);
    let mut ids: HashMap<State, usize> = HashMap::new();
    let mut edges: Vec<Vec<usize>> = Vec::new();
    let mut queue: VecDeque<State> = VecDeque::new();
    ids.insert(init.clone(), 0);
    edges.push(Vec::new());
    queue.push_back(init);
    let mut terminals = Vec::new();
    let mut max_aborts = 0;

    while let Some(s) = queue.pop_front() {
        let sid = ids[&s];
        if let Some(w) = s.wounded.iter().position(|&w| w) {
            // Only a strictly older rival may wound; txn `w` has `w`
            // older rivals, so txn 0 in particular is unwoundable.
            if w == 0 {
                return Err("oldest transaction was wounded".into());
            }
        }
        max_aborts = max_aborts.max(s.aborts.iter().copied().max().unwrap_or(0));
        if s.all_done() {
            terminals.push(sid);
            check_terminal(&s, plans)?;
            continue;
        }
        let succs = successors(&s, plans, opts);
        if succs.is_empty() {
            return Err(format!("deadlock: no step enabled in state {s:?}"));
        }
        for t in succs {
            let next = ids.len();
            let tid = *ids.entry(t.clone()).or_insert_with(|| {
                edges.push(Vec::new());
                queue.push_back(t);
                next
            });
            edges[sid].push(tid);
        }
    }

    // Liveness: every reachable state must reach a terminal. Backward
    // BFS from the terminals over reversed edges.
    let n = ids.len();
    let mut redges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (from, tos) in edges.iter().enumerate() {
        for &to in tos {
            redges[to].push(from);
        }
    }
    let mut good = vec![false; n];
    let mut bfs: VecDeque<usize> = terminals.iter().copied().collect();
    for &t in &terminals {
        good[t] = true;
    }
    while let Some(v) = bfs.pop_front() {
        for &u in &redges[v] {
            if !good[u] {
                good[u] = true;
                bfs.push_back(u);
            }
        }
    }
    if let Some(stuck) = good.iter().position(|&g| !g) {
        let s = ids.iter().find(|(_, &id)| id == stuck).unwrap().0;
        return Err(format!("livelock: no path to completion from {s:?}"));
    }

    Ok(ModelStats {
        states: n,
        terminals: terminals.len(),
        max_aborts,
    })
}

/// Terminal-state checks: exactly-once effects and an acyclic direct
/// serialization graph.
fn check_terminal(s: &State, plans: &[Plan]) -> Result<(), String> {
    for (p, &seq) in s.seqs.iter().enumerate() {
        let touch = plans.iter().filter(|pl| pl.contains(&(p as u8))).count();
        if seq as usize != touch {
            return Err(format!(
                "partition {p}: seq {seq} after {touch} touching txns (lost or doubled commit)"
            ));
        }
    }
    // Per-partition claims define total orders; their union must be
    // acyclic (Kahn's algorithm, as in the offline checker).
    let n = plans.len();
    let mut claims: HashMap<u8, Vec<(u8, usize)>> = HashMap::new();
    for (i, deps) in s.deps.iter().enumerate() {
        if deps.len() != plans[i].len() {
            return Err(format!(
                "txn {i} committed {} stamps, plan has {}",
                deps.len(),
                plans[i].len()
            ));
        }
        for &(p, seq) in deps {
            claims.entry(p).or_default().push((seq, i));
        }
    }
    let mut succs = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for (_, mut list) in claims {
        list.sort_unstable();
        for w in list.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(format!("duplicate stamp {:?} / {:?}", w[0], w[1]));
            }
            succs[w[0].1].push(w[1].1);
            indeg[w[1].1] += 1;
        }
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut seen = 0;
    while let Some(i) = ready.pop() {
        seen += 1;
        for &j in &succs[i] {
            indeg[j] -= 1;
            if indeg[j] == 0 {
                ready.push(j);
            }
        }
    }
    if seen < n {
        return Err("terminal history has a serialization cycle".into());
    }
    Ok(())
}

/// Offers every permutation of `logs` (each log once, or twice when
/// `duplicates` — modelling at-least-once delivery) to a fresh replica
/// through the real [`MaxVector`], and checks that each order converges
/// to the reference state: parking lot drained, `MAX` vector and store
/// contents identical to in-order application. Returns the number of
/// orders checked. Panics on the first divergence.
pub fn check_max_vector_permutations(
    logs: &[(DepVector, Vec<StateWrite>)],
    partitions: usize,
    duplicates: bool,
) -> usize {
    assert!(logs.len() <= 6, "n! orders; keep the batch small");

    // Reference: in-order application.
    let ref_store = StateStore::new(partitions);
    let ref_max = MaxVector::new(partitions);
    let mut ref_applied = 0;
    for (deps, writes) in logs {
        ref_applied += ref_max.offer(deps, writes, &ref_store).applied;
    }
    assert_eq!(ref_applied, logs.len(), "reference batch must be complete");
    let reference = canonical(&ref_store);
    let ref_vec = ref_max.vector();

    let mut orders = 0;
    let mut idx: Vec<usize> = (0..logs.len()).collect();
    permute(&mut idx, 0, &mut |order| {
        let store = StateStore::new(partitions);
        let max = MaxVector::new(partitions);
        let mut applied = 0;
        for &i in order {
            let (deps, writes) = &logs[i];
            applied += max.offer(deps, writes, &store).applied;
            if duplicates {
                // Immediate redelivery: must be parked-then-dropped or
                // detected stale, never applied twice.
                max.offer(deps, writes, &store);
            }
        }
        assert_eq!(applied, logs.len(), "order {order:?} lost logs");
        assert_eq!(max.parked_len(), 0, "order {order:?} left logs parked");
        assert_eq!(max.vector(), ref_vec, "order {order:?}: MAX diverged");
        assert_eq!(
            canonical(&store),
            reference,
            "order {order:?}: state diverged"
        );
        orders += 1;
    });
    orders
}

/// Heap's algorithm: visits every permutation of `v` exactly once.
fn permute(v: &mut [usize], k: usize, f: &mut impl FnMut(&[usize])) {
    if k == v.len() {
        f(v);
        return;
    }
    for i in k..v.len() {
        v.swap(k, i);
        permute(v, k + 1, f);
        v.swap(k, i);
    }
}

/// Store contents with per-partition pairs sorted, for order-insensitive
/// comparison.
fn canonical(store: &StateStore) -> Vec<Vec<(bytes::Bytes, bytes::Bytes)>> {
    let snap = store.snapshot();
    snap.maps
        .into_iter()
        .map(|mut m| {
            m.sort();
            m
        })
        .collect()
}

/// One transaction's footprint plan for the epoch-batch model: the
/// partitions it touches (each at most once, in access order) and whether
/// it buffers any write. A writer bumps the sequence number of *every*
/// touched partition at commit, mirroring `Txn::commit` and
/// `BatchedStore::commit_one`.
#[derive(Debug, Clone)]
pub struct BatchPlan {
    /// Partitions in first-access order.
    pub parts: Vec<u8>,
    /// Whether the transaction writes (read-only txns bump nothing).
    pub writing: bool,
}

/// Tuning knobs for [`check_epoch_batch_opts`].
#[derive(Debug, Clone, Copy)]
pub struct EpochModelOptions {
    /// Whether epoch admission rejects batch-internal conflicts (either
    /// txn writing a partition the other touched). Disabling this admits
    /// every fresh transaction, which must make the checker report a
    /// stale commit — the self-test that the checker has teeth.
    pub conflict_check: bool,
    /// Requeues before a transaction escalates to the pessimistic path
    /// (body re-run and committed under the commit lock).
    pub requeue_cap: u8,
}

impl Default for EpochModelOptions {
    fn default() -> Self {
        EpochModelOptions {
            conflict_check: true,
            requeue_cap: 2,
        }
    }
}

/// Exploration statistics from a successful [`check_epoch_batch`] run.
#[derive(Debug, Clone, Copy)]
pub struct EpochModelStats {
    /// Distinct states explored.
    pub states: usize,
    /// Distinct all-committed terminal states reached.
    pub terminals: usize,
    /// Largest requeue count any transaction reached.
    pub max_requeues: u8,
    /// Whether some interleaving took the pessimistic escalation.
    pub pessimistic_taken: bool,
}

/// Per-transaction phase in the epoch-batch model.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum EPhase {
    /// Body executing optimistically; `usize` counts partitions whose
    /// first-access version has been recorded so far.
    Running(usize),
    /// Footprint submitted; awaiting an epoch verdict.
    Queued,
    /// Committed.
    Done,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct EState {
    phase: Vec<EPhase>,
    /// First-observed sequence number per recorded partition, parallel to
    /// `plans[i].parts[..k]`.
    versions: Vec<Vec<u8>>,
    requeues: Vec<u8>,
    /// Submission order of the open epoch.
    queue: Vec<usize>,
    /// Per-partition commit sequence counters.
    seqs: Vec<u8>,
    /// `(partition, observed version)` pairs of each committed txn.
    commits: Vec<Option<Vec<(u8, u8)>>>,
    /// Which committed txns went through the pessimistic path.
    pessimistic: Vec<bool>,
}

impl EState {
    fn initial(n: usize, partitions: usize) -> EState {
        EState {
            phase: vec![EPhase::Running(0); n],
            versions: vec![Vec::new(); n],
            requeues: vec![0; n],
            queue: Vec::new(),
            seqs: vec![0; partitions],
            commits: vec![None; n],
            pessimistic: vec![false; n],
        }
    }

    fn all_done(&self) -> bool {
        self.phase.iter().all(|p| *p == EPhase::Done)
    }

    /// Commits txn `i` with the given observed versions: bumps every
    /// touched partition iff the txn writes, and records the stamps.
    fn commit_txn(&mut self, i: usize, plan: &BatchPlan, versions: &[u8]) {
        if plan.writing {
            for &p in &plan.parts {
                self.seqs[p as usize] += 1;
            }
        }
        self.commits[i] = Some(
            plan.parts
                .iter()
                .copied()
                .zip(versions.iter().copied())
                .collect(),
        );
        self.phase[i] = EPhase::Done;
    }
}

/// Batch-internal conflict rule, mirroring `Footprint::conflicts_with`:
/// either transaction writes — and therefore bumps — a partition the
/// other touched. Read-read overlap commutes.
fn plans_conflict(a: &BatchPlan, b: &BatchPlan) -> bool {
    let hits =
        |x: &BatchPlan, y: &BatchPlan| x.writing && x.parts.iter().any(|p| y.parts.contains(p));
    hits(a, b) || hits(b, a)
}

/// Every enabled successor of `s` under the epoch-batch protocol.
fn epoch_successors(s: &EState, plans: &[BatchPlan], opts: EpochModelOptions) -> Vec<EState> {
    let mut out = Vec::new();
    for i in 0..plans.len() {
        match s.phase[i] {
            EPhase::Done | EPhase::Queued => {}
            EPhase::Running(k) if s.requeues[i] > opts.requeue_cap => {
                debug_assert_eq!(k, 0, "escalation happens before re-execution");
                // Pessimistic escalation: the body re-runs and commits in
                // one step under the commit lock (pending submissions are
                // committed first — modelled by the separate seal step,
                // which remains enabled and explores that ordering).
                let mut t = s.clone();
                let versions: Vec<u8> =
                    plans[i].parts.iter().map(|&p| t.seqs[p as usize]).collect();
                t.commit_txn(i, &plans[i], &versions);
                t.pessimistic[i] = true;
                out.push(t);
            }
            EPhase::Running(k) if k < plans[i].parts.len() => {
                // Record the next partition's sequence number at first
                // access. Interleaving these steps across transactions is
                // what produces torn (stale) footprints.
                let mut t = s.clone();
                let p = plans[i].parts[k];
                t.versions[i].push(t.seqs[p as usize]);
                t.phase[i] = EPhase::Running(k + 1);
                out.push(t);
            }
            EPhase::Running(_) => {
                // Body finished: submit the footprint.
                let mut t = s.clone();
                t.phase[i] = EPhase::Queued;
                t.queue.push(i);
                out.push(t);
            }
        }
    }
    if !s.queue.is_empty() {
        // Seal: whoever wins the commit lock takes the whole queue and
        // decides it. The outcome is a function of the batch alone, so
        // one step covers every winner.
        let mut t = s.clone();
        let batch = std::mem::take(&mut t.queue);
        let seal_seqs = t.seqs.clone();
        let mut admitted: Vec<usize> = Vec::new();
        for &i in &batch {
            let fresh = plans[i]
                .parts
                .iter()
                .zip(&t.versions[i])
                .all(|(&p, &v)| seal_seqs[p as usize] == v);
            let clean = !opts.conflict_check
                || admitted
                    .iter()
                    .all(|&j| !plans_conflict(&plans[j], &plans[i]));
            if fresh && clean {
                admitted.push(i);
            } else {
                t.phase[i] = EPhase::Running(0);
                t.versions[i].clear();
                t.requeues[i] = t.requeues[i].saturating_add(1);
            }
        }
        for &i in &admitted {
            let versions = std::mem::take(&mut t.versions[i]);
            t.commit_txn(i, &plans[i], &versions);
        }
        out.push(t);
    }
    out
}

/// Checks the epoch-batched optimistic protocol for `plans` over
/// `partitions` partitions with default options. Verifies, over **every**
/// interleaving of version recording, submission, sealing, and
/// escalation: freshness at each commit point (no lost updates),
/// exactly-once effects in every terminal state, and an acyclic
/// serialization graph over writer stamps and reader-observed versions.
pub fn check_epoch_batch(
    plans: &[BatchPlan],
    partitions: usize,
) -> Result<EpochModelStats, String> {
    check_epoch_batch_opts(plans, partitions, EpochModelOptions::default())
}

/// [`check_epoch_batch`] with explicit [`EpochModelOptions`].
pub fn check_epoch_batch_opts(
    plans: &[BatchPlan],
    partitions: usize,
    opts: EpochModelOptions,
) -> Result<EpochModelStats, String> {
    assert!(plans.len() <= 3, "state space is exponential; keep n small");
    for plan in plans {
        let uniq: HashSet<_> = plan.parts.iter().collect();
        assert_eq!(
            uniq.len(),
            plan.parts.len(),
            "plans touch each partition once"
        );
        assert!(plan.parts.iter().all(|&p| (p as usize) < partitions));
    }

    let init = EState::initial(plans.len(), partitions);
    let mut seen: HashSet<EState> = HashSet::new();
    let mut queue: VecDeque<EState> = VecDeque::new();
    seen.insert(init.clone());
    queue.push_back(init);
    let mut terminals = 0;
    let mut terminal_seen: HashSet<Vec<Option<Vec<(u8, u8)>>>> = HashSet::new();
    let mut max_requeues = 0;
    let mut pessimistic_taken = false;

    while let Some(s) = queue.pop_front() {
        max_requeues = max_requeues.max(s.requeues.iter().copied().max().unwrap_or(0));
        pessimistic_taken |= s.pessimistic.iter().any(|&p| p);
        // Freshness at commit point: every committed *writer* must have
        // observed, for each touched partition, exactly the versions its
        // own bumps sit on top of — checked globally at terminals below;
        // the per-state invariant here is that no two committed writers
        // claim the same stamp (caught early for better diagnostics).
        if s.all_done() {
            if terminal_seen.insert(s.commits.clone()) {
                terminals += 1;
                check_epoch_terminal(&s, plans)?;
            }
            continue;
        }
        let succs = epoch_successors(&s, plans, opts);
        if succs.is_empty() {
            return Err(format!("deadlock: no step enabled in state {s:?}"));
        }
        for t in succs {
            if seen.insert(t.clone()) {
                queue.push_back(t);
            }
        }
    }

    Ok(EpochModelStats {
        states: seen.len(),
        terminals,
        max_requeues,
        pessimistic_taken,
    })
}

/// Terminal checks for the epoch-batch model: exactly-once effects,
/// freshness of every writer's stamps, and an acyclic serialization graph
/// including read-only transactions.
fn check_epoch_terminal(s: &EState, plans: &[BatchPlan]) -> Result<(), String> {
    for (p, &seq) in s.seqs.iter().enumerate() {
        let writers = plans
            .iter()
            .filter(|pl| pl.writing && pl.parts.contains(&(p as u8)))
            .count();
        if seq as usize != writers {
            return Err(format!(
                "partition {p}: seq {seq} after {writers} writers (lost or doubled commit)"
            ));
        }
    }
    // Writers on one partition must hold distinct consecutive stamps
    // 0..writers — i.e. each writer's observed version was fresh at its
    // commit point. A duplicate stamp means two writers committed over
    // the same snapshot: a lost update.
    let n = plans.len();
    let mut succs = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    let mut add_edge =
        |from: usize, to: usize, succs: &mut Vec<Vec<usize>>, indeg: &mut Vec<usize>| {
            succs[from].push(to);
            indeg[to] += 1;
        };
    let partitions = s.seqs.len();
    for p in 0..partitions as u8 {
        // (stamp, txn) of every writer that touched p.
        let mut writers: Vec<(u8, usize)> = Vec::new();
        let mut readers: Vec<(u8, usize)> = Vec::new();
        for (i, commit) in s.commits.iter().enumerate() {
            let commit = commit
                .as_ref()
                .ok_or_else(|| format!("txn {i} never committed"))?;
            if let Some(&(_, v)) = commit.iter().find(|&&(q, _)| q == p) {
                if plans[i].writing {
                    writers.push((v, i));
                } else {
                    readers.push((v, i));
                }
            }
        }
        writers.sort_unstable();
        for w in writers.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(format!(
                    "partition {p}: txns {} and {} committed over the same version {} (lost update)",
                    w[0].1, w[1].1, w[0].0
                ));
            }
        }
        for pair in writers.windows(2) {
            add_edge(pair[0].1, pair[1].1, &mut succs, &mut indeg);
        }
        // A reader that observed version v serializes after the writer
        // whose bump produced v and before the writer that bumped v → v+1.
        for &(v, r) in &readers {
            if let Some(&(_, w)) = writers.iter().find(|&&(stamp, _)| stamp + 1 == v) {
                add_edge(w, r, &mut succs, &mut indeg);
            }
            if let Some(&(_, w)) = writers.iter().find(|&&(stamp, _)| stamp == v) {
                add_edge(r, w, &mut succs, &mut indeg);
            }
        }
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut done = 0;
    while let Some(i) = ready.pop() {
        done += 1;
        for &j in &succs[i].clone() {
            indeg[j] -= 1;
            if indeg[j] == 0 {
                ready.push(j);
            }
        }
    }
    if done < n {
        return Err("terminal history has a serialization cycle".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_txn_is_trivially_correct() {
        let stats = check_wound_wait(&[vec![0, 1]], 2).unwrap();
        assert_eq!(stats.terminals, 1);
        assert_eq!(stats.max_aborts, 0);
    }

    #[test]
    fn disabling_wounding_reintroduces_deadlock() {
        // Opposite acquisition orders deadlock under plain blocking 2PL;
        // the checker must see it. This is the checker checking itself.
        let err = check_wound_wait_opts(
            &[vec![0, 1], vec![1, 0]],
            2,
            ModelOptions {
                wound: false,
                ..ModelOptions::default()
            },
        )
        .unwrap_err();
        assert!(err.contains("deadlock"), "got: {err}");
    }
}
