//! The partitioned state store.

use crate::recorder::{HistorySink, RecorderCell};
use crate::txn::{Txn, TxnError, TxnOutput, TxnRecord};
use crate::{partition_of, shard_count, shard_of, shard_span, DepVector, StateWrite};
use bytes::Bytes;
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Index of a state partition.
pub type PartitionId = u16;

/// Aggregate statistics maintained by a state engine (shared by every
/// [`crate::StateBackend`] implementation).
#[derive(Debug, Default)]
pub struct StoreStats {
    /// Transactions committed.
    pub commits: AtomicU64,
    /// Transparently re-executed aborts: wound-wait wounds on the 2PL
    /// engine, failed optimistic validations on the batched engine.
    pub wound_aborts: AtomicU64,
    /// Piggyback logs applied via [`StateStore::apply_writes`].
    pub applied_logs: AtomicU64,
}

impl StoreStats {
    /// Snapshot of the counters as plain integers
    /// `(commits, wound_aborts, applied_logs)`.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.commits.load(Ordering::Relaxed),
            self.wound_aborts.load(Ordering::Relaxed),
            self.applied_logs.load(Ordering::Relaxed),
        )
    }
}

pub(crate) struct PartitionState {
    /// Current lock holder, if any.
    pub owner: Option<Arc<TxnRecord>>,
    /// Key → value map for this partition.
    pub map: HashMap<Bytes, Bytes>,
    /// Number of committed *writing* transactions that touched this
    /// partition — the head's dependency-vector component (paper §4.3).
    pub seq: u64,
}

/// One state partition: the 2PL lock manager cell (owner + condvar) plus the
/// key/value map and sequence counter it guards. Aligned to two cache lines
/// so neighbouring partitions' lock words never false-share under the
/// adjacent-line prefetcher.
#[repr(align(128))]
pub(crate) struct Partition {
    pub state: Mutex<PartitionState>,
    pub cv: Condvar,
}

impl Partition {
    fn new() -> Self {
        Partition {
            state: Mutex::new(PartitionState {
                owner: None,
                map: HashMap::new(),
                seq: 0,
            }),
            cv: Condvar::new(),
        }
    }
}

/// A contiguous group of partitions forming one lock shard. The two-level
/// key mapping ([`crate::partition_of`]) sends every state variable of a
/// flow into a single shard, so a packet transaction's lock footprint stays
/// inside one shard and distinct flows contend on disjoint lock groups.
pub(crate) struct Shard {
    /// Global index of `parts[0]`; the shard owns `base..base + parts.len()`.
    pub base: PartitionId,
    pub parts: Vec<Partition>,
}

/// A deep copy of a store's contents, transferred during failure recovery
/// (paper §4.1: "the new replica retrieves the state store … and sequence
/// number").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreSnapshot {
    /// Per-partition key/value maps.
    pub maps: Vec<Vec<(Bytes, Bytes)>>,
    /// Per-partition sequence numbers.
    pub seqs: Vec<u64>,
}

impl StoreSnapshot {
    /// Total serialized size of the snapshot in bytes (keys + values), used
    /// to model state-transfer time in recovery experiments.
    pub fn byte_size(&self) -> usize {
        self.maps
            .iter()
            .flatten()
            .map(|(k, v)| k.len() + v.len())
            .sum::<usize>()
            + self.seqs.len() * 8
    }
}

/// A partitioned middlebox state store supporting transactional access.
///
/// ```
/// use ftc_stm::StateStore;
/// use bytes::Bytes;
///
/// let store = StateStore::new(32);
/// let out = store.transaction(|txn| {
///     let hits = txn.read_u64(b"hits")?.unwrap_or(0);
///     txn.write_u64(Bytes::from_static(b"hits"), hits + 1)?;
///     Ok(hits + 1)
/// });
/// assert_eq!(out.value, 1);
/// // Writing transactions yield a replication log for piggybacking.
/// let log = out.log.expect("wrote state");
/// assert_eq!(log.writes.len(), 1);
/// ```
pub struct StateStore {
    /// Lock shards, each owning a contiguous span of the global partition
    /// index space (see [`crate::shard_span`]).
    shards: Vec<Shard>,
    /// Total partition count across all shards.
    n_partitions: usize,
    /// Wound-wait timestamp source, shared by all transactions on this store.
    /// Store-wide (not per-shard) so timestamps stay globally comparable and
    /// wound-wait priority is a single total order.
    pub(crate) ts_gen: AtomicU64,
    /// Statistics.
    pub stats: StoreStats,
    /// The audit-recorder attachment point (shared across engines; see
    /// [`crate::StateBackend`]'s tap obligations).
    tap: RecorderCell,
}

impl StateStore {
    /// Creates a store with `partitions` state partitions, grouped into
    /// [`crate::shard_count`] lock shards.
    pub fn new(partitions: usize) -> Self {
        assert!(partitions > 0 && partitions <= u16::MAX as usize);
        let shards = shard_count(partitions);
        StateStore {
            shards: (0..shards)
                .map(|s| {
                    let (base, len) = shard_span(s, partitions, shards);
                    Shard {
                        base: base as PartitionId,
                        parts: (0..len).map(|_| Partition::new()).collect(),
                    }
                })
                .collect(),
            n_partitions: partitions,
            ts_gen: AtomicU64::new(1),
            stats: StoreStats::default(),
            tap: RecorderCell::default(),
        }
    }

    /// Attaches an audit sink that observes every committed writing
    /// transaction and every applied log. Replaces any previous sink.
    pub fn set_recorder(&self, sink: Arc<dyn HistorySink>) {
        self.tap.set(sink);
    }

    /// Detaches the audit sink, if any. In-flight commits may still report
    /// to the old sink after this returns.
    pub fn clear_recorder(&self) {
        self.tap.clear();
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.n_partitions
    }

    /// Number of lock shards the partitions are grouped into.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The partition a key maps to.
    pub fn partition_of(&self, key: &[u8]) -> PartitionId {
        partition_of(key, self.n_partitions)
    }

    /// The lock shard a key maps to (the flow-prefix level of the mapping).
    pub fn shard_of(&self, key: &[u8]) -> usize {
        shard_of(key, self.n_partitions)
    }

    /// Resolves a global partition index to its cell in the sharded layout.
    pub(crate) fn part(&self, p: PartitionId) -> &Partition {
        let p = p as usize;
        debug_assert!(p < self.n_partitions);
        // Inverse of `shard_span`: the first `r` shards hold `q + 1`
        // partitions, the rest hold `q`.
        let q = self.n_partitions / self.shards.len();
        let r = self.n_partitions % self.shards.len();
        let cut = r * (q + 1);
        let (s, off) = if p < cut {
            (p / (q + 1), p % (q + 1))
        } else {
            (r + (p - cut) / q, (p - cut) % q)
        };
        let shard = &self.shards[s];
        debug_assert_eq!(
            shard.base as usize + off,
            p,
            "index arithmetic matches layout"
        );
        &shard.parts[off]
    }

    /// Iterates partitions in global index order (shards own contiguous
    /// spans, so shard order *is* global order).
    fn parts(&self) -> impl Iterator<Item = &Partition> {
        self.shards.iter().flat_map(|s| s.parts.iter())
    }

    /// Runs `body` as a packet transaction, retrying transparently when it
    /// is wounded. Returns the closure result and, if the transaction wrote
    /// state, the [`TxnLog`] to piggyback.
    ///
    /// The closure may be re-executed; it must be idempotent with respect to
    /// non-state side effects (packet mutation should be done after the
    /// transaction or based on its output, as the FTC runtimes do).
    pub fn transaction<T>(
        &self,
        mut body: impl FnMut(&mut Txn<'_>) -> Result<T, TxnError>,
    ) -> TxnOutput<T> {
        let ts = self.ts_gen.fetch_add(1, Ordering::Relaxed);
        loop {
            let record = Arc::new(TxnRecord::new(ts));
            let mut txn = Txn::new(self, record);
            match body(&mut txn) {
                Ok(value) => {
                    let log = txn.commit();
                    self.stats.commits.fetch_add(1, Ordering::Relaxed);
                    if let Some(log) = &log {
                        self.tap.record_commit(log);
                    }
                    return TxnOutput { value, log };
                }
                Err(TxnError::Wounded) => {
                    txn.rollback();
                    self.stats.wound_aborts.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            }
        }
    }

    /// Non-transactional read of a single key (test and inspection helper;
    /// acquires only the partition's internal mutex, not the 2PL lock).
    pub fn peek(&self, key: &[u8]) -> Option<Bytes> {
        let p = self.partition_of(key);
        let st = self.part(p).state.lock();
        st.map.get(key).cloned()
    }

    /// Non-transactional read of a u64 counter stored at `key`.
    pub fn peek_u64(&self, key: &[u8]) -> Option<u64> {
        self.peek(key)
            .and_then(|v| v.as_ref().try_into().ok().map(u64::from_be_bytes))
    }

    /// The current per-partition sequence vector (the head's dependency
    /// vector state).
    pub fn seq_vector(&self) -> Vec<u64> {
        self.parts().map(|p| p.state.lock().seq).collect()
    }

    /// Applies replicated writes from a piggyback log to this store,
    /// incrementing the sequence numbers of the partitions in `deps`.
    ///
    /// This is the replica-side mirror of a head commit: the caller (a
    /// [`crate::MaxVector`]) has already established that the log is
    /// in-order. Partition internal mutexes are taken in index order, so
    /// concurrent appliers cannot deadlock.
    pub fn apply_writes(&self, deps: &DepVector, writes: &[StateWrite]) {
        let mut touched: Vec<PartitionId> = deps.entries().iter().map(|&(p, _)| p).collect();
        if touched.is_empty() {
            // Defensive: a no-op log carries no deps; nothing to bump.
            debug_assert!(writes.is_empty());
            return;
        }
        touched.sort_unstable();
        let mut guards: Vec<(PartitionId, MutexGuard<'_, PartitionState>)> = touched
            .iter()
            .map(|&p| (p, self.part(p).state.lock()))
            .collect();
        for w in writes {
            let slot = guards
                .iter_mut()
                .find(|(p, _)| *p == w.partition)
                .map(|(_, g)| g)
                .expect("write partition must appear in the dependency vector");
            if w.value.is_empty() {
                slot.map.remove(&w.key);
            } else {
                slot.map.insert(w.key.clone(), w.value.clone());
            }
        }
        for (_, g) in &mut guards {
            g.seq += 1;
        }
        drop(guards);
        self.stats.applied_logs.fetch_add(1, Ordering::Relaxed);
        self.tap.record_apply(deps, writes);
    }

    /// Deep-copies the store for recovery state transfer.
    pub fn snapshot(&self) -> StoreSnapshot {
        let mut maps = Vec::with_capacity(self.n_partitions);
        let mut seqs = Vec::with_capacity(self.n_partitions);
        for p in self.parts() {
            let st = p.state.lock();
            let mut entries: Vec<(Bytes, Bytes)> =
                st.map.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            // Deterministic transfer form: hash-map iteration order differs
            // between otherwise-identical stores.
            entries.sort_unstable_by(|a, b| a.0.as_ref().cmp(b.0.as_ref()));
            maps.push(entries);
            seqs.push(st.seq);
        }
        StoreSnapshot { maps, seqs }
    }

    /// Replaces the store contents from a snapshot (recovery restore).
    pub fn restore(&self, snap: &StoreSnapshot) {
        assert_eq!(
            snap.maps.len(),
            self.n_partitions,
            "partition count mismatch"
        );
        for (i, p) in self.parts().enumerate() {
            let mut st = p.state.lock();
            st.map = snap.maps[i].iter().cloned().collect();
            st.seq = snap.seqs[i];
        }
    }

    /// Restores only the per-partition sequence numbers (used when a new
    /// head sets its dependency vector from a fetched `MAX`, paper §5.2).
    pub fn restore_seqs(&self, seqs: &[u64]) {
        assert_eq!(seqs.len(), self.n_partitions);
        for (p, &s) in self.parts().zip(seqs) {
            p.state.lock().seq = s;
        }
    }

    /// Total number of keys across partitions.
    pub fn len(&self) -> usize {
        self.parts().map(|p| p.state.lock().map.len()).sum()
    }

    /// True if no partition holds any key.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for StateStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StateStore")
            .field("partitions", &self.n_partitions)
            .field("shards", &self.shards.len())
            .field("keys", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_read_write_txn() {
        let store = StateStore::new(8);
        let out = store.transaction(|txn| {
            assert_eq!(txn.read(b"k")?, None);
            txn.write(Bytes::from_static(b"k"), Bytes::from_static(b"v1"))?;
            Ok(())
        });
        let log = out.log.expect("writing txn must log");
        assert_eq!(log.writes.len(), 1);
        assert_eq!(store.peek(b"k"), Some(Bytes::from_static(b"v1")));
    }

    #[test]
    fn read_only_txn_has_no_log() {
        let store = StateStore::new(8);
        store.transaction(|txn| {
            txn.write(Bytes::from_static(b"a"), Bytes::from_static(b"1"))?;
            Ok(())
        });
        let seqs_before = store.seq_vector();
        let out = store.transaction(|txn| txn.read(b"a"));
        assert_eq!(out.value, Some(Bytes::from_static(b"1")));
        assert!(out.log.is_none(), "read-only transactions leave no log");
        assert_eq!(
            store.seq_vector(),
            seqs_before,
            "paper: read-only txns do not change the vector"
        );
    }

    #[test]
    fn writing_txn_bumps_read_partitions_too() {
        let store = StateStore::new(8);
        let ka = Bytes::from_static(b"a");
        let kb = Bytes::from_static(b"b");
        store.transaction(|txn| {
            txn.write(ka.clone(), Bytes::from_static(b"1"))?;
            Ok(())
        });
        let out = store.transaction(|txn| {
            let _ = txn.read(&ka)?; // read one partition
            txn.write(kb.clone(), Bytes::from_static(b"2"))?; // write another
            Ok(())
        });
        let log = out.log.unwrap();
        let pa = store.partition_of(&ka);
        let pb = store.partition_of(&kb);
        assert!(log.deps.get(pa).is_some(), "read partition in dep vector");
        assert!(
            log.deps.get(pb).is_some(),
            "written partition in dep vector"
        );
    }

    #[test]
    fn dep_vector_records_pre_increment_seq() {
        let store = StateStore::new(4);
        let k = Bytes::from_static(b"x");
        let p = store.partition_of(&k);
        for expected in 0..3u64 {
            let out = store.transaction(|txn| {
                txn.write(k.clone(), Bytes::from_static(b"v"))?;
                Ok(())
            });
            assert_eq!(out.log.unwrap().deps.get(p), Some(expected));
        }
        assert_eq!(store.seq_vector()[p as usize], 3);
    }

    #[test]
    fn delete_via_empty_value() {
        let store = StateStore::new(4);
        let k = Bytes::from_static(b"gone");
        store.transaction(|txn| {
            txn.write(k.clone(), Bytes::from_static(b"v"))?;
            Ok(())
        });
        store.transaction(|txn| {
            txn.delete(k.clone())?;
            Ok(())
        });
        assert_eq!(store.peek(&k), None);
    }

    #[test]
    fn apply_writes_mirrors_commit() {
        let head = StateStore::new(8);
        let replica = StateStore::new(8);
        let k = Bytes::from_static(b"mirrored");
        let out = head.transaction(|txn| {
            txn.write(k.clone(), Bytes::from_static(b"v"))?;
            Ok(())
        });
        let log = out.log.unwrap();
        replica.apply_writes(&log.deps, &log.writes);
        assert_eq!(replica.peek(&k), Some(Bytes::from_static(b"v")));
        assert_eq!(replica.seq_vector(), head.seq_vector());
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let store = StateStore::new(8);
        for i in 0..50 {
            let key = Bytes::from(format!("k{i}"));
            store.transaction(|txn| {
                txn.write(key.clone(), Bytes::from(format!("v{i}")))?;
                Ok(())
            });
        }
        let snap = store.snapshot();
        assert!(snap.byte_size() > 0);
        let other = StateStore::new(8);
        other.restore(&snap);
        assert_eq!(other.len(), 50);
        assert_eq!(other.seq_vector(), store.seq_vector());
        assert_eq!(other.peek(b"k17"), Some(Bytes::from_static(b"v17")));
    }

    #[test]
    fn sharded_layout_preserves_global_index_order() {
        for n in [1usize, 3, 8, 9, 32, 100] {
            let store = StateStore::new(n);
            assert_eq!(store.partitions(), n);
            assert!(store.shards() <= n && store.shards() >= 1);
            // Stamp each partition through its shard cell and confirm the
            // flat seq_vector reads it back at the same global index.
            for p in 0..n {
                store.part(p as PartitionId).state.lock().seq = p as u64 + 1;
            }
            assert_eq!(store.seq_vector(), (1..=n as u64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn keys_resolve_inside_their_flow_shard() {
        let store = StateStore::new(32);
        for i in 0..200u32 {
            let key = format!("nat:flow:10.0.{}.{}", i / 8, i % 8);
            let s = store.shard_of(key.as_bytes());
            let (base, len) = crate::shard_span(s, store.partitions(), store.shards());
            let p = store.partition_of(key.as_bytes()) as usize;
            assert!((base..base + len).contains(&p));
        }
    }

    #[test]
    fn counter_helpers() {
        let store = StateStore::new(4);
        let k = Bytes::from_static(b"cnt");
        for _ in 0..5 {
            store.transaction(|txn| {
                let c = txn.read_u64(&k)?.unwrap_or(0);
                txn.write_u64(k.clone(), c + 1)?;
                Ok(())
            });
        }
        assert_eq!(store.peek_u64(&k), Some(5));
    }
}
