//! Opt-in history recording for offline concurrency audits.
//!
//! A [`HistorySink`] attached to a [`StateStore`](crate::StateStore)
//! observes every committed *writing* transaction (with its dependency
//! vector, write set, commit index, and the committing thread) and every
//! replicated log applied through
//! [`StateStore::apply_writes`](crate::StateStore::apply_writes). The
//! `ftc-audit` crate implements a sink that accumulates these events into
//! a history and mechanically checks the paper's §4.2/§4.3 claims:
//! serializability of the commit order and convergence of dep-respecting
//! replays.
//!
//! Recording is strictly opt-in: a store with no sink attached pays one
//! relaxed atomic load per commit and nothing else.

use crate::{DepVector, StateWrite, TxnLog};
use parking_lot::RwLock;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// One committed writing transaction, as observed by a [`HistorySink`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitRecord {
    /// Arrival index of this commit at the recorder (0-based). Commits
    /// release their partition locks before the sink runs, so under
    /// concurrency this is only a linearization *hint*; the authoritative
    /// ordering information is `deps` (per-partition pre-increment
    /// sequence numbers), which the audit checker uses.
    pub commit_index: u64,
    /// A stable hash of the committing thread's [`std::thread::ThreadId`].
    pub thread: u64,
    /// Pre-increment sequence numbers of every partition the transaction
    /// read or wrote.
    pub deps: DepVector,
    /// The committed write set.
    pub writes: Vec<StateWrite>,
}

/// Observer of a store's committed transactions and applied logs.
///
/// Implementations must tolerate concurrent calls: the store invokes the
/// sink from whichever thread commits or applies.
pub trait HistorySink: Send + Sync {
    /// Called once per committed writing transaction, after its locks are
    /// released. Read-only transactions are not reported: they produce no
    /// log and cannot affect serializability of the write history.
    fn on_commit(&self, rec: CommitRecord);

    /// Called once per piggyback log applied to this (replica) store.
    fn on_apply(&self, deps: &DepVector, writes: &[StateWrite]);
}

/// Stable `u64` identifier for the current thread, derived by hashing
/// [`std::thread::ThreadId`].
pub(crate) fn current_thread_id() -> u64 {
    let mut h = DefaultHasher::new();
    std::thread::current().id().hash(&mut h);
    h.finish()
}

/// The shared recorder attachment point every state engine embeds: the
/// "is anyone recording?" fast flag, the commit arrival counter, and the
/// sink slot. Factoring it here keeps the tap obligations of the
/// [`StateBackend`](crate::StateBackend) contract identical across
/// engines — one implementation, two (or more) users.
#[derive(Default)]
pub(crate) struct RecorderCell {
    /// Fast path for "is anyone recording?" — one Acquire load per commit
    /// (flags never use Relaxed; see scripts/forbidden_patterns.py).
    recording: AtomicBool,
    /// Commit arrival counter handed to the recorder (see
    /// [`CommitRecord::commit_index`]).
    commit_seq: AtomicU64,
    /// The attached audit sink, if any.
    recorder: RwLock<Option<Arc<dyn HistorySink>>>,
}

impl RecorderCell {
    /// Attaches a sink, replacing any previous one.
    pub fn set(&self, sink: Arc<dyn HistorySink>) {
        *self.recorder.write() = Some(sink);
        self.recording.store(true, Ordering::SeqCst);
    }

    /// Detaches the sink, if any. In-flight commits may still report to
    /// the old sink after this returns.
    pub fn clear(&self) {
        self.recording.store(false, Ordering::SeqCst);
        *self.recorder.write() = None;
    }

    /// Reports a committed log to the attached sink, if recording.
    pub fn record_commit(&self, log: &TxnLog) {
        if !self.recording.load(Ordering::Acquire) {
            return;
        }
        if let Some(sink) = self.recorder.read().as_ref() {
            sink.on_commit(CommitRecord {
                commit_index: self.commit_seq.fetch_add(1, Ordering::Relaxed),
                thread: current_thread_id(),
                deps: log.deps.clone(),
                writes: log.writes.clone(),
            });
        }
    }

    /// Reports an applied log to the attached sink, if recording.
    pub fn record_apply(&self, deps: &DepVector, writes: &[StateWrite]) {
        if !self.recording.load(Ordering::Acquire) {
            return;
        }
        if let Some(sink) = self.recorder.read().as_ref() {
            sink.on_apply(deps, writes);
        }
    }
}

impl std::fmt::Debug for RecorderCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecorderCell")
            .field("recording", &self.recording.load(Ordering::Acquire))
            .finish()
    }
}
