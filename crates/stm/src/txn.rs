//! Packet transactions: strict two-phase locking with wound-wait.

use crate::store::{PartitionId, StateStore};
use crate::{DepVector, StateWrite};
use bytes::Bytes;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Errors surfaced to transaction bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnError {
    /// The transaction was wounded by an older transaction and must abort;
    /// [`StateStore::transaction`] re-executes it automatically.
    Wounded,
}

impl core::fmt::Display for TxnError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TxnError::Wounded => write!(f, "transaction wounded by an older transaction"),
        }
    }
}

impl std::error::Error for TxnError {}

/// The replication log of a committed writing transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnLog {
    /// Pre-increment sequence numbers of every partition the transaction
    /// read or wrote (paper §4.3).
    pub deps: DepVector,
    /// The written key/value pairs (empty value = deletion).
    pub writes: Vec<StateWrite>,
}

/// Result of [`StateStore::transaction`].
#[derive(Debug)]
pub struct TxnOutput<T> {
    /// Whatever the transaction body returned.
    pub value: T,
    /// `Some` iff the transaction wrote state.
    pub log: Option<TxnLog>,
}

/// Sentinel for "not waiting on any partition".
const NOT_WAITING: usize = usize::MAX;

/// Shared bookkeeping for one transaction attempt, visible to other
/// transactions through partition lock ownership.
pub(crate) struct TxnRecord {
    /// Wound-wait timestamp: smaller = older = higher priority. Retries keep
    /// their original timestamp, so every transaction eventually becomes the
    /// oldest and cannot be wounded again (starvation freedom).
    pub ts: u64,
    /// Set by an older transaction that wants a lock we hold.
    pub wounded: AtomicBool,
    /// Partition index this transaction currently sleeps on, if any.
    pub waiting_on: AtomicUsize,
}

impl TxnRecord {
    pub(crate) fn new(ts: u64) -> Self {
        TxnRecord {
            ts,
            wounded: AtomicBool::new(false),
            waiting_on: AtomicUsize::new(NOT_WAITING),
        }
    }
}

/// An in-flight packet transaction over a [`StateStore`].
///
/// Obtained from [`StateStore::transaction`]; reads and writes acquire
/// partition locks (strict 2PL) that are held until commit or rollback.
pub struct Txn<'a> {
    store: &'a StateStore,
    record: Arc<TxnRecord>,
    /// Partitions whose 2PL lock we hold, in acquisition order.
    held: Vec<PartitionId>,
    /// Every partition read or written (the dependency-vector footprint).
    touched: BTreeSet<PartitionId>,
    /// Buffered writes, applied at commit.
    writes: BTreeMap<Bytes, Bytes>,
}

impl<'a> Txn<'a> {
    pub(crate) fn new(store: &'a StateStore, record: Arc<TxnRecord>) -> Self {
        Txn {
            store,
            record,
            held: Vec::new(),
            touched: BTreeSet::new(),
            writes: BTreeMap::new(),
        }
    }

    /// Reads a state variable. Acquires the partition lock.
    pub fn read(&mut self, key: &[u8]) -> Result<Option<Bytes>, TxnError> {
        let p = self.store.partition_of(key);
        self.acquire(p)?;
        self.touched.insert(p);
        if let Some(v) = self.writes.get(key) {
            return Ok(if v.is_empty() { None } else { Some(v.clone()) });
        }
        let st = self.store.part(p).state.lock();
        Ok(st.map.get(key).cloned())
    }

    /// Writes a state variable. Acquires the partition lock; the write is
    /// buffered until commit.
    pub fn write(&mut self, key: Bytes, value: Bytes) -> Result<(), TxnError> {
        assert!(
            !value.is_empty(),
            "empty values encode deletions; use delete()"
        );
        let p = self.store.partition_of(&key);
        self.acquire(p)?;
        self.touched.insert(p);
        self.writes.insert(key, value);
        Ok(())
    }

    /// Deletes a state variable (replicated as an empty-value write).
    pub fn delete(&mut self, key: Bytes) -> Result<(), TxnError> {
        let p = self.store.partition_of(&key);
        self.acquire(p)?;
        self.touched.insert(p);
        self.writes.insert(key, Bytes::new());
        Ok(())
    }

    /// Reads a big-endian u64 counter.
    pub fn read_u64(&mut self, key: &[u8]) -> Result<Option<u64>, TxnError> {
        Ok(self
            .read(key)?
            .and_then(|v| v.as_ref().try_into().ok().map(u64::from_be_bytes)))
    }

    /// Writes a big-endian u64 counter.
    pub fn write_u64(&mut self, key: Bytes, value: u64) -> Result<(), TxnError> {
        self.write(key, Bytes::copy_from_slice(&value.to_be_bytes()))
    }

    /// True if the transaction has buffered any writes.
    pub fn is_writing(&self) -> bool {
        !self.writes.is_empty()
    }

    /// Acquires the 2PL lock on partition `p` using wound-wait.
    fn acquire(&mut self, p: PartitionId) -> Result<(), TxnError> {
        if self.held.contains(&p) {
            return Ok(());
        }
        if self.record.wounded.load(Ordering::SeqCst) {
            self.rollback();
            return Err(TxnError::Wounded);
        }
        let part = self.store.part(p);
        let mut st = part.state.lock();
        loop {
            match &st.owner {
                None => {
                    st.owner = Some(Arc::clone(&self.record));
                    drop(st);
                    self.held.push(p);
                    return Ok(());
                }
                Some(owner) if Arc::ptr_eq(owner, &self.record) => {
                    // Defensive: `held` should have caught this.
                    drop(st);
                    self.held.push(p);
                    return Ok(());
                }
                Some(owner) => {
                    if self.record.ts < owner.ts {
                        // Wound the younger holder. It notices at its next
                        // state access; if it sleeps on some partition we
                        // nudge that condvar. The nudge may race with the
                        // victim entering its wait, so waits below are timed
                        // as a backstop against the lost-wakeup window.
                        owner.wounded.store(true, Ordering::SeqCst);
                        let w = owner.waiting_on.load(Ordering::SeqCst);
                        if w != NOT_WAITING && w != p as usize {
                            self.store.part(w as PartitionId).cv.notify_all();
                        }
                    }
                    // Wait (timed) for the lock to free, then re-check.
                    self.record.waiting_on.store(p as usize, Ordering::SeqCst);
                    if self.record.wounded.load(Ordering::SeqCst) {
                        self.record.waiting_on.store(NOT_WAITING, Ordering::SeqCst);
                        drop(st);
                        self.rollback();
                        return Err(TxnError::Wounded);
                    }
                    let _ = part.cv.wait_for(&mut st, Duration::from_micros(200));
                    self.record.waiting_on.store(NOT_WAITING, Ordering::SeqCst);
                    if self.record.wounded.load(Ordering::SeqCst) {
                        drop(st);
                        self.rollback();
                        return Err(TxnError::Wounded);
                    }
                }
            }
        }
    }

    /// Commits the transaction: applies buffered writes, stamps the
    /// dependency vector with pre-increment partition sequence numbers, and
    /// releases all locks.
    ///
    /// Commit never fails: once the body has finished we hold every lock we
    /// need, so even a wounded transaction can complete — wounding only
    /// matters while it might still block an older transaction's acquire.
    pub(crate) fn commit(mut self) -> Option<TxnLog> {
        if self.writes.is_empty() {
            self.release_all();
            return None;
        }
        let mut deps = Vec::with_capacity(self.touched.len());
        let mut writes = Vec::with_capacity(self.writes.len());
        // Group writes by partition so each internal mutex is taken once.
        let mut by_part: BTreeMap<PartitionId, Vec<(&Bytes, &Bytes)>> = BTreeMap::new();
        for (k, v) in &self.writes {
            by_part
                .entry(self.store.partition_of(k))
                .or_default()
                .push((k, v));
        }
        for &p in &self.touched {
            let mut st = self.store.part(p).state.lock();
            deps.push((p, st.seq));
            st.seq += 1;
            if let Some(kvs) = by_part.get(&p) {
                for (k, v) in kvs {
                    if v.is_empty() {
                        st.map.remove(*k);
                    } else {
                        st.map.insert((*k).clone(), (*v).clone());
                    }
                    writes.push(StateWrite {
                        key: (*k).clone(),
                        value: (*v).clone(),
                        partition: p,
                    });
                }
            }
        }
        self.release_all();
        let deps = DepVector::from_entries(deps).expect("touched set has unique partitions");
        Some(TxnLog { deps, writes })
    }

    /// Aborts the transaction: drops buffered writes and releases all locks.
    pub(crate) fn rollback(&mut self) {
        self.writes.clear();
        self.touched.clear();
        self.release_all();
    }

    fn release_all(&mut self) {
        for p in self.held.drain(..) {
            let part = self.store.part(p);
            let mut st = part.state.lock();
            debug_assert!(st
                .owner
                .as_ref()
                .is_some_and(|o| Arc::ptr_eq(o, &self.record)));
            st.owner = None;
            drop(st);
            part.cv.notify_all();
        }
    }
}

impl Drop for Txn<'_> {
    fn drop(&mut self) {
        // Safety net: a body that early-returns via `?` leaves the txn to be
        // rolled back by `StateStore::transaction`; make sure locks never
        // leak even on panic.
        if !self.held.is_empty() {
            self.release_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;
    use std::thread;

    #[test]
    fn concurrent_increments_never_lose_updates() {
        let store = Arc::new(StateStore::new(4));
        let key = Bytes::from_static(b"shared");
        let threads = 4;
        let per_thread = 500;
        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let store = Arc::clone(&store);
                let key = key.clone();
                let barrier = Arc::clone(&barrier);
                thread::spawn(move || {
                    barrier.wait();
                    for _ in 0..per_thread {
                        store.transaction(|txn| {
                            let c = txn.read_u64(&key)?.unwrap_or(0);
                            txn.write_u64(key.clone(), c + 1)?;
                            Ok(())
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.peek_u64(&key), Some((threads * per_thread) as u64));
    }

    #[test]
    fn cross_partition_transfers_conserve_total() {
        // Two keys in (very likely) different partitions; concurrent
        // transfers in both directions must never create or destroy value.
        let store = Arc::new(StateStore::new(16));
        let ka = Bytes::from_static(b"account:a");
        let kb = Bytes::from_static(b"account:b");
        store.transaction(|txn| {
            txn.write_u64(ka.clone(), 1000)?;
            txn.write_u64(kb.clone(), 1000)?;
            Ok(())
        });
        let threads = 4;
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let store = Arc::clone(&store);
                let (from, to) = if i % 2 == 0 {
                    (ka.clone(), kb.clone())
                } else {
                    (kb.clone(), ka.clone())
                };
                thread::spawn(move || {
                    for _ in 0..200 {
                        store.transaction(|txn| {
                            let f = txn.read_u64(&from)?.unwrap_or(0);
                            let t = txn.read_u64(&to)?.unwrap_or(0);
                            if f > 0 {
                                txn.write_u64(from.clone(), f - 1)?;
                                txn.write_u64(to.clone(), t + 1)?;
                            }
                            Ok(())
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = store.peek_u64(&ka).unwrap() + store.peek_u64(&kb).unwrap();
        assert_eq!(total, 2000, "lock ordering lost or duplicated value");
    }

    #[test]
    fn opposite_lock_orders_resolve_via_wound_wait() {
        // Classic deadlock shape: txn X locks a then b, txn Y locks b then a.
        // Wound-wait must resolve it without hanging.
        let store = Arc::new(StateStore::new(2));
        // Find two keys in different partitions.
        let (ka, kb) = two_keys_in_distinct_partitions(&store);
        let barrier = Arc::new(Barrier::new(2));
        let mk = |first: Bytes, second: Bytes| {
            let store = Arc::clone(&store);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                for _ in 0..100 {
                    barrier.wait();
                    store.transaction(|txn| {
                        let a = txn.read_u64(&first)?.unwrap_or(0);
                        let b = txn.read_u64(&second)?.unwrap_or(0);
                        txn.write_u64(first.clone(), a + 1)?;
                        txn.write_u64(second.clone(), b + 1)?;
                        Ok(())
                    });
                }
            })
        };
        let h1 = mk(ka.clone(), kb.clone());
        let h2 = mk(kb.clone(), ka.clone());
        h1.join().unwrap();
        h2.join().unwrap();
        assert_eq!(store.peek_u64(&ka), Some(200));
        assert_eq!(store.peek_u64(&kb), Some(200));
        let (commits, _, _) = store.stats.snapshot();
        assert_eq!(commits, 200);
    }

    fn two_keys_in_distinct_partitions(store: &StateStore) -> (Bytes, Bytes) {
        let base = Bytes::from_static(b"k0");
        let p0 = store.partition_of(&base);
        for i in 1..100 {
            let k = Bytes::from(format!("k{i}"));
            if store.partition_of(&k) != p0 {
                return (base, k);
            }
        }
        panic!("could not find keys in distinct partitions");
    }

    #[test]
    fn panicking_transaction_releases_its_locks() {
        // A middlebox bug must not wedge the partition locks: the Txn Drop
        // releases everything on unwind.
        let store = Arc::new(StateStore::new(4));
        let key = Bytes::from_static(b"poisoned?");
        let s2 = Arc::clone(&store);
        let k2 = key.clone();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            s2.transaction(|txn| {
                txn.write_u64(k2.clone(), 1)?;
                panic!("middlebox bug");
                #[allow(unreachable_code)]
                Ok(())
            })
        }));
        assert!(result.is_err(), "the panic propagates");
        // The store is still usable and the aborted write never landed.
        let out = store.transaction(|txn| {
            let v = txn.read_u64(&key)?;
            txn.write_u64(key.clone(), 7)?;
            Ok(v)
        });
        assert_eq!(out.value, None, "panicked txn must not commit");
        assert_eq!(store.peek_u64(&key), Some(7));
    }

    #[test]
    fn wounded_stat_is_tracked_under_contention() {
        let store = Arc::new(StateStore::new(1)); // single partition: max contention
        let key = Bytes::from_static(b"hot");
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let store = Arc::clone(&store);
                let key = key.clone();
                thread::spawn(move || {
                    for _ in 0..200 {
                        store.transaction(|txn| {
                            let c = txn.read_u64(&key)?.unwrap_or(0);
                            txn.write_u64(key.clone(), c + 1)?;
                            Ok(())
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.peek_u64(&key), Some(800));
        // With a single partition there is no deadlock, so aborts may be 0;
        // the point is the counter stays consistent under heavy contention.
        let (commits, _wounds, _) = store.stats.snapshot();
        assert_eq!(commits, 800);
    }
}
