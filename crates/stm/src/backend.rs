//! The pluggable state-engine abstraction.
//!
//! FTC's transactional packet processing (paper §4.2–§4.3) fixes *what* a
//! state engine must provide — serializable packet transactions, piggyback
//! logs with pre-increment dependency vectors, per-partition sequence
//! accounting, snapshot/export state transfer, and the audit tap — but not
//! *how* transactions are executed. [`StateBackend`] captures that contract
//! as an object-safe trait so a chain can select its concurrency-control
//! engine per deployment:
//!
//! * [`EngineKind::TwoPl`] — the original strict-2PL/wound-wait
//!   [`StateStore`](crate::StateStore) (pessimistic, lock-per-partition).
//! * [`EngineKind::Batched`] — the epoch-batched optimistic
//!   [`BatchedStore`](crate::BatchedStore) (lock-free execution, group
//!   validation per epoch; see [`crate::batched`]).
//!
//! Both engines must be *observationally identical* above this trait: the
//! same committed transaction produces the same [`TxnLog`] shape, bumps the
//! same partition sequence numbers, snapshots to the same
//! [`StoreSnapshot`] layout, and exports byte-identical
//! [`PartitionExport`] frames. The `ftc-audit` differential proptest and
//! the cross-backend export round-trip test pin this equivalence.

use crate::migrate::PartitionExport;
use crate::store::{PartitionId, StateStore, StoreSnapshot};
use crate::txn::{Txn, TxnError, TxnLog, TxnOutput};
use crate::{partition_of, DepVector, HistorySink, StateWrite};
use bytes::Bytes;
use std::sync::Arc;

/// One in-flight transaction, engine-agnostic.
///
/// Middleboxes program against this trait (`ftc-mbox`'s
/// `Middlebox::process` receives `&mut dyn StateTxn`), so the same
/// middlebox runs unchanged over the 2PL engine (where accesses take
/// partition locks) and the batched engine (where accesses record an
/// optimistic footprint).
///
/// Error contract: an access returns [`TxnError::Wounded`] when the engine
/// needs the transaction to abort *now*; the owning backend re-executes
/// the body transparently. Bodies must therefore be idempotent with
/// respect to non-state side effects, exactly as
/// [`StateStore::transaction`] already documents.
pub trait StateTxn {
    /// Reads a state variable.
    fn read(&mut self, key: &[u8]) -> Result<Option<Bytes>, TxnError>;

    /// Writes a state variable (buffered until commit). Values must be
    /// non-empty; empty values encode deletions on the wire.
    fn write(&mut self, key: Bytes, value: Bytes) -> Result<(), TxnError>;

    /// Deletes a state variable (replicated as an empty-value write).
    fn delete(&mut self, key: Bytes) -> Result<(), TxnError>;

    /// True if the transaction has buffered any writes.
    fn is_writing(&self) -> bool;

    /// Reads a big-endian u64 counter.
    fn read_u64(&mut self, key: &[u8]) -> Result<Option<u64>, TxnError> {
        Ok(self
            .read(key)?
            .and_then(|v| v.as_ref().try_into().ok().map(u64::from_be_bytes)))
    }

    /// Writes a big-endian u64 counter.
    fn write_u64(&mut self, key: Bytes, value: u64) -> Result<(), TxnError> {
        self.write(key, Bytes::copy_from_slice(&value.to_be_bytes()))
    }
}

impl StateTxn for Txn<'_> {
    fn read(&mut self, key: &[u8]) -> Result<Option<Bytes>, TxnError> {
        Txn::read(self, key)
    }

    fn write(&mut self, key: Bytes, value: Bytes) -> Result<(), TxnError> {
        Txn::write(self, key, value)
    }

    fn delete(&mut self, key: Bytes) -> Result<(), TxnError> {
        Txn::delete(self, key)
    }

    fn is_writing(&self) -> bool {
        Txn::is_writing(self)
    }
}

/// A partitioned, transactional state engine.
///
/// Object-safe: replicas hold `Arc<dyn StateBackend>` and the whole
/// protocol layer (hot path, replication apply, recovery snapshot,
/// migration export) is engine-agnostic. The contract every
/// implementation must honor (checked by the audit machinery, documented
/// in DESIGN.md §13):
///
/// * **Commit point.** [`Self::transaction_dyn`] runs the body (possibly
///   several times) and returns only after the final attempt's effects are
///   durably visible to subsequent transactions. A writing commit bumps
///   the sequence number of *every touched partition* (reads included) and
///   yields a [`TxnLog`] whose dependency vector holds the pre-increment
///   sequence numbers; read-only commits bump nothing and yield no log.
/// * **Apply mirror.** [`Self::apply_writes`] must be exactly the
///   replica-side mirror of a head commit: same map mutations, same
///   sequence bumps.
/// * **Tap obligations.** With a recorder attached, every committed
///   writing transaction reports [`HistorySink::on_commit`] exactly once
///   (after its effects are visible) and every applied log reports
///   [`HistorySink::on_apply`] exactly once.
/// * **Export invariants.** [`Self::export_partition`] captures map and
///   sequence number atomically, key-sorted, so equal state exports
///   byte-identically regardless of engine; imports replace (idempotent).
pub trait StateBackend: Send + Sync + std::fmt::Debug {
    /// Which engine this backend implements.
    fn engine(&self) -> EngineKind;

    /// Number of partitions.
    fn partitions(&self) -> usize;

    /// The partition a key maps to (identical on every replica and every
    /// engine: dependency vectors must be portable).
    fn partition_of(&self, key: &[u8]) -> PartitionId {
        partition_of(key, self.partitions())
    }

    /// Runs `body` as a packet transaction, retrying transparently on
    /// engine-internal aborts (wound-wait wounds, failed optimistic
    /// validation). Returns the piggyback log if the transaction wrote.
    ///
    /// This is the object-safe spelling; use
    /// [`StateBackendExt::transaction`] to also get a typed return value.
    fn transaction_dyn(
        &self,
        body: &mut dyn FnMut(&mut dyn StateTxn) -> Result<(), TxnError>,
    ) -> Option<TxnLog>;

    /// Applies replicated writes from a piggyback log, incrementing the
    /// sequence numbers of the partitions in `deps`.
    fn apply_writes(&self, deps: &DepVector, writes: &[StateWrite]);

    /// Non-transactional read of a single key (test/inspection helper).
    fn peek(&self, key: &[u8]) -> Option<Bytes>;

    /// Non-transactional read of a u64 counter stored at `key`.
    fn peek_u64(&self, key: &[u8]) -> Option<u64> {
        self.peek(key)
            .and_then(|v| v.as_ref().try_into().ok().map(u64::from_be_bytes))
    }

    /// The current per-partition sequence vector.
    fn seq_vector(&self) -> Vec<u64>;

    /// Deep-copies the store for recovery state transfer.
    fn snapshot(&self) -> StoreSnapshot;

    /// Replaces the store contents from a snapshot (recovery restore).
    fn restore(&self, snap: &StoreSnapshot);

    /// Restores only the per-partition sequence numbers (paper §5.2).
    fn restore_seqs(&self, seqs: &[u64]);

    /// Exports one partition in transfer form (key-sorted entries, map and
    /// sequence number captured atomically).
    fn export_partition(&self, p: PartitionId) -> PartitionExport;

    /// Replaces one partition's contents from a transfer export
    /// (idempotent: map and sequence number are replaced, not merged).
    fn import_partition(&self, ex: &PartitionExport);

    /// Drops one partition's contents (release phase at a migration
    /// source).
    fn clear_partition(&self, p: PartitionId);

    /// The sequence number of one partition.
    fn partition_seq(&self, p: PartitionId) -> u64;

    /// Total number of keys across partitions.
    fn len(&self) -> usize;

    /// True if no partition holds any key.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attaches an audit sink observing every committed writing
    /// transaction and every applied log. Replaces any previous sink.
    fn set_recorder(&self, sink: Arc<dyn HistorySink>);

    /// Detaches the audit sink, if any.
    fn clear_recorder(&self);

    /// Counter snapshot `(commits, aborts, applied_logs)`. "Aborts" are
    /// wound-wait aborts for the 2PL engine and failed optimistic
    /// validations for the batched engine — either way, transparently
    /// re-executed attempts.
    fn stats_snapshot(&self) -> (u64, u64, u64);
}

/// Typed-result convenience over [`StateBackend::transaction_dyn`],
/// blanket-implemented for every backend (including `dyn StateBackend`).
pub trait StateBackendExt: StateBackend {
    /// Runs `body` as a packet transaction and returns its typed result
    /// plus the piggyback log, mirroring [`StateStore::transaction`].
    fn transaction<T>(
        &self,
        mut body: impl FnMut(&mut dyn StateTxn) -> Result<T, TxnError>,
    ) -> TxnOutput<T> {
        let mut slot: Option<T> = None;
        let log = self.transaction_dyn(&mut |txn| {
            slot = Some(body(txn)?);
            Ok(())
        });
        TxnOutput {
            value: slot.expect("transaction_dyn must run the body to completion"),
            log,
        }
    }
}

impl<B: StateBackend + ?Sized> StateBackendExt for B {}

impl StateBackend for StateStore {
    fn engine(&self) -> EngineKind {
        EngineKind::TwoPl
    }

    fn partitions(&self) -> usize {
        StateStore::partitions(self)
    }

    fn transaction_dyn(
        &self,
        body: &mut dyn FnMut(&mut dyn StateTxn) -> Result<(), TxnError>,
    ) -> Option<TxnLog> {
        StateStore::transaction(self, |txn| body(txn)).log
    }

    fn apply_writes(&self, deps: &DepVector, writes: &[StateWrite]) {
        StateStore::apply_writes(self, deps, writes)
    }

    fn peek(&self, key: &[u8]) -> Option<Bytes> {
        StateStore::peek(self, key)
    }

    fn seq_vector(&self) -> Vec<u64> {
        StateStore::seq_vector(self)
    }

    fn snapshot(&self) -> StoreSnapshot {
        StateStore::snapshot(self)
    }

    fn restore(&self, snap: &StoreSnapshot) {
        StateStore::restore(self, snap)
    }

    fn restore_seqs(&self, seqs: &[u64]) {
        StateStore::restore_seqs(self, seqs)
    }

    fn export_partition(&self, p: PartitionId) -> PartitionExport {
        StateStore::export_partition(self, p)
    }

    fn import_partition(&self, ex: &PartitionExport) {
        StateStore::import_partition(self, ex)
    }

    fn clear_partition(&self, p: PartitionId) {
        StateStore::clear_partition(self, p)
    }

    fn partition_seq(&self, p: PartitionId) -> u64 {
        StateStore::partition_seq(self, p)
    }

    fn len(&self) -> usize {
        StateStore::len(self)
    }

    fn set_recorder(&self, sink: Arc<dyn HistorySink>) {
        StateStore::set_recorder(self, sink)
    }

    fn clear_recorder(&self) {
        StateStore::clear_recorder(self)
    }

    fn stats_snapshot(&self) -> (u64, u64, u64) {
        self.stats.snapshot()
    }
}

/// The state engines a chain can deploy with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineKind {
    /// Strict two-phase locking with wound-wait deadlock resolution — the
    /// paper's §4.2 design, implemented by [`StateStore`].
    #[default]
    TwoPl,
    /// Epoch-batched optimistic execution — lock-free bodies, per-epoch
    /// conflict-graph validation, abort-and-requeue on conflicts —
    /// implemented by [`BatchedStore`](crate::BatchedStore).
    Batched,
}

impl EngineKind {
    /// Every known engine, in canonical order (bench sweeps iterate this).
    pub const ALL: [EngineKind; 2] = [EngineKind::TwoPl, EngineKind::Batched];

    /// The canonical lowercase name (`twopl` / `batched`), as accepted by
    /// `FromStr`, `ftc bench --engine`, and spec files.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::TwoPl => "twopl",
            EngineKind::Batched => "batched",
        }
    }

    /// Builds a backend of this kind with `partitions` partitions.
    pub fn build(self, partitions: usize) -> Arc<dyn StateBackend> {
        match self {
            EngineKind::TwoPl => Arc::new(StateStore::new(partitions)),
            EngineKind::Batched => Arc::new(crate::BatchedStore::new(partitions)),
        }
    }

    /// The engine selected by the `FTC_ENGINE` environment variable, if
    /// set. Used by the CI engine matrix to run the whole tier-1 suite on
    /// a non-default engine without touching any test. Panics on an
    /// unknown value — a typo silently falling back to 2PL would void the
    /// matrix run.
    pub fn from_env() -> Option<EngineKind> {
        match std::env::var("FTC_ENGINE") {
            Ok(v) => match v.parse() {
                Ok(kind) => Some(kind),
                Err(UnknownEngine(name)) => {
                    panic!("FTC_ENGINE={name:?} is not a known engine (twopl, batched)")
                }
            },
            Err(_) => None,
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for EngineKind {
    type Err = UnknownEngine;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "twopl" => Ok(EngineKind::TwoPl),
            "batched" => Ok(EngineKind::Batched),
            other => Err(UnknownEngine(other.to_string())),
        }
    }
}

/// Error parsing an engine name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownEngine(pub String);

impl std::fmt::Display for UnknownEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown state engine {:?} (expected one of: twopl, batched)",
            self.0
        )
    }
}

impl std::error::Error for UnknownEngine {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BatchedStore;
    use bytes::Bytes;

    #[test]
    fn engine_names_round_trip() {
        for kind in EngineKind::ALL {
            assert_eq!(kind.name().parse::<EngineKind>(), Ok(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        assert!("TwoPL".parse::<EngineKind>().is_err());
        assert!("".parse::<EngineKind>().is_err());
        assert_eq!(EngineKind::default(), EngineKind::TwoPl);
    }

    #[test]
    fn build_produces_matching_backend() {
        for kind in EngineKind::ALL {
            let b = kind.build(8);
            assert_eq!(b.engine(), kind);
            assert_eq!(b.partitions(), 8);
            assert!(b.is_empty());
        }
    }

    #[test]
    fn dyn_backend_transaction_matches_concrete_store() {
        let concrete = StateStore::new(8);
        let boxed: Arc<dyn StateBackend> = Arc::new(StateStore::new(8));
        let key = Bytes::from_static(b"mon:packets:g0");
        let out_c = concrete.transaction(|txn| {
            let c = txn.read_u64(&key)?.unwrap_or(0);
            txn.write_u64(key.clone(), c + 1)?;
            Ok(c + 1)
        });
        let out_d = boxed.transaction(|txn| {
            let c = txn.read_u64(&key)?.unwrap_or(0);
            txn.write_u64(key.clone(), c + 1)?;
            Ok(c + 1)
        });
        assert_eq!(out_c.value, out_d.value);
        let (lc, ld) = (out_c.log.unwrap(), out_d.log.unwrap());
        assert_eq!(lc.deps, ld.deps);
        assert_eq!(lc.writes, ld.writes);
        assert_eq!(StateStore::seq_vector(&concrete), boxed.seq_vector());
    }

    #[test]
    fn engines_agree_on_partition_mapping() {
        let two: Arc<dyn StateBackend> = Arc::new(StateStore::new(32));
        let bat: Arc<dyn StateBackend> = Arc::new(BatchedStore::new(32));
        for i in 0..200u32 {
            let key = format!("nat:flow:10.0.{}.{}", i / 8, i % 8);
            assert_eq!(
                two.partition_of(key.as_bytes()),
                bat.partition_of(key.as_bytes())
            );
        }
    }
}
