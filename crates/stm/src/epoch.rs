//! The epoch scheduler of the batched optimistic engine.
//!
//! Transactions on a [`BatchedStore`](crate::BatchedStore) execute their
//! bodies without taking any partition lock, then submit a *footprint*
//! (touched partitions with the sequence numbers first observed, plus the
//! buffered write set) to this scheduler. Epoch formation is the classic
//! group-commit shape, with no timers and no sleeps:
//!
//! 1. a submitter appends its footprint to the open epoch's queue;
//! 2. it then contends for the commit lock — the single mutex that
//!    serializes epochs;
//! 3. whoever wins seals the epoch: it takes *everything* queued so far
//!    (its own submission plus any that piled up while the previous epoch
//!    was committing) and validates/commits the batch under the lock;
//! 4. losers acquire the lock after the winner releases it, find either
//!    newly queued work (they commit it — committing is cooperative) or an
//!    empty queue, and in both cases their own verdict slot has been
//!    resolved by the time they hold the lock.
//!
//! Under light load an epoch is a single transaction and the scheduler
//! degenerates to an uncontended mutex pair. Under heavy load, batch size
//! grows automatically with the commit latency of the previous epoch —
//! exactly the backpressure-driven batching TransNFV-style engines rely
//! on — without any grace-period timer that would add latency when idle.

use crate::store::PartitionId;
use crate::txn::TxnLog;
use bytes::Bytes;
use parking_lot::Mutex;
use std::sync::Arc;

/// The footprint a finished optimistic body submits for validation: every
/// partition it touched with the sequence number observed at *first*
/// access, and the buffered writes (key-sorted; empty value = deletion).
#[derive(Debug, Clone)]
pub(crate) struct Footprint {
    /// `(partition, first-observed seq)` in ascending partition order.
    pub versions: Vec<(PartitionId, u64)>,
    /// Buffered writes in key order (empty value = deletion).
    pub writes: Vec<(Bytes, Bytes)>,
}

impl Footprint {
    /// True if the transaction buffered any writes (and will therefore
    /// bump the sequence number of every touched partition on commit).
    pub fn is_writing(&self) -> bool {
        !self.writes.is_empty()
    }

    /// True if committing `earlier` would invalidate or reorder `self`
    /// (and symmetrically): at partition granularity, two transactions
    /// conflict when either writes — i.e. bumps sequence numbers of — a
    /// partition the other touched. Read-read overlap is not a conflict.
    pub fn conflicts_with(&self, other: &Footprint) -> bool {
        let hits = |a: &Footprint, b: &Footprint| {
            a.is_writing()
                && a.versions
                    .iter()
                    .any(|(p, _)| b.versions.binary_search_by_key(p, |&(q, _)| q).is_ok())
        };
        hits(self, other) || hits(other, self)
    }
}

/// The verdict the epoch committer leaves for a submitter.
#[derive(Debug)]
pub(crate) enum Verdict {
    /// Validated and committed; the piggyback log (None for read-only).
    Committed(Option<TxnLog>),
    /// Invalidated by a conflict — re-execute the body and resubmit.
    Requeue,
}

/// One submitter's result slot. Filled exactly once, by whichever thread
/// commits the epoch containing the submission; read by the submitter
/// after its own commit-lock round (by which point it is always filled —
/// see the module docs for why).
#[derive(Debug, Default)]
pub(crate) struct VerdictSlot(Mutex<Option<Verdict>>);

impl VerdictSlot {
    /// Deposits the verdict (committer side).
    pub fn fill(&self, v: Verdict) {
        let mut slot = self.0.lock();
        debug_assert!(slot.is_none(), "a verdict slot is filled exactly once");
        *slot = Some(v);
    }

    /// Takes the verdict (submitter side).
    pub fn take(&self) -> Option<Verdict> {
        self.0.lock().take()
    }
}

/// One queued transaction awaiting epoch validation.
#[derive(Debug)]
pub(crate) struct Submission {
    pub footprint: Footprint,
    pub slot: Arc<VerdictSlot>,
}

/// Epoch state: the open submission queue and the commit lock that
/// serializes epochs. Lock ordering is `commit` → partition mutexes; the
/// queue mutex never nests inside either.
#[derive(Debug, Default)]
pub(crate) struct EpochScheduler {
    /// Submissions of the open epoch; taken wholesale by the next
    /// committer.
    queue: Mutex<Vec<Submission>>,
    /// Held for the duration of one epoch's validate+commit. Also taken by
    /// every seq-mutating maintenance path (apply/restore/import) so epoch
    /// validation races with nothing.
    commit: Mutex<EpochCounter>,
}

/// What the commit lock guards: the epoch counter (diagnostics only — the
/// lock itself provides the ordering).
#[derive(Debug, Default)]
pub(crate) struct EpochCounter {
    pub sealed: u64,
}

impl EpochScheduler {
    /// Appends a submission to the open epoch.
    pub fn enqueue(&self, sub: Submission) {
        self.queue.lock().push(sub);
    }

    /// Acquires the commit lock and seals the open epoch: returns the
    /// batch to validate (possibly empty, if a previous holder already
    /// committed everything) together with the lock guard the caller must
    /// hold while committing.
    pub fn seal(&self) -> (parking_lot::MutexGuard<'_, EpochCounter>, Vec<Submission>) {
        let mut guard = self.commit.lock();
        let batch = std::mem::take(&mut *self.queue.lock());
        if !batch.is_empty() {
            guard.sealed += 1;
        }
        (guard, batch)
    }

    /// Acquires the commit lock *without* sealing the queue — the
    /// maintenance paths (apply_writes, restore, import) use this to
    /// mutate sequence numbers atomically with respect to epochs.
    pub fn pause(&self) -> parking_lot::MutexGuard<'_, EpochCounter> {
        self.commit.lock()
    }

    /// Number of epochs sealed so far (diagnostics).
    pub fn sealed_epochs(&self) -> u64 {
        self.commit.lock().sealed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(versions: &[(u16, u64)], writing: bool) -> Footprint {
        Footprint {
            versions: versions.to_vec(),
            writes: if writing {
                vec![(Bytes::from_static(b"k"), Bytes::from_static(b"v"))]
            } else {
                Vec::new()
            },
        }
    }

    #[test]
    fn read_read_overlap_is_not_a_conflict() {
        let a = fp(&[(1, 0), (2, 0)], false);
        let b = fp(&[(2, 0), (3, 0)], false);
        assert!(!a.conflicts_with(&b));
        assert!(!b.conflicts_with(&a));
    }

    #[test]
    fn writer_conflicts_with_overlapping_reader_and_writer() {
        let w = fp(&[(2, 0)], true);
        let r = fp(&[(2, 0)], false);
        let w2 = fp(&[(2, 5)], true);
        let disjoint = fp(&[(7, 0)], true);
        assert!(w.conflicts_with(&r), "write-read on one partition");
        assert!(r.conflicts_with(&w), "conflict is symmetric");
        assert!(w.conflicts_with(&w2), "write-write on one partition");
        assert!(!w.conflicts_with(&disjoint), "disjoint writers commute");
    }

    #[test]
    fn seal_takes_the_whole_queue_once() {
        let sched = EpochScheduler::default();
        for _ in 0..3 {
            sched.enqueue(Submission {
                footprint: fp(&[(0, 0)], true),
                slot: Arc::new(VerdictSlot::default()),
            });
        }
        let (guard, batch) = sched.seal();
        assert_eq!(batch.len(), 3);
        drop(guard);
        let (guard, batch) = sched.seal();
        assert!(batch.is_empty(), "queue drained; empty seals don't count");
        drop(guard);
        assert_eq!(sched.sealed_epochs(), 1);
    }

    #[test]
    fn verdict_slot_round_trips() {
        let slot = VerdictSlot::default();
        assert!(slot.take().is_none());
        slot.fill(Verdict::Requeue);
        assert!(matches!(slot.take(), Some(Verdict::Requeue)));
        assert!(slot.take().is_none(), "take consumes");
    }
}
