//! Replica-side apply bookkeeping: the `MAX` dependency vector and the
//! parking lot for out-of-order piggyback logs (paper §4.3, Fig. 3).

use crate::{Applicability, DepVector, SeqNo, StateBackend, StateWrite};
use parking_lot::Mutex;

/// A log parked at a replica because one of its dependencies has not been
/// applied yet.
#[derive(Debug, Clone)]
struct ParkedLog {
    deps: DepVector,
    writes: Vec<StateWrite>,
}

/// Detailed outcome of [`MaxVector::try_apply_detailed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TryApply {
    /// Applied; `new_max` holds the post-apply counter of every touched
    /// partition (wake key material).
    Applied {
        /// `(partition, new counter)` pairs.
        new_max: Vec<(u16, SeqNo)>,
    },
    /// A dependency is missing: the log becomes applicable once the
    /// partition's counter reaches `need`.
    Blocked {
        /// The first blocking partition.
        partition: u16,
        /// The counter value that unblocks it.
        need: SeqNo,
    },
    /// Duplicate of an already-applied log.
    Stale,
}

/// Result of offering a piggyback log to a [`MaxVector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ApplyOutcome {
    /// Logs applied by this call (the offered log plus any unparked ones).
    pub applied: usize,
    /// The offered log was parked awaiting earlier logs.
    pub parked: bool,
    /// The offered log was a duplicate of an already-applied log.
    pub stale: bool,
}

struct MaxInner {
    max: Vec<SeqNo>,
    parked: Vec<ParkedLog>,
}

/// A replica's `MAX` dependency vector for one replicated middlebox: tracks
/// the latest piggyback log applied in (partial) order and parks logs that
/// arrive early.
///
/// ```
/// use ftc_stm::{MaxVector, StateStore};
/// use bytes::Bytes;
///
/// let head = StateStore::new(8);
/// let mk = |v: &'static str| {
///     head.transaction(|txn| {
///         txn.write(Bytes::from_static(b"k"), Bytes::from_static(v.as_bytes()))?;
///         Ok(())
///     })
///     .log
///     .unwrap()
/// };
/// let (first, second) = (mk("1"), mk("2"));
///
/// // The replica receives them out of order; the MAX vector parks the
/// // early one and applies both once the gap fills (paper Fig. 3).
/// let replica = StateStore::new(8);
/// let max = MaxVector::new(8);
/// assert_eq!(max.offer(&second.deps, &second.writes, &replica).applied, 0);
/// assert_eq!(max.offer(&first.deps, &first.writes, &replica).applied, 2);
/// assert_eq!(replica.peek(b"k"), Some(Bytes::from_static(b"2")));
/// ```
pub struct MaxVector {
    inner: Mutex<MaxInner>,
}

impl MaxVector {
    /// Creates a `MAX` vector for a store with `partitions` partitions.
    pub fn new(partitions: usize) -> Self {
        MaxVector {
            inner: Mutex::new(MaxInner {
                max: vec![0; partitions],
                parked: Vec::new(),
            }),
        }
    }

    /// Applies the log if its dependencies are satisfied, without parking it
    /// otherwise. Used by replicas that park the *whole packet* (with its
    /// remaining pipeline) instead of individual logs.
    pub fn try_apply(
        &self,
        deps: &DepVector,
        writes: &[StateWrite],
        store: &dyn StateBackend,
    ) -> Applicability {
        let mut inner = self.inner.lock();
        let verdict = deps.applicable_at(&inner.max);
        if verdict == Applicability::Ready {
            Self::apply(&mut inner, deps, writes, store);
        }
        verdict
    }

    /// Like [`MaxVector::try_apply`] but reports *which* dependency blocks
    /// and, on success, the new per-partition counters — the information a
    /// replica's indexed parking lot needs for O(1) wakeups.
    pub fn try_apply_detailed(
        &self,
        deps: &DepVector,
        writes: &[StateWrite],
        store: &dyn StateBackend,
    ) -> TryApply {
        let mut inner = self.inner.lock();
        match deps.applicable_at(&inner.max) {
            Applicability::Ready => {
                Self::apply(&mut inner, deps, writes, store);
                let new_max = deps
                    .entries()
                    .iter()
                    .map(|&(p, _)| (p, inner.max[p as usize]))
                    .collect();
                TryApply::Applied { new_max }
            }
            Applicability::Stale => TryApply::Stale,
            Applicability::NotYet => {
                let &(p, seq) = deps
                    .entries()
                    .iter()
                    .find(|&&(p, seq)| inner.max.get(p as usize).copied().unwrap_or(0) < seq)
                    .expect("NotYet implies a blocking entry");
                TryApply::Blocked {
                    partition: p,
                    need: seq,
                }
            }
        }
    }

    /// Offers one piggyback log for application to `store`.
    ///
    /// Applies it (and any parked logs it unblocks) if its dependency vector
    /// is satisfied; parks it if some dependency is missing; drops it if it
    /// is a duplicate.
    pub fn offer(
        &self,
        deps: &DepVector,
        writes: &[StateWrite],
        store: &dyn StateBackend,
    ) -> ApplyOutcome {
        let mut inner = self.inner.lock();
        match deps.applicable_at(&inner.max) {
            Applicability::Ready => {
                Self::apply(&mut inner, deps, writes, store);
                let drained = Self::drain_parked(&mut inner, store);
                ApplyOutcome {
                    applied: 1 + drained,
                    parked: false,
                    stale: false,
                }
            }
            Applicability::NotYet => {
                inner.parked.push(ParkedLog {
                    deps: deps.clone(),
                    writes: writes.to_vec(),
                });
                ApplyOutcome {
                    applied: 0,
                    parked: true,
                    stale: false,
                }
            }
            Applicability::Stale => ApplyOutcome {
                applied: 0,
                parked: false,
                stale: true,
            },
        }
    }

    fn apply(
        inner: &mut MaxInner,
        deps: &DepVector,
        writes: &[StateWrite],
        store: &dyn StateBackend,
    ) {
        store.apply_writes(deps, writes);
        for &(p, _) in deps.entries() {
            let slot = &mut inner.max[p as usize];
            *slot += 1;
        }
    }

    /// Re-scans parked logs until a fixpoint; returns how many were applied.
    fn drain_parked(inner: &mut MaxInner, store: &dyn StateBackend) -> usize {
        let mut applied = 0;
        loop {
            let mut progressed = false;
            let mut i = 0;
            while i < inner.parked.len() {
                match inner.parked[i].deps.applicable_at(&inner.max) {
                    Applicability::Ready => {
                        let log = inner.parked.swap_remove(i);
                        Self::apply(inner, &log.deps, &log.writes, store);
                        applied += 1;
                        progressed = true;
                    }
                    Applicability::Stale => {
                        inner.parked.swap_remove(i);
                        progressed = true;
                    }
                    Applicability::NotYet => i += 1,
                }
            }
            if !progressed {
                return applied;
            }
        }
    }

    /// The current `MAX` vector (used as a commit vector by tails and during
    /// recovery state transfer).
    pub fn vector(&self) -> Vec<SeqNo> {
        self.inner.lock().max.clone()
    }

    /// Number of logs currently parked.
    pub fn parked_len(&self) -> usize {
        self.inner.lock().parked.len()
    }

    /// Discards parked (out-of-order) logs — done by a recovery *source*
    /// replica so the log propagation invariant holds (paper §4.1: "the
    /// replica that is the source for state recovery discards any
    /// out-of-order packets that have not been applied to its state store").
    pub fn discard_parked(&self) {
        self.inner.lock().parked.clear();
    }

    /// Overwrites the vector from a recovery transfer.
    pub fn restore(&self, max: Vec<SeqNo>) {
        let mut inner = self.inner.lock();
        assert_eq!(max.len(), inner.max.len(), "partition count mismatch");
        inner.max = max;
        inner.parked.clear();
    }
}

impl std::fmt::Debug for MaxVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("MaxVector")
            .field("max", &inner.max)
            .field("parked", &inner.parked.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{StateBackendExt, StateStore};
    use bytes::Bytes;

    fn log(
        store: &dyn StateBackend,
        k: &'static str,
        v: &'static str,
    ) -> (DepVector, Vec<StateWrite>) {
        let out = store.transaction(|txn| {
            txn.write(
                Bytes::from_static(k.as_bytes()),
                Bytes::from_static(v.as_bytes()),
            )?;
            Ok(())
        });
        let l = out.log.unwrap();
        (l.deps, l.writes)
    }

    #[test]
    fn in_order_application() {
        let head = StateStore::new(8);
        let replica = StateStore::new(8);
        let max = MaxVector::new(8);
        let (d1, w1) = log(&head, "a", "1");
        let (d2, w2) = log(&head, "a", "2");
        assert_eq!(max.offer(&d1, &w1, &replica).applied, 1);
        assert_eq!(max.offer(&d2, &w2, &replica).applied, 1);
        assert_eq!(replica.peek(b"a"), Some(Bytes::from_static(b"2")));
        assert_eq!(max.vector(), head.seq_vector());
    }

    #[test]
    fn out_of_order_parks_then_applies() {
        let head = StateStore::new(8);
        let replica = StateStore::new(8);
        let max = MaxVector::new(8);
        let (d1, w1) = log(&head, "a", "1");
        let (d2, w2) = log(&head, "a", "2");
        // Deliver the second log first: parked, store untouched.
        let o = max.offer(&d2, &w2, &replica);
        assert!(o.parked);
        assert_eq!(replica.peek(b"a"), None);
        assert_eq!(max.parked_len(), 1);
        // First log unblocks both.
        let o = max.offer(&d1, &w1, &replica);
        assert_eq!(o.applied, 2);
        assert_eq!(replica.peek(b"a"), Some(Bytes::from_static(b"2")));
        assert_eq!(max.parked_len(), 0);
    }

    #[test]
    fn duplicates_are_stale() {
        let head = StateStore::new(8);
        let replica = StateStore::new(8);
        let max = MaxVector::new(8);
        let (d1, w1) = log(&head, "a", "1");
        assert_eq!(max.offer(&d1, &w1, &replica).applied, 1);
        let o = max.offer(&d1, &w1, &replica);
        assert!(o.stale);
        assert_eq!(o.applied, 0);
    }

    #[test]
    fn independent_partitions_apply_in_any_order() {
        let head = StateStore::new(32);
        let replica = StateStore::new(32);
        let max = MaxVector::new(32);
        // Find two keys in different partitions so their logs commute.
        let ka = "x1";
        let mut kb = None;
        for i in 0..100 {
            let cand = format!("y{i}");
            if head.partition_of(cand.as_bytes()) != head.partition_of(ka.as_bytes()) {
                kb = Some(cand);
                break;
            }
        }
        let kb = kb.unwrap();
        let (d1, w1) = log(&head, "x1", "1");
        let out = head.transaction(|txn| {
            txn.write(Bytes::from(kb.clone()), Bytes::from_static(b"2"))?;
            Ok(())
        });
        let l2 = out.log.unwrap();
        // Reverse order is fine: disjoint partitions.
        assert_eq!(max.offer(&l2.deps, &l2.writes, &replica).applied, 1);
        assert_eq!(max.offer(&d1, &w1, &replica).applied, 1);
        assert_eq!(max.vector(), head.seq_vector());
    }

    #[test]
    fn restore_and_discard() {
        let max = MaxVector::new(4);
        max.restore(vec![5, 6, 7, 8]);
        assert_eq!(max.vector(), vec![5, 6, 7, 8]);
        max.discard_parked();
        assert_eq!(max.parked_len(), 0);
    }

    #[test]
    #[should_panic(expected = "partition count mismatch")]
    fn restore_rejects_wrong_size() {
        MaxVector::new(4).restore(vec![1, 2]);
    }
}
