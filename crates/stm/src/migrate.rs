//! State-migration primitives: partition export/import and ownership claims.
//!
//! Planned reconfiguration (ROADMAP item 2; `ftc-core::reconfig`) moves the
//! flow partitions of a middlebox between instances with a
//! prepare → transfer → switch-ownership → release handshake. The pieces
//! that belong to the state layer live here:
//!
//! * [`PartitionExport`] — the transfer unit: one partition's key/value map
//!   plus its sequence number, captured atomically under the partition's
//!   internal mutex. Its byte codec is *strict*: any truncated or torn
//!   frame fails to decode rather than yielding a plausible-but-wrong
//!   export (pinned by `proptest_migration_frames`).
//! * [`ClaimTable`] — an instance's *local view* of which partitions it
//!   owns and which are sealed mid-handshake. Each instance has its own
//!   table; the migration invariant I5 ("every flow partition has exactly
//!   one owner at every observable point") is a statement about the union
//!   of these local views, which is exactly what diverges when a
//!   reconfiguration protocol is buggy (e.g. the release phase is skipped
//!   and the source un-seals itself on a timeout).

use crate::store::{PartitionId, StateStore};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::sync::atomic::{AtomicBool, Ordering};

/// Identity of one instance of a (possibly scaled-out) middlebox.
pub type InstanceId = u32;

/// One partition's contents in transfer form: the committed key/value map
/// and the partition sequence number at the moment of export.
///
/// Entries are key-sorted so two exports of identical state are
/// byte-identical (hash-map iteration order is not deterministic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionExport {
    /// Global partition index.
    pub partition: PartitionId,
    /// The partition's sequence number (count of committed writing
    /// transactions) at export time — the committed prefix marker that
    /// invariant I6 compares across the transfer.
    pub seq: u64,
    /// Key-sorted `(key, value)` pairs.
    pub entries: Vec<(Bytes, Bytes)>,
}

impl PartitionExport {
    /// Total payload size in bytes (keys + values), for transfer accounting.
    pub fn byte_size(&self) -> usize {
        self.entries
            .iter()
            .map(|(k, v)| k.len() + v.len())
            .sum::<usize>()
            + 8
    }

    /// Serializes the export. Layout (all integers big-endian):
    ///
    /// ```text
    /// [partition: u16][seq: u64][count: u32]
    ///   count x ( [klen: u32][key][vlen: u32][value] )
    /// ```
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(16 + self.byte_size());
        b.put_u16(self.partition);
        b.put_u64(self.seq);
        b.put_u32(self.entries.len() as u32);
        for (k, v) in &self.entries {
            b.put_u32(k.len() as u32);
            b.put_slice(k);
            b.put_u32(v.len() as u32);
            b.put_slice(v);
        }
        b.freeze()
    }

    /// Decodes an export, rejecting truncated, torn, or padded buffers:
    /// a transfer frame either round-trips exactly or errors out.
    pub fn decode(mut b: &[u8]) -> Result<PartitionExport, MigrateCodecError> {
        if b.remaining() < 2 + 8 + 4 {
            return Err(MigrateCodecError::Truncated);
        }
        let partition = b.get_u16();
        let seq = b.get_u64();
        let count = b.get_u32() as usize;
        let mut entries = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            let k = take_chunk(&mut b)?;
            let v = take_chunk(&mut b)?;
            entries.push((k, v));
        }
        if b.has_remaining() {
            return Err(MigrateCodecError::TrailingBytes(b.remaining()));
        }
        Ok(PartitionExport {
            partition,
            seq,
            entries,
        })
    }
}

fn take_chunk(b: &mut &[u8]) -> Result<Bytes, MigrateCodecError> {
    if b.remaining() < 4 {
        return Err(MigrateCodecError::Truncated);
    }
    let len = b.get_u32() as usize;
    if b.remaining() < len {
        return Err(MigrateCodecError::Truncated);
    }
    let out = Bytes::copy_from_slice(&b[..len]);
    b.advance(len);
    Ok(out)
}

/// Why a transfer frame failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrateCodecError {
    /// The buffer ends before the declared contents (torn write or cut
    /// connection mid-frame).
    Truncated,
    /// Bytes remain after the declared contents (frame boundary slipped).
    TrailingBytes(usize),
}

impl std::fmt::Display for MigrateCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrateCodecError::Truncated => write!(f, "transfer frame truncated"),
            MigrateCodecError::TrailingBytes(n) => {
                write!(f, "{n} trailing byte(s) after transfer frame")
            }
        }
    }
}

impl std::error::Error for MigrateCodecError {}

/// An instance's local view of partition ownership during reconfiguration.
///
/// `claimed` means "this instance believes it owns the partition and may
/// process packets against it"; `sealed` means "ownership is mine but a
/// handshake is in progress — refuse processing until released or
/// aborted". A partition is *serviceable* here iff claimed and not sealed.
///
/// The table is deliberately per-instance (not shared): a correct
/// handshake keeps the union of all tables consistent, and the protocol
/// model checker verifies exactly that (invariant I5).
#[derive(Debug)]
pub struct ClaimTable {
    claimed: Vec<AtomicBool>,
    sealed: Vec<AtomicBool>,
}

impl ClaimTable {
    /// A table over `partitions` partitions, all initially claimed
    /// (`claimed = true`, the primary instance) or unclaimed (a fresh
    /// scale-out / replacement instance).
    pub fn new(partitions: usize, claimed: bool) -> ClaimTable {
        ClaimTable {
            claimed: (0..partitions).map(|_| AtomicBool::new(claimed)).collect(),
            sealed: (0..partitions).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// Number of partitions covered.
    pub fn partitions(&self) -> usize {
        self.claimed.len()
    }

    /// True if this instance claims ownership of `p`.
    pub fn is_claimed(&self, p: PartitionId) -> bool {
        self.claimed[p as usize].load(Ordering::SeqCst)
    }

    /// True if `p` is sealed (handshake in progress).
    pub fn is_sealed(&self, p: PartitionId) -> bool {
        self.sealed[p as usize].load(Ordering::SeqCst)
    }

    /// True if this instance may process packets against `p` right now.
    pub fn serviceable(&self, p: PartitionId) -> bool {
        self.is_claimed(p) && !self.is_sealed(p)
    }

    /// Claims ownership of `p` (switch-ownership phase, destination side).
    pub fn claim(&self, p: PartitionId) {
        self.claimed[p as usize].store(true, Ordering::SeqCst);
    }

    /// Drops the claim on `p` (release phase, source side).
    pub fn unclaim(&self, p: PartitionId) {
        self.claimed[p as usize].store(false, Ordering::SeqCst);
    }

    /// Seals `p` for an in-progress handshake.
    pub fn seal(&self, p: PartitionId) {
        self.sealed[p as usize].store(true, Ordering::SeqCst);
    }

    /// Unseals `p` (release at the destination, or abort at the source).
    pub fn unseal(&self, p: PartitionId) {
        self.sealed[p as usize].store(false, Ordering::SeqCst);
    }

    /// Claims every partition.
    pub fn claim_all(&self) {
        for p in &self.claimed {
            p.store(true, Ordering::SeqCst);
        }
    }

    /// Drops every claim.
    pub fn unclaim_all(&self) {
        for p in &self.claimed {
            p.store(false, Ordering::SeqCst);
        }
    }

    /// Seals every partition.
    pub fn seal_all(&self) {
        for p in &self.sealed {
            p.store(true, Ordering::SeqCst);
        }
    }

    /// Unseals every partition.
    pub fn unseal_all(&self) {
        for p in &self.sealed {
            p.store(false, Ordering::SeqCst);
        }
    }

    /// Number of partitions this instance currently claims.
    pub fn claimed_count(&self) -> usize {
        self.claimed
            .iter()
            .filter(|c| c.load(Ordering::SeqCst))
            .count()
    }

    /// Per-partition `(claimed, sealed)` flags — the observable the
    /// protocol checker folds across instances when checking I5.
    pub fn view(&self) -> Vec<(bool, bool)> {
        self.claimed
            .iter()
            .zip(&self.sealed)
            .map(|(c, s)| (c.load(Ordering::SeqCst), s.load(Ordering::SeqCst)))
            .collect()
    }
}

impl StateStore {
    /// Exports one partition in transfer form (entries key-sorted, sequence
    /// number captured under the same lock as the map — the committed
    /// prefix is atomic).
    pub fn export_partition(&self, p: PartitionId) -> PartitionExport {
        let st = self.part(p).state.lock();
        let mut entries: Vec<(Bytes, Bytes)> =
            st.map.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        entries.sort_unstable_by(|a, b| a.0.as_ref().cmp(b.0.as_ref()));
        PartitionExport {
            partition: p,
            seq: st.seq,
            entries,
        }
    }

    /// Replaces one partition's contents from a transfer export. Imports
    /// are idempotent: re-importing after a crashed transfer converges to
    /// the same state (the map and sequence number are *replaced*, not
    /// merged).
    pub fn import_partition(&self, ex: &PartitionExport) {
        let mut st = self.part(ex.partition).state.lock();
        st.map = ex.entries.iter().cloned().collect();
        st.seq = ex.seq;
    }

    /// Drops one partition's contents (release phase at the source: the
    /// migrated copy must not linger as a stale double).
    pub fn clear_partition(&self, p: PartitionId) {
        let mut st = self.part(p).state.lock();
        st.map.clear();
        st.seq = 0;
    }

    /// The sequence number of one partition (the per-partition committed
    /// prefix marker).
    pub fn partition_seq(&self, p: PartitionId) -> u64 {
        self.part(p).state.lock().seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated_store() -> StateStore {
        let store = StateStore::new(8);
        for i in 0..40u32 {
            let key = Bytes::from(format!("mig:k:{i}"));
            store.transaction(|txn| {
                txn.write(key.clone(), Bytes::from(format!("v{i}")))?;
                Ok(())
            });
        }
        store
    }

    #[test]
    fn export_import_roundtrips_every_partition() {
        let src = populated_store();
        let dst = StateStore::new(8);
        for p in 0..src.partitions() as PartitionId {
            let ex = src.export_partition(p);
            dst.import_partition(&ex);
        }
        assert_eq!(dst.snapshot(), src.snapshot());
        assert_eq!(dst.seq_vector(), src.seq_vector());
    }

    #[test]
    fn export_codec_roundtrips_byte_identically() {
        let src = populated_store();
        for p in 0..src.partitions() as PartitionId {
            let ex = src.export_partition(p);
            let bytes = ex.encode();
            let back = PartitionExport::decode(bytes.as_ref()).unwrap();
            assert_eq!(back, ex);
            assert_eq!(back.encode(), bytes, "re-encode must be identical");
        }
    }

    #[test]
    fn torn_frames_never_decode() {
        let src = populated_store();
        let ex = src.export_partition(src.partition_of(b"mig:k:0"));
        let bytes = ex.encode();
        for cut in 0..bytes.len() {
            assert!(
                PartitionExport::decode(&bytes[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
        let mut padded = bytes.to_vec();
        padded.push(0);
        assert_eq!(
            PartitionExport::decode(&padded),
            Err(MigrateCodecError::TrailingBytes(1))
        );
    }

    #[test]
    fn import_is_idempotent_and_replaces() {
        let src = populated_store();
        let dst = StateStore::new(8);
        let p = src.partition_of(b"mig:k:3");
        // Pre-existing junk in the destination partition must not survive.
        dst.transaction(|txn| {
            txn.write(Bytes::from_static(b"mig:k:3"), Bytes::from_static(b"stale"))?;
            Ok(())
        });
        let ex = src.export_partition(p);
        dst.import_partition(&ex);
        dst.import_partition(&ex);
        assert_eq!(dst.export_partition(p), ex);
    }

    #[test]
    fn clear_partition_empties_map_and_seq() {
        let src = populated_store();
        let p = src.partition_of(b"mig:k:7");
        assert!(src.partition_seq(p) > 0);
        src.clear_partition(p);
        assert_eq!(src.partition_seq(p), 0);
        assert!(src.export_partition(p).entries.is_empty());
    }

    #[test]
    fn claim_table_tracks_serviceability() {
        let t = ClaimTable::new(4, true);
        assert_eq!(t.partitions(), 4);
        assert_eq!(t.claimed_count(), 4);
        assert!(t.serviceable(2));
        t.seal(2);
        assert!(!t.serviceable(2), "sealed partitions are not serviceable");
        assert!(t.is_claimed(2), "sealing does not drop the claim");
        t.unseal(2);
        assert!(t.serviceable(2));
        t.unclaim(2);
        assert!(!t.serviceable(2));
        assert_eq!(t.claimed_count(), 3);

        let fresh = ClaimTable::new(4, false);
        assert_eq!(fresh.claimed_count(), 0);
        fresh.claim_all();
        fresh.seal_all();
        assert_eq!(fresh.view(), vec![(true, true); 4]);
        fresh.unseal_all();
        fresh.unclaim_all();
        assert_eq!(fresh.view(), vec![(false, false); 4]);
    }
}
