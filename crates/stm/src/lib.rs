//! Transactional packet processing for FTC middleboxes (paper §4.2–§4.3).
//!
//! This crate implements the *software transactional memory* API the paper
//! describes: middlebox state lives in a [`StateStore`] partitioned by key
//! hash; every packet is processed inside a [`Txn`] that acquires partition
//! locks with **strict two-phase locking** and resolves deadlocks with the
//! **wound-wait** scheme (older transactions wound younger lock holders;
//! younger requesters wait). A wounded transaction aborts at its next state
//! access and is transparently re-executed by [`StateStore::transaction`]
//! with its *original* timestamp, which guarantees progress.
//!
//! A committing transaction that performed at least one write produces a
//! [`TxnLog`]: the set of written key/value pairs plus a sparse
//! [`DepVector`] holding the pre-increment sequence number of every
//! partition the transaction read *or* wrote. The head piggybacks this log
//! onto the packet; replicas feed it to a [`MaxVector`], which enforces the
//! partial-order apply rule of paper Fig. 3 and applies the writes to a
//! replica [`StateStore`].
//!
//! Both the 2PL store and the epoch-batched optimistic [`BatchedStore`]
//! implement the [`StateBackend`] trait, the engine-neutral surface the
//! replication, migration, and audit layers program against. Engines are
//! selected per chain via [`EngineKind`] (`FTC_ENGINE` env override); the
//! commit-point contract both must honor is documented on [`StateBackend`]
//! and in DESIGN.md §13.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod batched;
pub(crate) mod epoch;
mod max_vector;
mod migrate;
#[cfg(feature = "loom")]
pub mod model;
mod recorder;
mod store;
mod txn;

pub use backend::{EngineKind, StateBackend, StateBackendExt, StateTxn, UnknownEngine};
pub use batched::{BatchedStore, MAX_OPTIMISTIC_ATTEMPTS};
pub use max_vector::{ApplyOutcome, MaxVector, TryApply};
pub use migrate::{ClaimTable, InstanceId, MigrateCodecError, PartitionExport};
pub use recorder::{CommitRecord, HistorySink};
pub use store::{PartitionId, StateStore, StoreSnapshot, StoreStats};
pub use txn::{Txn, TxnError, TxnLog, TxnOutput};

pub use ftc_packet::piggyback::{Applicability, DepVector, SeqNo, StateWrite};

/// Number of state partitions used when none is specified.
///
/// The paper selects the partition count "to exceed the maximum number of
/// CPU cores" to reduce contention; 32 covers the 8-core testbed machines
/// with headroom.
pub const DEFAULT_PARTITIONS: usize = 32;

/// Number of lock shards a store's partitions are grouped into (clamped to
/// the partition count; see [`shard_count`]).
///
/// Partitions are sharded by *flow prefix*: the leading bits of the
/// flow-component hash select the shard, and the full-key hash selects a
/// partition inside it. All state variables of one flow therefore collocate
/// in one shard, so a packet transaction takes its 2PL locks from a single
/// lock group and transactions of distinct flows rarely contend on the same
/// shard at all.
pub const DEFAULT_SHARDS: usize = 8;

/// FNV-1a with a final avalanche mix so both the high bits (shard choice)
/// and the low bits (slot choice) of the result are well distributed even
/// for short, similar keys.
fn mix_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    // splitmix64 finalizer
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58476d1ce4e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d049bb133111eb);
    h ^ (h >> 31)
}

/// The flow-distinguishing component of a middlebox state key.
///
/// State keys follow the `"<mbox>:<table>:<flow>"` convention (e.g.
/// `mon:packets:g3`, `lb:conn:10.0.0.1:80→…`), so the component after the
/// *first two* separators identifies the flow; sibling variables of the same
/// flow (`mon:packets:g3` / `mon:bytes:g3`) share it and land in the same
/// shard. Keys with fewer separators use the whole key.
pub fn flow_component(key: &[u8]) -> &[u8] {
    let mut seen = 0;
    for (i, &b) in key.iter().enumerate() {
        if b == b':' {
            seen += 1;
            if seen == 2 {
                return &key[i + 1..];
            }
        }
    }
    key
}

/// Number of shards for a store with `partitions` partitions: a store never
/// has more shards than partitions.
pub fn shard_count(partitions: usize) -> usize {
    DEFAULT_SHARDS.min(partitions)
}

/// The contiguous global-index span `(base, len)` of partition indices owned
/// by `shard` in a balanced split of `partitions` across `shards`; the first
/// `partitions % shards` shards hold one extra partition.
pub fn shard_span(shard: usize, partitions: usize, shards: usize) -> (usize, usize) {
    debug_assert!(shard < shards && shards <= partitions);
    let q = partitions / shards;
    let r = partitions % shards;
    let base = shard * q + shard.min(r);
    let len = q + usize::from(shard < r);
    (base, len)
}

/// The shard a key maps to (the flow-prefix level of the mapping).
pub fn shard_of(key: &[u8], partitions: usize) -> usize {
    debug_assert!(partitions > 0 && partitions <= u16::MAX as usize);
    let shards = shard_count(partitions);
    ((mix_hash(flow_component(key)) >> 32) % shards as u64) as usize
}

/// Hashes a state key to its partition. This mapping is deterministic and
/// identical on every replica (paper §4.2: "the state partitioning is
/// consistent across all replicas").
///
/// Two-level: [`shard_of`] picks the shard from the flow component, then the
/// full-key hash picks a partition within that shard's span. Global
/// partition indices remain a flat `0..partitions` space, so dependency
/// vectors, sequence vectors, and snapshots are laid out exactly as before
/// sharding.
pub fn partition_of(key: &[u8], partitions: usize) -> u16 {
    let shards = shard_count(partitions);
    let (base, len) = shard_span(shard_of(key, partitions), partitions, shards);
    (base + (mix_hash(key) % len as u64) as usize) as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_of_is_stable_and_in_range() {
        for n in [1usize, 2, 16, 32, 1000] {
            for key in [&b"a"[..], b"flow:10.0.0.1:80", b""] {
                let p = partition_of(key, n);
                assert!((p as usize) < n);
                assert_eq!(p, partition_of(key, n), "deterministic");
            }
        }
    }

    #[test]
    fn partition_spread_is_reasonable() {
        let n = 32;
        let mut counts = vec![0u32; n];
        for i in 0..10_000u32 {
            let key = format!("flow:{i}");
            counts[partition_of(key.as_bytes(), n) as usize] += 1;
        }
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        // Loose balance check: no partition is more than 3x another.
        assert!(max < min * 3, "unbalanced: min={min} max={max}");
    }

    #[test]
    fn flow_component_takes_suffix_after_second_separator() {
        assert_eq!(flow_component(b"mon:packets:g3"), b"g3");
        assert_eq!(flow_component(b"lb:conn:10.0.0.1:80"), b"10.0.0.1:80");
        assert_eq!(flow_component(b"gen:w2"), b"gen:w2");
        assert_eq!(flow_component(b"plain"), b"plain");
        assert_eq!(flow_component(b""), b"");
    }

    #[test]
    fn shard_spans_tile_the_partition_space() {
        for n in [1usize, 2, 5, 8, 9, 32, 1000] {
            let shards = shard_count(n);
            let mut next = 0;
            for s in 0..shards {
                let (base, len) = shard_span(s, n, shards);
                assert_eq!(base, next, "spans must be contiguous");
                assert!(len >= 1);
                next = base + len;
            }
            assert_eq!(next, n, "spans must cover every partition");
        }
    }

    #[test]
    fn partition_lands_inside_its_flow_shard() {
        for n in [2usize, 8, 32, 100] {
            let shards = shard_count(n);
            for i in 0..500u32 {
                let key = format!("mbox:table:flow{i}");
                let s = shard_of(key.as_bytes(), n);
                let (base, len) = shard_span(s, n, shards);
                let p = partition_of(key.as_bytes(), n) as usize;
                assert!(
                    (base..base + len).contains(&p),
                    "partition {p} outside shard {s} span [{base}, {})",
                    base + len
                );
            }
        }
    }

    #[test]
    fn sibling_keys_of_one_flow_share_a_shard() {
        for g in 0..64u32 {
            let a = format!("mon:packets:g{g}");
            let b = format!("mon:bytes:g{g}");
            assert_eq!(
                shard_of(a.as_bytes(), 32),
                shard_of(b.as_bytes(), 32),
                "same flow component must collocate"
            );
        }
    }
}
