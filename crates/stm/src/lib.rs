//! Transactional packet processing for FTC middleboxes (paper §4.2–§4.3).
//!
//! This crate implements the *software transactional memory* API the paper
//! describes: middlebox state lives in a [`StateStore`] partitioned by key
//! hash; every packet is processed inside a [`Txn`] that acquires partition
//! locks with **strict two-phase locking** and resolves deadlocks with the
//! **wound-wait** scheme (older transactions wound younger lock holders;
//! younger requesters wait). A wounded transaction aborts at its next state
//! access and is transparently re-executed by [`StateStore::transaction`]
//! with its *original* timestamp, which guarantees progress.
//!
//! A committing transaction that performed at least one write produces a
//! [`TxnLog`]: the set of written key/value pairs plus a sparse
//! [`DepVector`] holding the pre-increment sequence number of every
//! partition the transaction read *or* wrote. The head piggybacks this log
//! onto the packet; replicas feed it to a [`MaxVector`], which enforces the
//! partial-order apply rule of paper Fig. 3 and applies the writes to a
//! replica [`StateStore`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod max_vector;
#[cfg(feature = "loom")]
pub mod model;
mod recorder;
mod store;
mod txn;

pub use max_vector::{ApplyOutcome, MaxVector, TryApply};
pub use recorder::{CommitRecord, HistorySink};
pub use store::{PartitionId, StateStore, StoreSnapshot, StoreStats};
pub use txn::{Txn, TxnError, TxnLog, TxnOutput};

pub use ftc_packet::piggyback::{Applicability, DepVector, SeqNo, StateWrite};

/// Number of state partitions used when none is specified.
///
/// The paper selects the partition count "to exceed the maximum number of
/// CPU cores" to reduce contention; 32 covers the 8-core testbed machines
/// with headroom.
pub const DEFAULT_PARTITIONS: usize = 32;

/// Hashes a state key to its partition. This mapping is deterministic and
/// identical on every replica (paper §4.2: "the state partitioning is
/// consistent across all replicas").
pub fn partition_of(key: &[u8], partitions: usize) -> u16 {
    debug_assert!(partitions > 0 && partitions <= u16::MAX as usize);
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % partitions as u64) as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_of_is_stable_and_in_range() {
        for n in [1usize, 2, 16, 32, 1000] {
            for key in [&b"a"[..], b"flow:10.0.0.1:80", b""] {
                let p = partition_of(key, n);
                assert!((p as usize) < n);
                assert_eq!(p, partition_of(key, n), "deterministic");
            }
        }
    }

    #[test]
    fn partition_spread_is_reasonable() {
        let n = 32;
        let mut counts = vec![0u32; n];
        for i in 0..10_000u32 {
            let key = format!("flow:{i}");
            counts[partition_of(key.as_bytes(), n) as usize] += 1;
        }
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        // Loose balance check: no partition is more than 3x another.
        assert!(max < min * 3, "unbalanced: min={min} max={max}");
    }
}
