//! Property-based tests: serializability and replication equivalence.

use bytes::Bytes;
use ftc_stm::{MaxVector, StateStore, TxnLog};
use proptest::collection::vec;
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::Arc;
use std::thread;

/// A tiny op language for generated transactions.
#[derive(Debug, Clone)]
enum Op {
    /// Add `delta` to counter `key`.
    Add(u8, u8),
    /// Copy counter `a` into counter `b`.
    Copy(u8, u8),
}

fn arb_txn() -> impl Strategy<Value = Vec<Op>> {
    vec(
        prop_oneof![
            (0u8..6, 1u8..5).prop_map(|(k, d)| Op::Add(k, d)),
            (0u8..6, 0u8..6).prop_map(|(a, b)| Op::Copy(a, b)),
        ],
        1..4,
    )
}

fn key(k: u8) -> Bytes {
    Bytes::from(format!("counter:{k}"))
}

fn run_txn(store: &StateStore, ops: &[Op]) -> Option<TxnLog> {
    store
        .transaction(|txn| {
            for op in ops {
                match *op {
                    Op::Add(k, d) => {
                        let c = txn.read_u64(&key(k))?.unwrap_or(0);
                        txn.write_u64(key(k), c + u64::from(d))?;
                    }
                    Op::Copy(a, b) => {
                        let v = txn.read_u64(&key(a))?.unwrap_or(0);
                        txn.write_u64(key(b), v)?;
                    }
                }
            }
            Ok(())
        })
        .log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Concurrently executed transactions commute to SOME serial order:
    /// total additions are conserved for Add-only workloads.
    #[test]
    fn additions_conserved_across_threads(
        txns in vec(vec((0u8..6, 1u8..5), 1..4), 1..24)
    ) {
        let store = Arc::new(StateStore::new(8));
        let expected: u64 = txns.iter().flatten().map(|&(_, d)| u64::from(d)).sum();
        let mut handles = Vec::new();
        for chunk in txns.chunks(6) {
            let store = Arc::clone(&store);
            let chunk = chunk.to_vec();
            handles.push(thread::spawn(move || {
                for txn in &chunk {
                    let ops: Vec<Op> = txn.iter().map(|&(k, d)| Op::Add(k, d)).collect();
                    run_txn(&store, &ops);
                }
            }));
        }
        for h in handles { h.join().unwrap(); }
        let total: u64 = (0..6).map(|k| store.peek_u64(&key(k)).unwrap_or(0)).sum();
        prop_assert_eq!(total, expected);
    }

    /// Replaying the piggyback logs of a concurrent execution on a replica
    /// store — in any delivery order — reproduces the head store exactly.
    #[test]
    fn replica_replay_matches_head(
        txns in vec(arb_txn(), 1..24),
        seed in any::<u64>(),
    ) {
        let head = Arc::new(StateStore::new(8));
        let logs = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for chunk in txns.chunks(6) {
            let head = Arc::clone(&head);
            let logs = Arc::clone(&logs);
            let chunk = chunk.to_vec();
            handles.push(thread::spawn(move || {
                for ops in &chunk {
                    if let Some(log) = run_txn(&head, ops) {
                        logs.lock().push(log);
                    }
                }
            }));
        }
        for h in handles { h.join().unwrap(); }

        let mut logs = Arc::try_unwrap(logs).unwrap().into_inner();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        logs.shuffle(&mut rng);

        let replica = StateStore::new(8);
        let max = MaxVector::new(8);
        for log in &logs {
            max.offer(&log.deps, &log.writes, &replica);
        }
        prop_assert_eq!(max.parked_len(), 0, "all logs must eventually apply");
        prop_assert_eq!(replica.seq_vector(), head.seq_vector());
        for k in 0..6 {
            prop_assert_eq!(replica.peek_u64(&key(k)), head.peek_u64(&key(k)));
        }
    }

    /// Wound-wait is starvation-free: under a randomized fully-conflicting
    /// workload every transaction commits exactly once (retries keep their
    /// original timestamp, so each one eventually becomes the oldest and
    /// can no longer be wounded), and the abort count stays bounded rather
    /// than growing without limit.
    #[test]
    fn wound_wait_is_starvation_free(
        per_thread in vec(1usize..40, 2..5),
        hot_keys in 1u8..3,
    ) {
        let store = Arc::new(StateStore::new(4));
        let mut handles = Vec::new();
        for (t, &n) in per_thread.iter().enumerate() {
            let store = Arc::clone(&store);
            let hot = t as u8 % hot_keys;
            handles.push(thread::spawn(move || {
                for _ in 0..n {
                    // Everyone hammers a hot counter (and one rotating
                    // second key, creating cross-partition conflicts).
                    run_txn(&store, &[Op::Add(hot, 1), Op::Copy(hot, hot_keys)]);
                }
            }));
        }
        // Joining at all is the liveness claim: a starved transaction
        // would spin in StateStore::transaction forever.
        for h in handles { h.join().unwrap(); }
        let expected: u64 = per_thread.iter().map(|&n| n as u64).sum();
        let total: u64 = (0..hot_keys).map(|k| store.peek_u64(&key(k)).unwrap_or(0)).sum();
        prop_assert_eq!(total, expected, "every txn commits exactly once");
        let (commits, wounds, _) = store.stats.snapshot();
        prop_assert_eq!(commits, expected);
        // Wound-wait bounds retries; allow generous slack for scheduling
        // noise but fail on quadratic-or-worse blowups.
        prop_assert!(
            wounds <= 20 * commits + 100,
            "{wounds} wound-aborts for {commits} commits"
        );
    }

    /// `MaxVector::try_apply` convergence: applying the head's logs in ANY
    /// dep-respecting order (random linear extensions of the dependency
    /// partial order, generated by shuffled ready-set sweeps, without the
    /// parking lot's help) reproduces the head store exactly.
    #[test]
    fn try_apply_converges_under_random_dep_respecting_orders(
        txns in vec(arb_txn(), 1..20),
        seed in any::<u64>(),
    ) {
        let head = StateStore::new(8);
        let mut logs = Vec::new();
        for ops in &txns {
            if let Some(log) = run_txn(&head, ops) {
                logs.push(log);
            }
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

        let replica = StateStore::new(8);
        let max = MaxVector::new(8);
        let mut pending: Vec<usize> = (0..logs.len()).collect();
        while !pending.is_empty() {
            pending.shuffle(&mut rng);
            let before = pending.len();
            pending.retain(|&i| {
                max.try_apply(&logs[i].deps, &logs[i].writes, &replica)
                    != ftc_stm::Applicability::Ready
            });
            prop_assert!(pending.len() < before, "no log applicable: stuck");
        }
        prop_assert_eq!(max.parked_len(), 0, "try_apply never parks");
        prop_assert_eq!(replica.seq_vector(), head.seq_vector());
        for k in 0..7 {
            prop_assert_eq!(replica.peek_u64(&key(k)), head.peek_u64(&key(k)));
        }
    }

    /// Snapshot/restore is faithful under arbitrary committed state.
    #[test]
    fn snapshot_restore_faithful(txns in vec(arb_txn(), 0..16)) {
        let store = StateStore::new(8);
        for ops in &txns {
            run_txn(&store, ops);
        }
        let snap = store.snapshot();
        let copy = StateStore::new(8);
        copy.restore(&snap);
        prop_assert_eq!(copy.snapshot(), snap);
        prop_assert_eq!(copy.seq_vector(), store.seq_vector());
    }
}
