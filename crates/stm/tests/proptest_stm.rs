//! Property-based tests: serializability and replication equivalence.

use bytes::Bytes;
use ftc_stm::{MaxVector, StateStore, TxnLog};
use proptest::collection::vec;
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::Arc;
use std::thread;

/// A tiny op language for generated transactions.
#[derive(Debug, Clone)]
enum Op {
    /// Add `delta` to counter `key`.
    Add(u8, u8),
    /// Copy counter `a` into counter `b`.
    Copy(u8, u8),
}

fn arb_txn() -> impl Strategy<Value = Vec<Op>> {
    vec(
        prop_oneof![
            (0u8..6, 1u8..5).prop_map(|(k, d)| Op::Add(k, d)),
            (0u8..6, 0u8..6).prop_map(|(a, b)| Op::Copy(a, b)),
        ],
        1..4,
    )
}

fn key(k: u8) -> Bytes {
    Bytes::from(format!("counter:{k}"))
}

fn run_txn(store: &StateStore, ops: &[Op]) -> Option<TxnLog> {
    store
        .transaction(|txn| {
            for op in ops {
                match *op {
                    Op::Add(k, d) => {
                        let c = txn.read_u64(&key(k))?.unwrap_or(0);
                        txn.write_u64(key(k), c + u64::from(d))?;
                    }
                    Op::Copy(a, b) => {
                        let v = txn.read_u64(&key(a))?.unwrap_or(0);
                        txn.write_u64(key(b), v)?;
                    }
                }
            }
            Ok(())
        })
        .log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Concurrently executed transactions commute to SOME serial order:
    /// total additions are conserved for Add-only workloads.
    #[test]
    fn additions_conserved_across_threads(
        txns in vec(vec((0u8..6, 1u8..5), 1..4), 1..24)
    ) {
        let store = Arc::new(StateStore::new(8));
        let expected: u64 = txns.iter().flatten().map(|&(_, d)| u64::from(d)).sum();
        let mut handles = Vec::new();
        for chunk in txns.chunks(6) {
            let store = Arc::clone(&store);
            let chunk = chunk.to_vec();
            handles.push(thread::spawn(move || {
                for txn in &chunk {
                    let ops: Vec<Op> = txn.iter().map(|&(k, d)| Op::Add(k, d)).collect();
                    run_txn(&store, &ops);
                }
            }));
        }
        for h in handles { h.join().unwrap(); }
        let total: u64 = (0..6).map(|k| store.peek_u64(&key(k)).unwrap_or(0)).sum();
        prop_assert_eq!(total, expected);
    }

    /// Replaying the piggyback logs of a concurrent execution on a replica
    /// store — in any delivery order — reproduces the head store exactly.
    #[test]
    fn replica_replay_matches_head(
        txns in vec(arb_txn(), 1..24),
        seed in any::<u64>(),
    ) {
        let head = Arc::new(StateStore::new(8));
        let logs = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for chunk in txns.chunks(6) {
            let head = Arc::clone(&head);
            let logs = Arc::clone(&logs);
            let chunk = chunk.to_vec();
            handles.push(thread::spawn(move || {
                for ops in &chunk {
                    if let Some(log) = run_txn(&head, ops) {
                        logs.lock().push(log);
                    }
                }
            }));
        }
        for h in handles { h.join().unwrap(); }

        let mut logs = Arc::try_unwrap(logs).unwrap().into_inner();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        logs.shuffle(&mut rng);

        let replica = StateStore::new(8);
        let max = MaxVector::new(8);
        for log in &logs {
            max.offer(&log.deps, &log.writes, &replica);
        }
        prop_assert_eq!(max.parked_len(), 0, "all logs must eventually apply");
        prop_assert_eq!(replica.seq_vector(), head.seq_vector());
        for k in 0..6 {
            prop_assert_eq!(replica.peek_u64(&key(k)), head.peek_u64(&key(k)));
        }
    }

    /// Snapshot/restore is faithful under arbitrary committed state.
    #[test]
    fn snapshot_restore_faithful(txns in vec(arb_txn(), 0..16)) {
        let store = StateStore::new(8);
        for ops in &txns {
            run_txn(&store, ops);
        }
        let snap = store.snapshot();
        let copy = StateStore::new(8);
        copy.restore(&snap);
        prop_assert_eq!(copy.snapshot(), snap);
        prop_assert_eq!(copy.seq_vector(), store.seq_vector());
    }
}
