//! Model checks of the concurrency core, compiled only with
//! `--features loom`:
//!
//! ```text
//! cargo test -p ftc-stm --features loom
//! ```
//!
//! See `crates/stm/src/model.rs` for the properties verified.

#![cfg(feature = "loom")]

use bytes::Bytes;
use ftc_stm::model::{
    check_epoch_batch, check_epoch_batch_opts, check_max_vector_permutations, check_wound_wait,
    check_wound_wait_opts, BatchPlan, EpochModelOptions, ModelOptions,
};
use ftc_stm::{DepVector, StateStore, StateWrite};

fn bp(parts: &[u8], writing: bool) -> BatchPlan {
    BatchPlan {
        parts: parts.to_vec(),
        writing,
    }
}

#[test]
fn epoch_batch_hot_partition_writers() {
    // Two writers incrementing one partition: every interleaving must
    // serialize them (one requeues or escalates; no lost update).
    let stats = check_epoch_batch(&[bp(&[0], true), bp(&[0], true)], 1).unwrap();
    assert!(stats.terminals >= 1);
    assert!(stats.max_requeues >= 1, "some interleaving invalidates one");
}

#[test]
fn epoch_batch_three_writers_escalate() {
    // Three hot writers with a low requeue cap: the pessimistic path must
    // fire in some interleaving, and still never lose an update.
    let stats = check_epoch_batch_opts(
        &[bp(&[0], true), bp(&[0], true), bp(&[0], true)],
        1,
        EpochModelOptions {
            requeue_cap: 1,
            ..EpochModelOptions::default()
        },
    )
    .unwrap();
    assert!(stats.pessimistic_taken, "escalation must be reachable");
}

#[test]
fn epoch_batch_readers_commute_with_each_other() {
    // Two read-only txns plus a disjoint writer: readers may share a
    // batch (read-read overlap admits), nothing requeues the writer.
    let stats = check_epoch_batch(&[bp(&[0], false), bp(&[0], false), bp(&[1], true)], 2).unwrap();
    assert!(stats.terminals >= 1);
}

#[test]
fn epoch_batch_reader_vs_writer_serializes() {
    // A reader and a writer on one partition: the reader must observe the
    // value either fully before or fully after the writer's bump.
    let stats = check_epoch_batch(&[bp(&[0, 1], false), bp(&[1], true)], 2).unwrap();
    assert!(stats.terminals >= 2, "both serial orders are reachable");
}

#[test]
fn epoch_batch_cross_partition_writers() {
    // The classic torn-footprint shape: each writer touches both
    // partitions in opposite order. Validation must reject interleavings
    // that would produce a serialization cycle.
    let stats = check_epoch_batch(&[bp(&[0, 1], true), bp(&[1, 0], true)], 2).unwrap();
    assert!(stats.states > 20, "explores a real state space");
    assert!(stats.max_requeues >= 1, "torn footprints must invalidate");
}

#[test]
fn epoch_checker_detects_lost_update_without_conflict_check() {
    // Self-test: admitting every fresh transaction (no batch conflict
    // check) lets two writers commit over the same snapshot; the checker
    // must report the lost update rather than vacuously pass.
    let err = check_epoch_batch_opts(
        &[bp(&[0], true), bp(&[0], true)],
        1,
        EpochModelOptions {
            conflict_check: false,
            ..EpochModelOptions::default()
        },
    )
    .unwrap_err();
    assert!(err.contains("lost update"), "got: {err}");
}

#[test]
fn wound_wait_opposite_orders() {
    // The classic deadlock shape: T0 locks p0 then p1, T1 locks p1 then
    // p0. Wound-wait must resolve every interleaving.
    let stats = check_wound_wait(&[vec![0, 1], vec![1, 0]], 2).unwrap();
    assert!(stats.terminals >= 1);
    assert!(stats.max_aborts >= 1, "some interleaving wounds T1");
}

#[test]
fn wound_wait_three_txn_ring() {
    // A three-way lock ring: each txn's second lock is the next txn's
    // first. Plain 2PL can deadlock all three; wound-wait cannot.
    let stats = check_wound_wait(&[vec![0, 1], vec![1, 2], vec![2, 0]], 3).unwrap();
    assert!(stats.states > 100, "ring explores a real state space");
}

#[test]
fn wound_wait_hot_partition() {
    // Three txns serialized through one partition: no deadlock possible,
    // but wounding still fires; all must commit exactly once.
    check_wound_wait(&[vec![0], vec![0], vec![0]], 1).unwrap();
}

#[test]
fn wound_wait_mixed_footprints() {
    let stats = check_wound_wait(&[vec![0, 1, 2], vec![2, 0], vec![1]], 3).unwrap();
    assert!(stats.terminals >= 1);
}

#[test]
fn checker_detects_deadlock_when_wounding_is_disabled() {
    // Self-test: with wounding off this is plain blocking 2PL, and the
    // checker must find its deadlock rather than vacuously pass.
    let err = check_wound_wait_opts(
        &[vec![0, 1], vec![1, 0]],
        2,
        ModelOptions {
            wound: false,
            ..ModelOptions::default()
        },
    )
    .unwrap_err();
    assert!(err.contains("deadlock"), "got: {err}");
}

/// Produces a realistic cross-partition log batch by running writing
/// transactions against a head store.
fn log_batch(n: u64, partitions: usize) -> Vec<(DepVector, Vec<StateWrite>)> {
    let head = StateStore::new(partitions);
    let hot = Bytes::from_static(b"hot");
    (0..n)
        .map(|i| {
            let out = head.transaction(|txn| {
                let c = txn.read_u64(&hot)?.unwrap_or(0);
                txn.write_u64(hot.clone(), c + 1)?;
                txn.write_u64(Bytes::from(format!("k{i}")), i)?;
                Ok(())
            });
            let log = out.log.expect("writing txn yields a log");
            (log.deps, log.writes)
        })
        .collect()
}

#[test]
fn max_vector_converges_under_every_delivery_order() {
    let logs = log_batch(5, 4);
    let orders = check_max_vector_permutations(&logs, 4, false);
    assert_eq!(orders, 120);
}

#[test]
fn max_vector_tolerates_duplicate_delivery() {
    // At-least-once delivery: every log arrives twice, in every order of
    // first arrivals. Duplicates must never double-apply.
    let logs = log_batch(4, 4);
    let orders = check_max_vector_permutations(&logs, 4, true);
    assert_eq!(orders, 24);
}

#[test]
fn max_vector_single_partition_chain() {
    // Fully dependent chain: every out-of-order delivery parks.
    let head = StateStore::new(1);
    let k = Bytes::from_static(b"k");
    let logs: Vec<_> = (0..5u64)
        .map(|i| {
            let out = head.transaction(|txn| {
                txn.write_u64(k.clone(), i)?;
                Ok(())
            });
            let log = out.log.unwrap();
            (log.deps, log.writes)
        })
        .collect();
    assert_eq!(check_max_vector_permutations(&logs, 1, false), 120);
}
