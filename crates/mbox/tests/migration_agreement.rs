//! Static/dynamic agreement for the migration-completeness lint.
//!
//! The static side ([`ftc_mbox::check_migration_manifest`]) rejects a
//! manifest that omits a declared state prefix. The dynamic side is what
//! actually happens during a handover: only state whose prefix is in the
//! manifest reaches the destination store. The property forced here is
//! that the two judgments coincide on every randomly generated
//! (declared, manifest, state) triple:
//!
//! * the lint reports `migration-missing-prefix` **iff** a
//!   manifest-filtered migration strands at least one key on the source;
//! * `migration-unknown-prefix` never corresponds to dynamic loss (a
//!   stale extra entry transfers nothing extra — it is a table bug, not a
//!   state bug), so it is excluded from the loss equivalence and checked
//!   separately.
//!
//! This is the proptest the ISSUE's static-analysis tentpole calls for:
//! if either side drifts (the lint stops seeing a prefix, or the transfer
//! machinery starts moving undeclared state), the equivalence breaks.

use bytes::Bytes;
use ftc_mbox::check_migration_manifest;
use ftc_stm::StateStore;
use proptest::prelude::*;

/// The prefix universe the generator draws from. Realistic shapes: short
/// lowercase tags with the `:` separator the key grammar uses.
const UNIVERSE: &[&str] = &[
    "mon:", "gen:", "ids:", "lb:", "mazu:", "snat:", "conn:", "ports:",
];

/// Dynamic model of a manifest-filtered handover: every key of `src`
/// whose prefix is in `manifest` lands in `dst`; everything else stays
/// behind. Returns the number of stranded keys.
fn migrate_filtered(src: &StateStore, dst: &StateStore, manifest: &[&str]) -> usize {
    let snap = src.snapshot();
    let mut stranded = 0;
    for (key, value) in snap.maps.iter().flatten() {
        if manifest
            .iter()
            .any(|p| key.len() >= p.len() && &key[..p.len()] == p.as_bytes())
        {
            dst.transaction(|txn| {
                txn.write(key.clone(), value.clone())?;
                Ok(())
            });
        } else {
            stranded += 1;
        }
    }
    stranded
}

fn subset_strategy() -> impl Strategy<Value = Vec<&'static str>> {
    proptest::collection::vec(any::<bool>(), UNIVERSE.len()).prop_map(|mask| {
        UNIVERSE
            .iter()
            .zip(mask)
            .filter_map(|(p, keep)| keep.then_some(*p))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Static missing-prefix rejection ⇔ dynamic state stranding, over
    /// random declared sets, random manifests, and random key traffic
    /// under the declared prefixes.
    #[test]
    fn static_reject_iff_dynamic_strands_state(
        declared in subset_strategy(),
        manifest in subset_strategy(),
        // Keys written per declared prefix (at least one, so every
        // declared prefix is actually live in the store).
        per_prefix in 1usize..4,
    ) {
        // --- dynamic side -------------------------------------------------
        let src = StateStore::new(8);
        for p in &declared {
            for i in 0..per_prefix {
                let key = Bytes::from(format!("{p}k{i}"));
                src.transaction(|txn| {
                    txn.write_u64(key.clone(), i as u64 + 1)?;
                    Ok(())
                });
            }
        }
        let dst = StateStore::new(8);
        let stranded = migrate_filtered(&src, &dst, &manifest);

        // --- static side --------------------------------------------------
        let violations = check_migration_manifest("fixture", &declared, &manifest);
        let missing: Vec<_> = violations
            .iter()
            .filter(|v| v.code == "migration-missing-prefix")
            .collect();
        let unknown: Vec<_> = violations
            .iter()
            .filter(|v| v.code == "migration-unknown-prefix")
            .collect();

        // Agreement: the lint flags a missing prefix iff the filtered
        // migration stranded keys, and the counts line up (every missing
        // prefix strands exactly `per_prefix` keys).
        prop_assert_eq!(
            !missing.is_empty(),
            stranded > 0,
            "static verdict diverged from dynamic loss: missing={:?} stranded={}",
            missing,
            stranded
        );
        prop_assert_eq!(missing.len() * per_prefix, stranded);

        // Unknown-prefix findings are exactly the manifest entries nobody
        // declared — and never imply dynamic loss.
        let expect_unknown = manifest.iter().filter(|p| !declared.contains(p)).count();
        prop_assert_eq!(unknown.len(), expect_unknown);

        // A complete manifest migrates the store verbatim (keys and
        // values; sequence vectors are re-issued by the destination's own
        // commits, matching the handover's restore path).
        if missing.is_empty() {
            let moved: usize = dst.snapshot().maps.iter().map(|m| m.len()).sum();
            prop_assert_eq!(moved, declared.len() * per_prefix);
        }
    }
}
