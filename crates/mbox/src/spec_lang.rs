//! A tiny chain-description language, in the spirit of Click configs.
//!
//! Chains are written as `->`-separated middlebox invocations:
//!
//! ```text
//! firewall(deny_src=10.66.0.0/16, deny_ports=137-139)
//!   -> ids(scan_threshold=16)
//!   -> monitor(sharing=2)
//!   -> lb(backends=10.1.0.1|10.1.0.2)
//!   -> mazu_nat(ext=203.0.113.1)
//! ```
//!
//! Used by the `ftc` CLI and handy in tests; [`parse_chain`] returns the
//! [`MbSpec`] list ready for `ChainConfig::new`.

use crate::firewall::{Cidr, FirewallAction, FirewallRule};
use crate::middlebox::MbSpec;
use std::net::Ipv4Addr;

/// A human-readable parse error with the offending fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "chain spec error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        message: message.into(),
    })
}

/// Parses a chain description into middlebox specs.
///
/// ```
/// let specs = ftc_mbox::parse_chain(
///     "firewall(deny_ports=23) -> monitor(sharing=2) -> mazu_nat(ext=203.0.113.1)",
/// ).unwrap();
/// assert_eq!(specs.len(), 3);
/// assert_eq!(specs[2].name(), "MazuNAT");
/// ```
pub fn parse_chain(input: &str) -> Result<Vec<MbSpec>, ParseError> {
    let mut specs = Vec::new();
    for stage in input.split("->") {
        let stage = stage.trim();
        if stage.is_empty() {
            return err("empty stage (dangling '->'?)");
        }
        specs.push(parse_stage(stage)?);
    }
    Ok(specs)
}

fn parse_stage(stage: &str) -> Result<MbSpec, ParseError> {
    let (name, args) = match stage.find('(') {
        Some(open) => {
            let Some(close) = stage.rfind(')') else {
                return err(format!("missing ')' in `{stage}`"));
            };
            if close != stage.len() - 1 {
                return err(format!("trailing characters after ')' in `{stage}`"));
            }
            (stage[..open].trim(), parse_args(&stage[open + 1..close])?)
        }
        None => (stage, Vec::new()),
    };
    build_spec(name, &args)
}

fn parse_args(s: &str) -> Result<Vec<(String, String)>, ParseError> {
    let mut out = Vec::new();
    for part in s.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let Some((k, v)) = part.split_once('=') else {
            return err(format!("argument `{part}` must be key=value"));
        };
        out.push((k.trim().to_string(), v.trim().to_string()));
    }
    Ok(out)
}

fn get<'a>(args: &'a [(String, String)], key: &str) -> Option<&'a str> {
    args.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

fn require<'a>(args: &'a [(String, String)], key: &str, mb: &str) -> Result<&'a str, ParseError> {
    get(args, key).ok_or_else(|| ParseError {
        message: format!("{mb} requires `{key}=…`"),
    })
}

fn parse_ip(v: &str) -> Result<Ipv4Addr, ParseError> {
    v.parse().map_err(|_| ParseError {
        message: format!("`{v}` is not an IPv4 address"),
    })
}

fn parse_usize(v: &str) -> Result<usize, ParseError> {
    v.parse().map_err(|_| ParseError {
        message: format!("`{v}` is not a number"),
    })
}

fn parse_port(v: &str) -> Result<u16, ParseError> {
    v.parse().map_err(|_| ParseError {
        message: format!("`{v}` is not a port (0-65535)"),
    })
}

fn parse_cidr(v: &str) -> Result<Cidr, ParseError> {
    let Some((addr, len)) = v.split_once('/') else {
        return Ok(Cidr::new(parse_ip(v)?, 32));
    };
    let len: u8 = len.parse().map_err(|_| ParseError {
        message: format!("bad prefix length in `{v}`"),
    })?;
    if len > 32 {
        return err(format!("prefix length {len} > 32 in `{v}`"));
    }
    Ok(Cidr::new(parse_ip(addr)?, len))
}

fn build_spec(name: &str, args: &[(String, String)]) -> Result<MbSpec, ParseError> {
    match name {
        "monitor" => Ok(MbSpec::Monitor {
            sharing_level: get(args, "sharing")
                .map(parse_usize)
                .transpose()?
                .unwrap_or(1),
        }),
        "gen" => Ok(MbSpec::Gen {
            state_size: get(args, "state")
                .map(parse_usize)
                .transpose()?
                .unwrap_or(32),
        }),
        "mazu_nat" => Ok(MbSpec::MazuNat {
            external_ip: parse_ip(require(args, "ext", "mazu_nat")?)?,
        }),
        "simple_nat" => Ok(MbSpec::SimpleNat {
            external_ip: parse_ip(require(args, "ext", "simple_nat")?)?,
        }),
        "ids" => Ok(MbSpec::Ids {
            scan_threshold: get(args, "scan_threshold")
                .map(parse_usize)
                .transpose()?
                .unwrap_or(16),
            signatures: get(args, "signatures")
                .map(|v| v.split('|').map(|s| s.as_bytes().to_vec()).collect())
                .unwrap_or_default(),
        }),
        "lb" => {
            let backends = require(args, "backends", "lb")?
                .split('|')
                .map(parse_ip)
                .collect::<Result<Vec<_>, _>>()?;
            if backends.is_empty() {
                return err("lb needs at least one backend");
            }
            Ok(MbSpec::LoadBalancer { backends })
        }
        "firewall" => {
            let mut rules = Vec::new();
            for (k, v) in args {
                match k.as_str() {
                    "deny_src" => rules.push(FirewallRule::deny_src(parse_cidr(v)?)),
                    "deny_ports" => {
                        let (lo, hi) = match v.split_once('-') {
                            Some((a, b)) => (parse_port(a)?, parse_port(b)?),
                            None => {
                                let p = parse_port(v)?;
                                (p, p)
                            }
                        };
                        if lo > hi {
                            return err(format!("empty port range `{v}`"));
                        }
                        rules.push(FirewallRule::deny_dst_ports(lo..=hi));
                    }
                    "allow_src" => rules.push(FirewallRule {
                        src: parse_cidr(v)?,
                        dst: Cidr::any(),
                        protocol: None,
                        dst_ports: None,
                        action: FirewallAction::Permit,
                    }),
                    other => return err(format!("firewall: unknown argument `{other}`")),
                }
            }
            Ok(MbSpec::Firewall { rules })
        }
        "passthrough" => Ok(MbSpec::Passthrough),
        other => err(format!(
            "unknown middlebox `{other}` (expected monitor, gen, mazu_nat, \
             simple_nat, ids, lb, firewall, passthrough)"
        )),
    }
}

// ---------------------------------------------------------------------------
// Static chain-spec verification
// ---------------------------------------------------------------------------

/// Declared state-key prefixes per middlebox kind: the partition-ownership
/// contract of the chain. Checked two ways: `scripts/analyze_state_access.py`
/// parses the middlebox sources and rejects any state write whose key prefix
/// is not declared here, and [`verify_deploy_spec`] uses it to decide which
/// stages are stateful (stateless stages place no replication demands on the
/// ring). Keep the table in sync with the `name => prefixes` pairs the
/// analyzer expects.
pub const DECLARED_STATE_PREFIXES: &[(&str, &[&str])] = &[
    ("monitor", &["mon:"]),
    ("gen", &["gen:"]),
    ("ids", &["ids:"]),
    ("lb", &["lb:"]),
    ("mazu_nat", &["mazu:"]),
    ("simple_nat", &["snat:"]),
    ("firewall", &[]),
    ("passthrough", &[]),
];

/// The spec-language name of a middlebox kind (the key used by
/// [`DECLARED_STATE_PREFIXES`], [`MIGRATION_MANIFEST`], and the static
/// analyzers in `scripts/`).
pub fn spec_kind_name(spec: &MbSpec) -> &'static str {
    match spec {
        MbSpec::Monitor { .. } => "monitor",
        MbSpec::Gen { .. } => "gen",
        MbSpec::Ids { .. } => "ids",
        MbSpec::LoadBalancer { .. } => "lb",
        MbSpec::MazuNat { .. } => "mazu_nat",
        MbSpec::SimpleNat { .. } => "simple_nat",
        MbSpec::Firewall { .. } => "firewall",
        MbSpec::Passthrough => "passthrough",
    }
}

/// The declared state-key prefixes for one spec (see
/// [`DECLARED_STATE_PREFIXES`]). Empty means stateless.
pub fn declared_state_prefixes(spec: &MbSpec) -> &'static [&'static str] {
    let name = spec_kind_name(spec);
    DECLARED_STATE_PREFIXES
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, p)| *p)
        .unwrap_or(&[])
}

/// Per-middlebox *migration manifests*: the state-key prefixes a planned
/// reconfiguration (an `ftc_core::reconfig`-style handover) transfers to
/// the destination instance. A migration is **complete** only when the
/// manifest covers every declared state prefix — any declared prefix
/// missing here is state the handover would silently leave behind on the
/// retired source, which is exactly the bug class the
/// migration-completeness lint (`scripts/analyze_migration.py` statically,
/// [`verify_migration_spec`] at deploy time) exists to reject.
pub const MIGRATION_MANIFEST: &[(&str, &[&str])] = &[
    ("monitor", &["mon:"]),
    ("gen", &["gen:"]),
    ("ids", &["ids:"]),
    ("lb", &["lb:"]),
    ("mazu_nat", &["mazu:"]),
    ("simple_nat", &["snat:"]),
    ("firewall", &[]),
    ("passthrough", &[]),
];

/// The migration manifest for one spec (see [`MIGRATION_MANIFEST`]).
/// Empty means the kind migrates no state (stateless stages).
pub fn migration_manifest(spec: &MbSpec) -> &'static [&'static str] {
    let name = spec_kind_name(spec);
    MIGRATION_MANIFEST
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, p)| *p)
        .unwrap_or(&[])
}

/// Checks one middlebox kind's migration manifest against its declared
/// state prefixes. Violations:
///
/// * `migration-missing-prefix` — a declared prefix the manifest omits:
///   migrating this kind would strand that state on the retired source
///   (the destination starts serving with a partial committed prefix,
///   violating I6).
/// * `migration-unknown-prefix` — a manifested prefix nobody declares:
///   either the manifest is stale or the state escaped the
///   [`DECLARED_STATE_PREFIXES`] contract.
///
/// The table-backed wrapper is [`verify_migration_spec`]; this function
/// takes the sets explicitly so tests (and the static/dynamic agreement
/// property) can feed deliberately incomplete fixtures.
pub fn check_migration_manifest(
    name: &str,
    declared: &[&str],
    manifest: &[&str],
) -> Vec<SpecViolation> {
    let mut violations = Vec::new();
    for p in declared {
        if !manifest.contains(p) {
            violations.push(SpecViolation {
                code: "migration-missing-prefix",
                message: format!(
                    "`{name}` declares state under `{p}` but its migration \
                     manifest omits it: a handover would transfer a partial \
                     committed prefix and strand `{p}` state on the retired \
                     source (I6 violation); add `{p}` to `{name}` in \
                     MIGRATION_MANIFEST"
                ),
            });
        }
    }
    for p in manifest {
        if !declared.contains(p) {
            violations.push(SpecViolation {
                code: "migration-unknown-prefix",
                message: format!(
                    "`{name}` manifests `{p}` for migration but declares no \
                     such state prefix: remove the stale manifest entry or \
                     declare `{p}` in DECLARED_STATE_PREFIXES"
                ),
            });
        }
    }
    violations
}

/// Statically verifies that every middlebox in `specs` has a *complete*
/// migration manifest: each declared state prefix is covered, no unknown
/// prefixes are manifested. Run before accepting a chain for deployment —
/// a chain passing [`verify_deploy_spec`] can still be unsafe to
/// reconfigure if a stage's manifest lags its declared state.
pub fn verify_migration_spec(specs: &[MbSpec]) -> Result<(), Vec<SpecViolation>> {
    let mut violations = Vec::new();
    for spec in specs {
        violations.extend(check_migration_manifest(
            spec_kind_name(spec),
            declared_state_prefixes(spec),
            migration_manifest(spec),
        ));
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

/// A full deployment description: the chain plus the replication topology
/// it is asked to run on. Unlike `ChainConfig` (which pads and asserts its
/// way to a *valid* ring), this is the raw, possibly-infeasible input that
/// [`verify_deploy_spec`] vets before anything is built.
#[derive(Debug, Clone)]
pub struct DeploySpec {
    /// The middlebox stages, in chain order.
    pub middleboxes: Vec<MbSpec>,
    /// Failures to tolerate.
    pub f: usize,
    /// Number of replicas on the logical ring.
    pub ring_len: usize,
    /// Ring position whose output feeds the buffer. The protocol requires
    /// the *last* position (`ring_len - 1`): the buffer's release rule only
    /// sees commit vectors that have traversed every tail.
    pub buffer_pos: usize,
    /// State partitions per store.
    pub partitions: usize,
    /// Worker threads per replica.
    pub workers: usize,
    /// State engine the chain's stores run on, by name (`twopl` or
    /// `batched`; see `ftc_stm::EngineKind`). Kept as the raw requested
    /// string so [`verify_deploy_spec`] can reject typos with an
    /// `unknown-engine` violation instead of panicking mid-build.
    pub engine: String,
}

impl DeploySpec {
    /// A feasible deployment for `middleboxes` with failure budget `f`:
    /// ring padded to `max(len, f+1)`, buffer after the last replica,
    /// default (2PL) state engine.
    pub fn feasible(middleboxes: Vec<MbSpec>, f: usize) -> DeploySpec {
        let ring_len = middleboxes.len().max(f + 1);
        DeploySpec {
            middleboxes,
            f,
            ring_len,
            buffer_pos: ring_len.saturating_sub(1),
            partitions: 32,
            workers: 1,
            engine: ftc_stm::EngineKind::default().name().to_string(),
        }
    }

    /// Selects a state engine by name (validated by
    /// [`verify_deploy_spec`], not here).
    pub fn with_engine(mut self, engine: &str) -> DeploySpec {
        self.engine = engine.to_string();
        self
    }
}

/// One reason a [`DeploySpec`] cannot satisfy the protocol invariants, with
/// a stable machine-checkable `code` and an actionable human message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecViolation {
    /// Stable identifier (e.g. `ring-too-short`).
    pub code: &'static str,
    /// What is wrong and how to fix it.
    pub message: String,
}

impl core::fmt::Display for SpecViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{}] {}", self.code, self.message)
    }
}

/// Statically verifies that `spec`'s topology can satisfy the paper's
/// invariants *before anything runs*: every replication group needs `f+1`
/// distinct ring positions (I1), every middlebox needs a ring slot, the
/// buffer must sit after the final tail (I1/I4 — a commit vector that skips
/// a tail proves nothing), and per-partition sequencing needs at least as
/// many partitions as workers (intra-node serializability, §4.3). Returns
/// all violations, not just the first.
pub fn verify_deploy_spec(spec: &DeploySpec) -> Result<(), Vec<SpecViolation>> {
    let mut violations = Vec::new();
    let stateful: Vec<&MbSpec> = spec
        .middleboxes
        .iter()
        .filter(|m| !declared_state_prefixes(m).is_empty())
        .collect();

    if spec.middleboxes.is_empty() {
        violations.push(SpecViolation {
            code: "empty-chain",
            message: "the chain has no middleboxes; declare at least one stage".into(),
        });
    }
    if spec.ring_len < spec.f + 1 {
        violations.push(SpecViolation {
            code: "ring-too-short",
            message: format!(
                "ring of {} replica(s) cannot hold f+1 = {} copies of a state \
                 update: a single failure wipes {}; extend the ring to at \
                 least {} replicas (pad with passthrough) or lower f",
                spec.ring_len,
                spec.f + 1,
                if stateful.is_empty() {
                    "the group".to_string()
                } else {
                    format!("{}'s only copy", stateful[0].name())
                },
                spec.f + 1,
            ),
        });
    }
    if spec.ring_len < spec.middleboxes.len() {
        violations.push(SpecViolation {
            code: "ring-shorter-than-chain",
            message: format!(
                "{} middleboxes declared but only {} ring position(s): every \
                 middlebox heads its own replication group, so the ring must \
                 be at least as long as the chain",
                spec.middleboxes.len(),
                spec.ring_len,
            ),
        });
    }
    if spec.ring_len > 0 && spec.buffer_pos != spec.ring_len - 1 {
        violations.push(SpecViolation {
            code: "buffer-before-tail",
            message: format!(
                "buffer attached after ring position {} but the ring ends at \
                 {}: packets would egress without traversing the tails of \
                 positions {}..{}, so their commit vectors never prove f+1 \
                 replication; attach the buffer after position {}",
                spec.buffer_pos,
                spec.ring_len - 1,
                spec.buffer_pos + 1,
                spec.ring_len - 1,
                spec.ring_len - 1,
            ),
        });
    }
    if spec.engine.parse::<ftc_stm::EngineKind>().is_err() {
        violations.push(SpecViolation {
            code: "unknown-engine",
            message: format!(
                "`{}` is not a state engine; known engines: {}",
                spec.engine,
                ftc_stm::EngineKind::ALL
                    .iter()
                    .map(|e| e.name())
                    .collect::<Vec<_>>()
                    .join(", "),
            ),
        });
    }
    if spec.partitions < spec.workers {
        violations.push(SpecViolation {
            code: "partitions-lt-workers",
            message: format!(
                "{} worker(s) share {} state partition(s): per-partition \
                 sequence numbers cannot keep concurrent workers' updates \
                 ordered (§4.3); raise partitions to at least {}",
                spec.workers, spec.partitions, spec.workers,
            ),
        });
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_gateway_parses() {
        let specs = parse_chain(
            "firewall(deny_src=10.66.0.0/16, deny_ports=137-139) \
             -> ids(scan_threshold=8, signatures=EVIL|X-ATTACK) \
             -> monitor(sharing=2) \
             -> lb(backends=10.1.0.1|10.1.0.2) \
             -> mazu_nat(ext=203.0.113.1)",
        )
        .unwrap();
        assert_eq!(specs.len(), 5);
        assert!(matches!(specs[0], MbSpec::Firewall { ref rules } if rules.len() == 2));
        assert!(
            matches!(specs[1], MbSpec::Ids { scan_threshold: 8, ref signatures } if signatures.len() == 2)
        );
        assert!(matches!(specs[2], MbSpec::Monitor { sharing_level: 2 }));
        assert!(matches!(specs[3], MbSpec::LoadBalancer { ref backends } if backends.len() == 2));
        assert!(matches!(specs[4], MbSpec::MazuNat { .. }));
    }

    #[test]
    fn defaults_apply() {
        let specs = parse_chain("monitor -> gen -> passthrough").unwrap();
        assert!(matches!(specs[0], MbSpec::Monitor { sharing_level: 1 }));
        assert!(matches!(specs[1], MbSpec::Gen { state_size: 32 }));
        assert!(matches!(specs[2], MbSpec::Passthrough));
    }

    #[test]
    fn single_port_deny() {
        let specs = parse_chain("firewall(deny_ports=80)").unwrap();
        let MbSpec::Firewall { rules } = &specs[0] else {
            panic!()
        };
        assert_eq!(rules.len(), 1);
    }

    #[test]
    fn host_cidr_without_prefix() {
        let specs = parse_chain("firewall(deny_src=9.9.9.9)").unwrap();
        let MbSpec::Firewall { rules } = &specs[0] else {
            panic!()
        };
        assert_eq!(rules.len(), 1);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse_chain("monitor ->")
            .unwrap_err()
            .message
            .contains("empty stage"));
        assert!(parse_chain("nope")
            .unwrap_err()
            .message
            .contains("unknown middlebox"));
        assert!(parse_chain("mazu_nat")
            .unwrap_err()
            .message
            .contains("requires `ext"));
        assert!(parse_chain("monitor(sharing=abc)")
            .unwrap_err()
            .message
            .contains("not a number"));
        assert!(parse_chain("lb(backends=1.2.3)")
            .unwrap_err()
            .message
            .contains("IPv4"));
        assert!(parse_chain("firewall(deny_src=10.0.0.0/64)")
            .unwrap_err()
            .message
            .contains("prefix length"));
        assert!(parse_chain("firewall(deny_ports=70000)")
            .unwrap_err()
            .message
            .contains("not a port"));
        assert!(parse_chain("monitor(sharing)")
            .unwrap_err()
            .message
            .contains("key=value"));
        assert!(parse_chain("monitor(sharing=1")
            .unwrap_err()
            .message
            .contains("missing ')'"));
    }

    fn codes(violations: &[SpecViolation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.code).collect()
    }

    #[test]
    fn feasible_spec_passes_verification() {
        let specs = parse_chain("monitor -> ids(scan_threshold=4) -> gen").unwrap();
        verify_deploy_spec(&DeploySpec::feasible(specs, 1)).unwrap();
        let specs = parse_chain("monitor").unwrap();
        verify_deploy_spec(&DeploySpec::feasible(specs, 2)).unwrap();
    }

    #[test]
    fn ring_shorter_than_f_plus_one_is_rejected() {
        let mut spec = DeploySpec::feasible(parse_chain("monitor -> gen").unwrap(), 1);
        spec.f = 2; // 2-ring cannot hold 3 copies
        let violations = verify_deploy_spec(&spec).unwrap_err();
        assert!(codes(&violations).contains(&"ring-too-short"));
        let msg = &violations[0].message;
        assert!(msg.contains("f+1 = 3"), "actionable: {msg}");
        assert!(msg.contains("passthrough"), "suggests the fix: {msg}");
    }

    #[test]
    fn buffer_before_tail_is_rejected() {
        let mut spec = DeploySpec::feasible(parse_chain("monitor -> ids -> gen").unwrap(), 1);
        spec.buffer_pos = 1; // buffer between r1 and r2
        let violations = verify_deploy_spec(&spec).unwrap_err();
        assert_eq!(codes(&violations), vec!["buffer-before-tail"]);
        assert!(
            violations[0]
                .message
                .contains("attach the buffer after position 2"),
            "actionable: {}",
            violations[0].message
        );
    }

    #[test]
    fn ring_shorter_than_chain_is_rejected() {
        let mut spec = DeploySpec::feasible(parse_chain("monitor -> ids -> gen").unwrap(), 1);
        spec.ring_len = 2;
        spec.buffer_pos = 1;
        let violations = verify_deploy_spec(&spec).unwrap_err();
        assert!(codes(&violations).contains(&"ring-shorter-than-chain"));
    }

    #[test]
    fn partitions_fewer_than_workers_is_rejected() {
        let mut spec = DeploySpec::feasible(parse_chain("monitor").unwrap(), 1);
        spec.workers = 8;
        spec.partitions = 4;
        let violations = verify_deploy_spec(&spec).unwrap_err();
        assert_eq!(codes(&violations), vec!["partitions-lt-workers"]);
    }

    #[test]
    fn unknown_engine_is_rejected_with_known_list() {
        let spec = DeploySpec::feasible(parse_chain("monitor").unwrap(), 1).with_engine("optimist");
        let violations = verify_deploy_spec(&spec).unwrap_err();
        assert_eq!(codes(&violations), vec!["unknown-engine"]);
        let msg = &violations[0].message;
        assert!(
            msg.contains("twopl") && msg.contains("batched"),
            "lists engines: {msg}"
        );
    }

    #[test]
    fn both_engines_verify() {
        for engine in ftc_stm::EngineKind::ALL {
            let spec =
                DeploySpec::feasible(parse_chain("monitor").unwrap(), 1).with_engine(engine.name());
            verify_deploy_spec(&spec).unwrap();
        }
    }

    #[test]
    fn all_violations_are_reported_at_once() {
        let spec = DeploySpec {
            middleboxes: parse_chain("monitor -> gen").unwrap(),
            f: 3,
            ring_len: 1,
            buffer_pos: 5,
            partitions: 1,
            workers: 4,
            engine: "zpaxos".into(),
        };
        let violations = verify_deploy_spec(&spec).unwrap_err();
        let cs = codes(&violations);
        assert!(cs.contains(&"ring-too-short"));
        assert!(cs.contains(&"ring-shorter-than-chain"));
        assert!(cs.contains(&"buffer-before-tail"));
        assert!(cs.contains(&"partitions-lt-workers"));
        assert!(cs.contains(&"unknown-engine"));
    }

    #[test]
    fn every_spec_kind_has_a_declared_prefix_entry() {
        let all = parse_chain(
            "monitor -> gen -> mazu_nat(ext=1.2.3.4) -> simple_nat(ext=1.2.3.4) \
             -> ids -> lb(backends=10.0.0.1) -> firewall -> passthrough",
        )
        .unwrap();
        assert_eq!(all.len(), DECLARED_STATE_PREFIXES.len());
        for spec in &all {
            // Stateless kinds declare an (empty) entry too — a missing row
            // would silently exempt a middlebox from the analyzer.
            let name_known = DECLARED_STATE_PREFIXES
                .iter()
                .any(|(_, p)| *p == declared_state_prefixes(spec));
            assert!(name_known, "{} missing from the table", spec.name());
        }
        assert_eq!(
            declared_state_prefixes(&MbSpec::Passthrough),
            &[] as &[&str]
        );
        assert_eq!(
            declared_state_prefixes(&MbSpec::Monitor { sharing_level: 1 }),
            &["mon:"]
        );
    }

    #[test]
    fn every_declared_prefix_is_in_the_migration_manifest() {
        let all = parse_chain(
            "monitor -> gen -> mazu_nat(ext=1.2.3.4) -> simple_nat(ext=1.2.3.4) \
             -> ids -> lb(backends=10.0.0.1) -> firewall -> passthrough",
        )
        .unwrap();
        assert_eq!(all.len(), MIGRATION_MANIFEST.len());
        verify_migration_spec(&all).unwrap();
    }

    #[test]
    fn incomplete_manifest_fixture_is_rejected() {
        // The fixture middlebox: declares two state prefixes, manifests
        // only one — the skipped `conn:` prefix is exactly the stranded
        // -state bug the lint exists for.
        let violations = check_migration_manifest("leaky_nat", &["conn:", "ports:"], &["ports:"]);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].code, "migration-missing-prefix");
        assert!(
            violations[0].message.contains("strand `conn:` state"),
            "actionable: {}",
            violations[0].message
        );
    }

    #[test]
    fn unknown_manifest_prefix_is_rejected() {
        let violations = check_migration_manifest("monitor", &["mon:"], &["mon:", "ghost:"]);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].code, "migration-unknown-prefix");
    }

    #[test]
    fn parsed_chain_actually_runs() {
        use crate::middlebox::ProcCtx;
        use ftc_packet::builder::UdpPacketBuilder;
        use ftc_stm::StateStore;
        let specs = parse_chain("monitor(sharing=1) -> firewall(deny_ports=23)").unwrap();
        let store = StateStore::new(8);
        let mb = specs[0].build();
        let mut pkt = UdpPacketBuilder::new().build();
        let out = store.transaction(|txn| mb.process(&mut pkt, txn, ProcCtx::single()));
        assert_eq!(out.value, crate::Action::Forward);
    }
}
