//! A tiny chain-description language, in the spirit of Click configs.
//!
//! Chains are written as `->`-separated middlebox invocations:
//!
//! ```text
//! firewall(deny_src=10.66.0.0/16, deny_ports=137-139)
//!   -> ids(scan_threshold=16)
//!   -> monitor(sharing=2)
//!   -> lb(backends=10.1.0.1|10.1.0.2)
//!   -> mazu_nat(ext=203.0.113.1)
//! ```
//!
//! Used by the `ftc` CLI and handy in tests; [`parse_chain`] returns the
//! [`MbSpec`] list ready for `ChainConfig::new`.

use crate::firewall::{Cidr, FirewallAction, FirewallRule};
use crate::middlebox::MbSpec;
use std::net::Ipv4Addr;

/// A human-readable parse error with the offending fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "chain spec error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        message: message.into(),
    })
}

/// Parses a chain description into middlebox specs.
///
/// ```
/// let specs = ftc_mbox::parse_chain(
///     "firewall(deny_ports=23) -> monitor(sharing=2) -> mazu_nat(ext=203.0.113.1)",
/// ).unwrap();
/// assert_eq!(specs.len(), 3);
/// assert_eq!(specs[2].name(), "MazuNAT");
/// ```
pub fn parse_chain(input: &str) -> Result<Vec<MbSpec>, ParseError> {
    let mut specs = Vec::new();
    for stage in input.split("->") {
        let stage = stage.trim();
        if stage.is_empty() {
            return err("empty stage (dangling '->'?)");
        }
        specs.push(parse_stage(stage)?);
    }
    Ok(specs)
}

fn parse_stage(stage: &str) -> Result<MbSpec, ParseError> {
    let (name, args) = match stage.find('(') {
        Some(open) => {
            let Some(close) = stage.rfind(')') else {
                return err(format!("missing ')' in `{stage}`"));
            };
            if close != stage.len() - 1 {
                return err(format!("trailing characters after ')' in `{stage}`"));
            }
            (stage[..open].trim(), parse_args(&stage[open + 1..close])?)
        }
        None => (stage, Vec::new()),
    };
    build_spec(name, &args)
}

fn parse_args(s: &str) -> Result<Vec<(String, String)>, ParseError> {
    let mut out = Vec::new();
    for part in s.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let Some((k, v)) = part.split_once('=') else {
            return err(format!("argument `{part}` must be key=value"));
        };
        out.push((k.trim().to_string(), v.trim().to_string()));
    }
    Ok(out)
}

fn get<'a>(args: &'a [(String, String)], key: &str) -> Option<&'a str> {
    args.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

fn require<'a>(args: &'a [(String, String)], key: &str, mb: &str) -> Result<&'a str, ParseError> {
    get(args, key).ok_or_else(|| ParseError {
        message: format!("{mb} requires `{key}=…`"),
    })
}

fn parse_ip(v: &str) -> Result<Ipv4Addr, ParseError> {
    v.parse().map_err(|_| ParseError {
        message: format!("`{v}` is not an IPv4 address"),
    })
}

fn parse_usize(v: &str) -> Result<usize, ParseError> {
    v.parse().map_err(|_| ParseError {
        message: format!("`{v}` is not a number"),
    })
}

fn parse_port(v: &str) -> Result<u16, ParseError> {
    v.parse().map_err(|_| ParseError {
        message: format!("`{v}` is not a port (0-65535)"),
    })
}

fn parse_cidr(v: &str) -> Result<Cidr, ParseError> {
    let Some((addr, len)) = v.split_once('/') else {
        return Ok(Cidr::new(parse_ip(v)?, 32));
    };
    let len: u8 = len.parse().map_err(|_| ParseError {
        message: format!("bad prefix length in `{v}`"),
    })?;
    if len > 32 {
        return err(format!("prefix length {len} > 32 in `{v}`"));
    }
    Ok(Cidr::new(parse_ip(addr)?, len))
}

fn build_spec(name: &str, args: &[(String, String)]) -> Result<MbSpec, ParseError> {
    match name {
        "monitor" => Ok(MbSpec::Monitor {
            sharing_level: get(args, "sharing")
                .map(parse_usize)
                .transpose()?
                .unwrap_or(1),
        }),
        "gen" => Ok(MbSpec::Gen {
            state_size: get(args, "state")
                .map(parse_usize)
                .transpose()?
                .unwrap_or(32),
        }),
        "mazu_nat" => Ok(MbSpec::MazuNat {
            external_ip: parse_ip(require(args, "ext", "mazu_nat")?)?,
        }),
        "simple_nat" => Ok(MbSpec::SimpleNat {
            external_ip: parse_ip(require(args, "ext", "simple_nat")?)?,
        }),
        "ids" => Ok(MbSpec::Ids {
            scan_threshold: get(args, "scan_threshold")
                .map(parse_usize)
                .transpose()?
                .unwrap_or(16),
            signatures: get(args, "signatures")
                .map(|v| v.split('|').map(|s| s.as_bytes().to_vec()).collect())
                .unwrap_or_default(),
        }),
        "lb" => {
            let backends = require(args, "backends", "lb")?
                .split('|')
                .map(parse_ip)
                .collect::<Result<Vec<_>, _>>()?;
            if backends.is_empty() {
                return err("lb needs at least one backend");
            }
            Ok(MbSpec::LoadBalancer { backends })
        }
        "firewall" => {
            let mut rules = Vec::new();
            for (k, v) in args {
                match k.as_str() {
                    "deny_src" => rules.push(FirewallRule::deny_src(parse_cidr(v)?)),
                    "deny_ports" => {
                        let (lo, hi) = match v.split_once('-') {
                            Some((a, b)) => (parse_port(a)?, parse_port(b)?),
                            None => {
                                let p = parse_port(v)?;
                                (p, p)
                            }
                        };
                        if lo > hi {
                            return err(format!("empty port range `{v}`"));
                        }
                        rules.push(FirewallRule::deny_dst_ports(lo..=hi));
                    }
                    "allow_src" => rules.push(FirewallRule {
                        src: parse_cidr(v)?,
                        dst: Cidr::any(),
                        protocol: None,
                        dst_ports: None,
                        action: FirewallAction::Permit,
                    }),
                    other => return err(format!("firewall: unknown argument `{other}`")),
                }
            }
            Ok(MbSpec::Firewall { rules })
        }
        "passthrough" => Ok(MbSpec::Passthrough),
        other => err(format!(
            "unknown middlebox `{other}` (expected monitor, gen, mazu_nat, \
             simple_nat, ids, lb, firewall, passthrough)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_gateway_parses() {
        let specs = parse_chain(
            "firewall(deny_src=10.66.0.0/16, deny_ports=137-139) \
             -> ids(scan_threshold=8, signatures=EVIL|X-ATTACK) \
             -> monitor(sharing=2) \
             -> lb(backends=10.1.0.1|10.1.0.2) \
             -> mazu_nat(ext=203.0.113.1)",
        )
        .unwrap();
        assert_eq!(specs.len(), 5);
        assert!(matches!(specs[0], MbSpec::Firewall { ref rules } if rules.len() == 2));
        assert!(
            matches!(specs[1], MbSpec::Ids { scan_threshold: 8, ref signatures } if signatures.len() == 2)
        );
        assert!(matches!(specs[2], MbSpec::Monitor { sharing_level: 2 }));
        assert!(matches!(specs[3], MbSpec::LoadBalancer { ref backends } if backends.len() == 2));
        assert!(matches!(specs[4], MbSpec::MazuNat { .. }));
    }

    #[test]
    fn defaults_apply() {
        let specs = parse_chain("monitor -> gen -> passthrough").unwrap();
        assert!(matches!(specs[0], MbSpec::Monitor { sharing_level: 1 }));
        assert!(matches!(specs[1], MbSpec::Gen { state_size: 32 }));
        assert!(matches!(specs[2], MbSpec::Passthrough));
    }

    #[test]
    fn single_port_deny() {
        let specs = parse_chain("firewall(deny_ports=80)").unwrap();
        let MbSpec::Firewall { rules } = &specs[0] else {
            panic!()
        };
        assert_eq!(rules.len(), 1);
    }

    #[test]
    fn host_cidr_without_prefix() {
        let specs = parse_chain("firewall(deny_src=9.9.9.9)").unwrap();
        let MbSpec::Firewall { rules } = &specs[0] else {
            panic!()
        };
        assert_eq!(rules.len(), 1);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse_chain("monitor ->")
            .unwrap_err()
            .message
            .contains("empty stage"));
        assert!(parse_chain("nope")
            .unwrap_err()
            .message
            .contains("unknown middlebox"));
        assert!(parse_chain("mazu_nat")
            .unwrap_err()
            .message
            .contains("requires `ext"));
        assert!(parse_chain("monitor(sharing=abc)")
            .unwrap_err()
            .message
            .contains("not a number"));
        assert!(parse_chain("lb(backends=1.2.3)")
            .unwrap_err()
            .message
            .contains("IPv4"));
        assert!(parse_chain("firewall(deny_src=10.0.0.0/64)")
            .unwrap_err()
            .message
            .contains("prefix length"));
        assert!(parse_chain("firewall(deny_ports=70000)")
            .unwrap_err()
            .message
            .contains("not a port"));
        assert!(parse_chain("monitor(sharing)")
            .unwrap_err()
            .message
            .contains("key=value"));
        assert!(parse_chain("monitor(sharing=1")
            .unwrap_err()
            .message
            .contains("missing ')'"));
    }

    #[test]
    fn parsed_chain_actually_runs() {
        use crate::middlebox::ProcCtx;
        use ftc_packet::builder::UdpPacketBuilder;
        use ftc_stm::StateStore;
        let specs = parse_chain("monitor(sharing=1) -> firewall(deny_ports=23)").unwrap();
        let store = StateStore::new(8);
        let mb = specs[0].build();
        let mut pkt = UdpPacketBuilder::new().build();
        let out = store.transaction(|txn| mb.process(&mut pkt, txn, ProcCtx::single()));
        assert_eq!(out.value, crate::Action::Forward);
    }
}
