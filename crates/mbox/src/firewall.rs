//! A stateless firewall (Table 1: "Firewall — stateless").

use crate::middlebox::{Action, Middlebox, ProcCtx};
use ftc_packet::Packet;
use ftc_stm::{StateTxn, TxnError};
use std::net::Ipv4Addr;
use std::ops::RangeInclusive;

/// Permit or deny.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FirewallAction {
    /// Let the packet through.
    Permit,
    /// Filter the packet.
    Deny,
}

/// An IPv4 prefix match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cidr {
    addr: u32,
    mask: u32,
}

impl Cidr {
    /// Builds a prefix like `Cidr::new("10.0.0.0", 8)`.
    pub fn new(addr: Ipv4Addr, prefix_len: u8) -> Cidr {
        assert!(prefix_len <= 32);
        let mask = if prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - prefix_len)
        };
        Cidr {
            addr: u32::from(addr) & mask,
            mask,
        }
    }

    /// Matches every address.
    pub fn any() -> Cidr {
        Cidr { addr: 0, mask: 0 }
    }

    /// True if `ip` falls in this prefix.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        u32::from(ip) & self.mask == self.addr
    }
}

/// One match rule; first matching rule wins.
#[derive(Debug, Clone)]
pub struct FirewallRule {
    /// Source prefix.
    pub src: Cidr,
    /// Destination prefix.
    pub dst: Cidr,
    /// Protocol to match (None = any).
    pub protocol: Option<u8>,
    /// Destination port range (None = any).
    pub dst_ports: Option<RangeInclusive<u16>>,
    /// What to do on match.
    pub action: FirewallAction,
}

impl FirewallRule {
    /// A deny-all-from-prefix rule.
    pub fn deny_src(src: Cidr) -> FirewallRule {
        FirewallRule {
            src,
            dst: Cidr::any(),
            protocol: None,
            dst_ports: None,
            action: FirewallAction::Deny,
        }
    }

    /// A deny rule for a destination port range.
    pub fn deny_dst_ports(ports: RangeInclusive<u16>) -> FirewallRule {
        FirewallRule {
            src: Cidr::any(),
            dst: Cidr::any(),
            protocol: None,
            dst_ports: Some(ports),
            action: FirewallAction::Deny,
        }
    }
}

/// A stateless packet-filtering firewall. Unmatched packets are permitted.
#[derive(Debug, Default)]
pub struct Firewall {
    rules: Vec<FirewallRule>,
}

impl Firewall {
    /// Creates a firewall with the given rules.
    pub fn new(rules: Vec<FirewallRule>) -> Firewall {
        Firewall { rules }
    }

    /// Evaluates the rules for a flow.
    pub fn evaluate(&self, key: &ftc_packet::FlowKey) -> FirewallAction {
        for r in &self.rules {
            if !r.src.contains(key.src_ip) || !r.dst.contains(key.dst_ip) {
                continue;
            }
            if let Some(p) = r.protocol {
                if p != key.protocol {
                    continue;
                }
            }
            if let Some(ports) = &r.dst_ports {
                if !ports.contains(&key.dst_port) {
                    continue;
                }
            }
            return r.action;
        }
        FirewallAction::Permit
    }
}

impl Middlebox for Firewall {
    fn name(&self) -> &str {
        "Firewall"
    }

    fn process(
        &self,
        pkt: &mut Packet,
        _txn: &mut dyn StateTxn,
        _ctx: ProcCtx,
    ) -> Result<Action, TxnError> {
        let Ok(key) = pkt.flow_key() else {
            // Unparseable L4: drop defensively.
            return Ok(Action::Drop);
        };
        Ok(match self.evaluate(&key) {
            FirewallAction::Permit => Action::Forward,
            FirewallAction::Deny => Action::Drop,
        })
    }

    fn is_stateful(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::middlebox::ProcCtx;
    use ftc_packet::builder::UdpPacketBuilder;
    use ftc_stm::StateStore;

    fn run(fw: &Firewall, src: Ipv4Addr, dst: Ipv4Addr, dst_port: u16) -> Action {
        let store = StateStore::new(4);
        let mut pkt = UdpPacketBuilder::new()
            .src(src, 1000)
            .dst(dst, dst_port)
            .build();
        let out = store.transaction(|txn| fw.process(&mut pkt, txn, ProcCtx::single()));
        assert!(out.log.is_none(), "stateless firewall must not write state");
        out.value
    }

    #[test]
    fn default_permit() {
        let fw = Firewall::new(vec![]);
        assert_eq!(
            run(
                &fw,
                Ipv4Addr::new(1, 2, 3, 4),
                Ipv4Addr::new(5, 6, 7, 8),
                80
            ),
            Action::Forward
        );
    }

    #[test]
    fn deny_by_source_prefix() {
        let fw = Firewall::new(vec![FirewallRule::deny_src(Cidr::new(
            Ipv4Addr::new(10, 66, 0, 0),
            16,
        ))]);
        assert_eq!(
            run(
                &fw,
                Ipv4Addr::new(10, 66, 9, 9),
                Ipv4Addr::new(8, 8, 8, 8),
                80
            ),
            Action::Drop
        );
        assert_eq!(
            run(
                &fw,
                Ipv4Addr::new(10, 67, 9, 9),
                Ipv4Addr::new(8, 8, 8, 8),
                80
            ),
            Action::Forward
        );
    }

    #[test]
    fn deny_by_port_range() {
        let fw = Firewall::new(vec![FirewallRule::deny_dst_ports(137..=139)]);
        assert_eq!(
            run(
                &fw,
                Ipv4Addr::new(1, 1, 1, 1),
                Ipv4Addr::new(2, 2, 2, 2),
                138
            ),
            Action::Drop
        );
        assert_eq!(
            run(
                &fw,
                Ipv4Addr::new(1, 1, 1, 1),
                Ipv4Addr::new(2, 2, 2, 2),
                140
            ),
            Action::Forward
        );
    }

    #[test]
    fn first_match_wins() {
        let permit_then_deny = Firewall::new(vec![
            FirewallRule {
                src: Cidr::new(Ipv4Addr::new(10, 0, 0, 0), 8),
                dst: Cidr::any(),
                protocol: None,
                dst_ports: None,
                action: FirewallAction::Permit,
            },
            FirewallRule::deny_src(Cidr::any()),
        ]);
        assert_eq!(
            run(
                &permit_then_deny,
                Ipv4Addr::new(10, 1, 1, 1),
                Ipv4Addr::new(2, 2, 2, 2),
                80
            ),
            Action::Forward
        );
        assert_eq!(
            run(
                &permit_then_deny,
                Ipv4Addr::new(11, 1, 1, 1),
                Ipv4Addr::new(2, 2, 2, 2),
                80
            ),
            Action::Drop
        );
    }

    #[test]
    fn cidr_edges() {
        assert!(Cidr::any().contains(Ipv4Addr::new(255, 255, 255, 255)));
        let host = Cidr::new(Ipv4Addr::new(9, 9, 9, 9), 32);
        assert!(host.contains(Ipv4Addr::new(9, 9, 9, 9)));
        assert!(!host.contains(Ipv4Addr::new(9, 9, 9, 8)));
    }
}
