//! Middleboxes and a Click-like element framework.
//!
//! The paper implements its middleboxes on Click [34]; this crate provides
//! the equivalent building blocks in Rust:
//!
//! * [`middlebox`] — the [`Middlebox`] trait: packet processing inside an
//!   FTC packet transaction, plus [`MbSpec`], a cloneable description the
//!   orchestrator uses to instantiate fresh middlebox instances during
//!   failure recovery.
//! * [`element`] — a lightweight Click-style push-element graph for
//!   composing packet-processing pipelines (used by examples and by the
//!   stateless portions of middleboxes).
//! * [`spec_lang`] — the chain-description language plus the static
//!   deployment verifier ([`verify_deploy_spec`]) that rejects topologies
//!   whose replication invariants are unsatisfiable before anything runs.
//! * The Table-1 middleboxes:
//!   [`nat::MazuNat`] (the core of a commercial NAT — read-heavy),
//!   [`nat::SimpleNat`] (basic NAT), [`monitor::Monitor`] (read/write-heavy
//!   counters with a *sharing level* knob), [`gen::Gen`] (write-heavy with a
//!   *state size* knob), [`firewall::Firewall`] (stateless), and a bonus
//!   connection-persistent [`lb::LoadBalancer`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod element;
pub mod firewall;
pub mod gen;
pub mod ids;
pub mod lb;
pub mod middlebox;
pub mod monitor;
pub mod nat;
pub mod spec_lang;

pub use firewall::{Firewall, FirewallAction, FirewallRule};
pub use gen::Gen;
pub use ids::Ids;
pub use lb::LoadBalancer;
pub use middlebox::{Action, MbSpec, Middlebox, ProcCtx};
pub use monitor::Monitor;
pub use nat::{MazuNat, SimpleNat};
pub use spec_lang::{
    check_migration_manifest, declared_state_prefixes, migration_manifest, parse_chain,
    spec_kind_name, verify_deploy_spec, verify_migration_spec, DeploySpec, SpecViolation,
    DECLARED_STATE_PREFIXES, MIGRATION_MANIFEST,
};
