//! The Gen middlebox: synthetic write-heavy state generator.
//!
//! "Gen represents a write-heavy middlebox that takes a state size
//! parameter, which allows us to test the impact of a middlebox's state
//! size on performance" (paper §7.1, used by Fig. 5). Gen performs no reads
//! and one write of `state_size` bytes per packet.

use crate::middlebox::{Action, Middlebox, ProcCtx};
use bytes::Bytes;
use ftc_packet::Packet;
use ftc_stm::{StateTxn, TxnError};

/// Write-heavy synthetic middlebox.
#[derive(Debug)]
pub struct Gen {
    state_size: usize,
}

impl Gen {
    /// Creates a Gen writing `state_size` bytes of state per packet.
    pub fn new(state_size: usize) -> Gen {
        assert!(state_size >= 1, "state size must be at least 1 byte");
        Gen { state_size }
    }

    /// The configured per-packet state size.
    pub fn state_size(&self) -> usize {
        self.state_size
    }
}

impl Middlebox for Gen {
    fn name(&self) -> &str {
        "Gen"
    }

    fn process(
        &self,
        pkt: &mut Packet,
        txn: &mut dyn StateTxn,
        ctx: ProcCtx,
    ) -> Result<Action, TxnError> {
        // Derive deterministic state bytes from the packet so replicas can
        // verify content equality in tests.
        let seedling = pkt
            .flow_key()
            .map(|k| k.hash64())
            .unwrap_or(0)
            .wrapping_add(pkt.wire_len() as u64);
        let mut value = Vec::with_capacity(self.state_size);
        let mut x = seedling | 1;
        while value.len() < self.state_size {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            value.extend_from_slice(&x.to_be_bytes());
        }
        value.truncate(self.state_size);
        let key = Bytes::from(format!("gen:w{}", ctx.worker));
        txn.write(key, Bytes::from(value))?;
        Ok(Action::Forward)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_packet::builder::UdpPacketBuilder;
    use ftc_stm::StateStore;

    #[test]
    fn writes_exactly_state_size_bytes() {
        for size in [1usize, 16, 64, 128, 256] {
            let store = StateStore::new(8);
            let gen = Gen::new(size);
            let mut pkt = UdpPacketBuilder::new().build();
            let out = store.transaction(|txn| gen.process(&mut pkt, txn, ProcCtx::single()));
            let log = out.log.expect("gen writes every packet");
            assert_eq!(log.writes.len(), 1);
            assert_eq!(log.writes[0].value.len(), size);
            assert_eq!(store.peek(b"gen:w0").unwrap().len(), size);
        }
    }

    #[test]
    fn no_reads_single_partition_touched() {
        let store = StateStore::new(32);
        let gen = Gen::new(64);
        let mut pkt = UdpPacketBuilder::new().build();
        let out = store.transaction(|txn| gen.process(&mut pkt, txn, ProcCtx::single()));
        let log = out.log.unwrap();
        assert_eq!(log.deps.len(), 1, "write-only txn touches one partition");
    }

    #[test]
    fn value_is_deterministic_per_packet() {
        let store = StateStore::new(8);
        let gen = Gen::new(32);
        let mut a = UdpPacketBuilder::new().build();
        let out1 = store.transaction(|txn| gen.process(&mut a, txn, ProcCtx::single()));
        let mut b = UdpPacketBuilder::new().build();
        let out2 = store.transaction(|txn| gen.process(&mut b, txn, ProcCtx::single()));
        assert_eq!(
            out1.log.unwrap().writes[0].value,
            out2.log.unwrap().writes[0].value,
            "same packet bytes produce the same state"
        );
    }
}
