//! A connection-persistent L4 load balancer.
//!
//! The paper repeatedly uses the load balancer as its motivating example of
//! shared middlebox state: "a load balancer and a NAT ensure connection
//! persistence (i.e., a connection is always directed to a unique
//! destination) while accessing a shared flow table" (§3.2). This is that
//! middlebox: new connections pick a backend round-robin from a shared
//! counter; established connections stick to their backend.

use crate::middlebox::{Action, Middlebox, ProcCtx};
use crate::nat::rewrite_dst;
use bytes::Bytes;
use ftc_packet::{FlowKey, Packet};
use ftc_stm::{StateTxn, TxnError};
use std::net::Ipv4Addr;

/// Round-robin, connection-persistent load balancer.
#[derive(Debug)]
pub struct LoadBalancer {
    backends: Vec<Ipv4Addr>,
}

impl LoadBalancer {
    /// Creates a balancer over the given backends.
    pub fn new(backends: Vec<Ipv4Addr>) -> LoadBalancer {
        assert!(!backends.is_empty(), "need at least one backend");
        LoadBalancer { backends }
    }

    fn conn_key(key: &FlowKey) -> Bytes {
        Bytes::from(format!("lb:conn:{key}"))
    }
}

/// Shared round-robin cursor key.
const RR_KEY: &[u8] = b"lb:rr";

impl Middlebox for LoadBalancer {
    fn name(&self) -> &str {
        "LoadBalancer"
    }

    fn process(
        &self,
        pkt: &mut Packet,
        txn: &mut dyn StateTxn,
        _ctx: ProcCtx,
    ) -> Result<Action, TxnError> {
        let Ok(key) = pkt.flow_key() else {
            return Ok(Action::Drop);
        };
        let ckey = Self::conn_key(&key);
        let backend_idx = match txn.read_u64(&ckey)? {
            Some(idx) => idx as usize,
            None => {
                let rr = txn.read_u64(RR_KEY)?.unwrap_or(0);
                txn.write_u64(Bytes::from_static(RR_KEY), rr + 1)?;
                let idx = (rr % self.backends.len() as u64) as usize;
                txn.write_u64(ckey, idx as u64)?;
                idx
            }
        };
        let backend = self.backends[backend_idx % self.backends.len()];
        if rewrite_dst(pkt, backend, key.dst_port).is_err() {
            return Ok(Action::Drop);
        }
        Ok(Action::Forward)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_packet::builder::UdpPacketBuilder;
    use ftc_stm::StateStore;

    fn backends() -> Vec<Ipv4Addr> {
        vec![
            Ipv4Addr::new(10, 1, 0, 1),
            Ipv4Addr::new(10, 1, 0, 2),
            Ipv4Addr::new(10, 1, 0, 3),
        ]
    }

    fn client_pkt(port: u16) -> Packet {
        UdpPacketBuilder::new()
            .src(Ipv4Addr::new(172, 16, 0, 9), port)
            .dst(Ipv4Addr::new(203, 0, 113, 80), 80)
            .build()
    }

    #[test]
    fn new_connections_round_robin() {
        let store = StateStore::new(32);
        let lb = LoadBalancer::new(backends());
        let mut seen = Vec::new();
        for port in 0..6 {
            let mut pkt = client_pkt(20_000 + port);
            store.transaction(|txn| lb.process(&mut pkt, txn, ProcCtx::single()));
            seen.push(pkt.flow_key().unwrap().dst_ip);
        }
        assert_eq!(&seen[0..3], &backends()[..]);
        assert_eq!(&seen[3..6], &backends()[..], "cursor wraps");
    }

    #[test]
    fn connection_persistence() {
        let store = StateStore::new(32);
        let lb = LoadBalancer::new(backends());
        let mut first = client_pkt(31_000);
        store.transaction(|txn| lb.process(&mut first, txn, ProcCtx::single()));
        let chosen = first.flow_key().unwrap().dst_ip;
        for _ in 0..10 {
            let mut pkt = client_pkt(31_000);
            let out = store.transaction(|txn| lb.process(&mut pkt, txn, ProcCtx::single()));
            assert_eq!(pkt.flow_key().unwrap().dst_ip, chosen);
            assert!(out.log.is_none(), "established connection is read-only");
        }
    }

    #[test]
    fn concurrent_new_flows_balance_exactly() {
        use std::collections::HashMap;
        use std::sync::Arc;
        let store = Arc::new(StateStore::new(32));
        let lb = Arc::new(LoadBalancer::new(backends()));
        let mut handles = Vec::new();
        for t in 0..3 {
            let store = Arc::clone(&store);
            let lb = Arc::clone(&lb);
            handles.push(std::thread::spawn(move || {
                let mut picks = Vec::new();
                for i in 0..60u16 {
                    let mut pkt = client_pkt(40_000 + t * 1000 + i);
                    store.transaction(|txn| lb.process(&mut pkt, txn, ProcCtx::single()));
                    picks.push(pkt.flow_key().unwrap().dst_ip);
                }
                picks
            }));
        }
        let mut counts: HashMap<Ipv4Addr, usize> = HashMap::new();
        for h in handles {
            for ip in h.join().unwrap() {
                *counts.entry(ip).or_default() += 1;
            }
        }
        // 180 distinct flows, shared round-robin counter: exact 60/60/60.
        assert_eq!(counts.len(), 3);
        assert!(counts.values().all(|&c| c == 60), "counts: {counts:?}");
    }

    #[test]
    #[should_panic(expected = "at least one backend")]
    fn empty_backends_rejected() {
        LoadBalancer::new(vec![]);
    }
}
