//! The Monitor middlebox: read/write-heavy shared counters.
//!
//! "Monitor is a read/write heavy middlebox that counts the number of
//! packets in a flow or across flows. It takes a *sharing level* parameter
//! that specifies the number of threads sharing the same state variable"
//! (paper §7.1). With sharing level 1 no state is shared between threads;
//! with sharing level = thread count all threads contend on one counter.

use crate::middlebox::{Action, Middlebox, ProcCtx};
use bytes::Bytes;
use ftc_packet::Packet;
use ftc_stm::{StateTxn, TxnError};

/// Packet/byte counting middlebox with configurable state sharing.
#[derive(Debug)]
pub struct Monitor {
    sharing_level: usize,
    per_flow: bool,
}

impl Monitor {
    /// Creates a monitor where groups of `sharing_level` worker threads
    /// share one counter variable.
    pub fn new(sharing_level: usize) -> Monitor {
        assert!(sharing_level >= 1, "sharing level must be at least 1");
        Monitor {
            sharing_level,
            per_flow: false,
        }
    }

    /// Additionally counts packets **per flow** (Table 1: Monitor "counts
    /// the number of packets in a flow or across flows"). Per-flow counters
    /// are partitionable state — only one thread touches each — so they add
    /// writes without adding contention.
    pub fn with_per_flow(mut self) -> Monitor {
        self.per_flow = true;
        self
    }

    /// The counter key a given worker updates.
    pub fn counter_key(&self, worker: usize) -> Bytes {
        let group = worker / self.sharing_level;
        Bytes::from(format!("mon:packets:g{group}"))
    }

    /// The per-flow counter key.
    pub fn flow_key_counter(key: &ftc_packet::FlowKey) -> Bytes {
        Bytes::from(format!("mon:flow:{key}"))
    }
}

impl Middlebox for Monitor {
    fn name(&self) -> &str {
        "Monitor"
    }

    fn process(
        &self,
        pkt: &mut Packet,
        txn: &mut dyn StateTxn,
        ctx: ProcCtx,
    ) -> Result<Action, TxnError> {
        // Shared group counter: one read + one write per packet.
        let key = self.counter_key(ctx.worker);
        let count = txn.read_u64(&key)?.unwrap_or(0);
        txn.write_u64(key, count + 1)?;
        // Byte counter in the same group variable family.
        let bytes_key = Bytes::from(format!("mon:bytes:g{}", ctx.worker / self.sharing_level));
        let total = txn.read_u64(&bytes_key)?.unwrap_or(0);
        txn.write_u64(bytes_key, total + pkt.wire_len() as u64)?;
        // Optional per-flow counter (partitionable state).
        if self.per_flow {
            if let Ok(flow) = pkt.flow_key() {
                let fk = Self::flow_key_counter(&flow);
                let c = txn.read_u64(&fk)?.unwrap_or(0);
                txn.write_u64(fk, c + 1)?;
            }
        }
        Ok(Action::Forward)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_packet::builder::UdpPacketBuilder;
    use ftc_stm::StateStore;
    use std::sync::Arc;

    #[test]
    fn counts_packets_per_group() {
        let store = StateStore::new(32);
        let mon = Monitor::new(2); // workers {0,1} share g0; {2,3} share g1
        for worker in 0..4 {
            for _ in 0..5 {
                let mut pkt = UdpPacketBuilder::new().build();
                let out = store
                    .transaction(|txn| mon.process(&mut pkt, txn, ProcCtx { worker, workers: 4 }));
                assert_eq!(out.value, Action::Forward);
                assert!(out.log.is_some(), "monitor writes per packet");
            }
        }
        assert_eq!(store.peek_u64(b"mon:packets:g0"), Some(10));
        assert_eq!(store.peek_u64(b"mon:packets:g1"), Some(10));
    }

    #[test]
    fn byte_counter_tracks_wire_len() {
        let store = StateStore::new(32);
        let mon = Monitor::new(1);
        let mut pkt = UdpPacketBuilder::new().frame_len(256).build();
        store.transaction(|txn| mon.process(&mut pkt, txn, ProcCtx::single()));
        assert_eq!(store.peek_u64(b"mon:bytes:g0"), Some(256));
    }

    #[test]
    fn sharing_level_full_contention_is_correct() {
        // All 4 workers share one counter; concurrent increments must not
        // lose updates (the transactional guarantee the paper leans on).
        let store = Arc::new(StateStore::new(32));
        let mon = Arc::new(Monitor::new(4));
        let mut handles = Vec::new();
        for worker in 0..4 {
            let store = Arc::clone(&store);
            let mon = Arc::clone(&mon);
            handles.push(std::thread::spawn(move || {
                for _ in 0..250 {
                    let mut pkt = UdpPacketBuilder::new().build();
                    store.transaction(|txn| {
                        mon.process(&mut pkt, txn, ProcCtx { worker, workers: 4 })
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.peek_u64(b"mon:packets:g0"), Some(1000));
    }

    #[test]
    #[should_panic(expected = "sharing level")]
    fn zero_sharing_level_rejected() {
        Monitor::new(0);
    }

    #[test]
    fn per_flow_mode_counts_each_flow() {
        let store = StateStore::new(32);
        let mon = Monitor::new(1).with_per_flow();
        let mk = |port: u16| {
            UdpPacketBuilder::new()
                .src(std::net::Ipv4Addr::new(10, 0, 0, 9), port)
                .dst(std::net::Ipv4Addr::new(10, 1, 1, 1), 80)
                .build()
        };
        for _ in 0..3 {
            let mut p = mk(1000);
            store.transaction(|txn| mon.process(&mut p, txn, ProcCtx::single()));
        }
        let mut q = mk(2000);
        store.transaction(|txn| mon.process(&mut q, txn, ProcCtx::single()));
        let flow_a = Monitor::flow_key_counter(&mk(1000).flow_key().unwrap());
        let flow_b = Monitor::flow_key_counter(&mk(2000).flow_key().unwrap());
        assert_eq!(store.peek_u64(&flow_a), Some(3));
        assert_eq!(store.peek_u64(&flow_b), Some(1));
        assert_eq!(store.peek_u64(b"mon:packets:g0"), Some(4));
    }
}
