//! An intrusion detection system middlebox.
//!
//! The paper's canonical chain is "an intrusion detection system, a
//! firewall, and a network address translator" (§1), and its example of
//! *shared* middlebox state is "port-counts in an intrusion detection
//! system" (§2). This IDS implements both classic detections over the FTC
//! state API, so its verdicts survive failover:
//!
//! * **Port-scan detection** — per-source tracking of distinct destination
//!   ports; a source contacting more than `scan_threshold` ports is
//!   blocked (a per-flow-ish state pattern).
//! * **Signature matching** — payload byte patterns; matches increment a
//!   *shared* alert counter (the §2 shared-variable pattern) and drop the
//!   packet.

use crate::middlebox::{Action, Middlebox, ProcCtx};
use bytes::Bytes;
use ftc_packet::{l4, Packet};
use ftc_stm::{StateTxn, TxnError};
use std::net::Ipv4Addr;

/// Maximum distinct ports remembered per source (bounded state).
const MAX_TRACKED_PORTS: usize = 32;

/// Signature/port-scan intrusion detection.
#[derive(Debug)]
pub struct Ids {
    scan_threshold: usize,
    signatures: Vec<Vec<u8>>,
}

/// Shared alert counter key — all workers contend on this variable.
pub const ALERTS_KEY: &[u8] = b"ids:alerts";

impl Ids {
    /// Creates an IDS that blocks sources contacting more than
    /// `scan_threshold` distinct ports and drops packets matching any of
    /// `signatures`.
    pub fn new(scan_threshold: usize, signatures: Vec<Vec<u8>>) -> Ids {
        assert!(scan_threshold >= 1);
        Ids {
            scan_threshold,
            signatures,
        }
    }

    fn ports_key(src: Ipv4Addr) -> Bytes {
        Bytes::from(format!("ids:ports:{src}"))
    }

    fn blocked_key(src: Ipv4Addr) -> Bytes {
        Bytes::from(format!("ids:blocked:{src}"))
    }

    /// Decodes the tracked port set (2 bytes per port, big endian).
    fn decode_ports(v: &[u8]) -> Vec<u16> {
        v.chunks_exact(2)
            .map(|c| u16::from_be_bytes([c[0], c[1]]))
            .collect()
    }

    fn encode_ports(ports: &[u16]) -> Bytes {
        let mut out = Vec::with_capacity(ports.len() * 2);
        for p in ports {
            out.extend_from_slice(&p.to_be_bytes());
        }
        Bytes::from(out)
    }

    fn payload_matches(&self, payload: &[u8]) -> bool {
        self.signatures
            .iter()
            .any(|sig| !sig.is_empty() && payload.windows(sig.len()).any(|w| w == &sig[..]))
    }
}

impl Middlebox for Ids {
    fn name(&self) -> &str {
        "IDS"
    }

    fn process(
        &self,
        pkt: &mut Packet,
        txn: &mut dyn StateTxn,
        _ctx: ProcCtx,
    ) -> Result<Action, TxnError> {
        let Ok(key) = pkt.flow_key() else {
            return Ok(Action::Drop);
        };

        // 1. Previously flagged scanners stay blocked.
        let bkey = Self::blocked_key(key.src_ip);
        if txn.read(&bkey)?.is_some() {
            return Ok(Action::Drop);
        }

        // 2. Signature scan over the application payload.
        if !self.signatures.is_empty() {
            let payload = pkt
                .l4()
                .ok()
                .and_then(|l4| match key.protocol {
                    ftc_packet::ip::PROTO_UDP => l4.get(l4::UDP_HEADER_LEN..),
                    ftc_packet::ip::PROTO_TCP => l4.get(l4::TCP_HEADER_LEN..),
                    _ => None,
                })
                .map(|p| p.to_vec());
            if let Some(payload) = payload {
                if self.payload_matches(&payload) {
                    // Shared alert counter: the §2 contention pattern.
                    let alerts = txn.read_u64(ALERTS_KEY)?.unwrap_or(0);
                    txn.write_u64(Bytes::from_static(ALERTS_KEY), alerts + 1)?;
                    return Ok(Action::Drop);
                }
            }
        }

        // 3. Port-scan tracking (ports only exist for TCP/UDP).
        if key.dst_port != 0 {
            let pkey = Self::ports_key(key.src_ip);
            let mut ports = txn
                .read(&pkey)?
                .map(|v| Self::decode_ports(&v))
                .unwrap_or_default();
            if !ports.contains(&key.dst_port) {
                ports.push(key.dst_port);
                ports.truncate(MAX_TRACKED_PORTS);
                if ports.len() > self.scan_threshold {
                    txn.write(bkey, Bytes::from_static(b"1"))?;
                    txn.delete(pkey)?;
                    return Ok(Action::Drop);
                }
                txn.write(pkey, Self::encode_ports(&ports))?;
            }
        }
        Ok(Action::Forward)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_packet::builder::UdpPacketBuilder;
    use ftc_stm::StateStore;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 66, 6, 6);

    fn run(store: &StateStore, ids: &Ids, pkt: &mut Packet) -> Action {
        store
            .transaction(|txn| ids.process(pkt, txn, ProcCtx::single()))
            .value
    }

    fn to_port(port: u16) -> Packet {
        UdpPacketBuilder::new()
            .src(SRC, 40000)
            .dst(Ipv4Addr::new(10, 1, 1, 1), port)
            .build()
    }

    #[test]
    fn port_scanner_gets_blocked() {
        let store = StateStore::new(32);
        let ids = Ids::new(5, vec![]);
        // 5 distinct ports pass…
        for p in 1..=5 {
            assert_eq!(
                run(&store, &ids, &mut to_port(p)),
                Action::Forward,
                "port {p}"
            );
        }
        // …the 6th crosses the threshold and is dropped…
        assert_eq!(run(&store, &ids, &mut to_port(6)), Action::Drop);
        // …and the source stays blocked, even on previously-allowed ports.
        assert_eq!(run(&store, &ids, &mut to_port(1)), Action::Drop);
        assert!(store
            .peek(format!("ids:blocked:{SRC}").as_bytes())
            .is_some());
    }

    #[test]
    fn repeat_ports_do_not_count_towards_the_scan() {
        let store = StateStore::new(32);
        let ids = Ids::new(3, vec![]);
        for _ in 0..20 {
            assert_eq!(run(&store, &ids, &mut to_port(80)), Action::Forward);
        }
        // Repeats are read-mostly: only the first write recorded the port.
        assert_eq!(run(&store, &ids, &mut to_port(443)), Action::Forward);
    }

    #[test]
    fn signature_match_drops_and_counts() {
        let store = StateStore::new(32);
        let ids = Ids::new(100, vec![b"EVIL".to_vec()]);
        let mut bad = UdpPacketBuilder::new()
            .src(SRC, 40000)
            .dst(Ipv4Addr::new(10, 1, 1, 1), 80)
            .payload_len(32)
            .build();
        {
            let l4 = bad.l4_mut().unwrap();
            l4[l4::UDP_HEADER_LEN + 5..l4::UDP_HEADER_LEN + 9].copy_from_slice(b"EVIL");
        }
        assert_eq!(run(&store, &ids, &mut bad), Action::Drop);
        assert_eq!(store.peek_u64(ALERTS_KEY), Some(1));
        // A clean packet passes and the counter is untouched.
        assert_eq!(run(&store, &ids, &mut to_port(80)), Action::Forward);
        assert_eq!(store.peek_u64(ALERTS_KEY), Some(1));
    }

    #[test]
    fn alert_counter_is_correct_under_concurrency() {
        use std::sync::Arc;
        let store = Arc::new(StateStore::new(32));
        let ids = Arc::new(Ids::new(1000, vec![b"X-ATTACK".to_vec()]));
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = Arc::clone(&store);
            let ids = Arc::clone(&ids);
            handles.push(std::thread::spawn(move || {
                for i in 0..50u16 {
                    let mut pkt = UdpPacketBuilder::new()
                        .src(Ipv4Addr::new(10, 0, t, 1), 30000 + i)
                        .dst(Ipv4Addr::new(10, 1, 1, 1), 80)
                        .payload_len(16)
                        .build();
                    let l4 = pkt.l4_mut().unwrap();
                    l4[l4::UDP_HEADER_LEN..l4::UDP_HEADER_LEN + 8].copy_from_slice(b"X-ATTACK");
                    store.transaction(|txn| ids.process(&mut pkt, txn, ProcCtx::single()));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            store.peek_u64(ALERTS_KEY),
            Some(200),
            "no alert may be lost"
        );
    }
}
