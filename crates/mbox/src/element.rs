//! A lightweight Click-style element graph.
//!
//! The paper's middleboxes are "implemented in Click [34]", the modular
//! router whose configurations are graphs of small packet-processing
//! *elements*. This module provides the same composition style for the
//! stateless plumbing around our transactional middleboxes: elements push
//! packets to numbered output ports; a [`Pipeline`] chains elements through
//! port 0.

use bytes::Bytes;
use ftc_packet::{checksum, ether, Packet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A packet-processing element with numbered output ports.
pub trait Element: Send {
    /// Element name (Click-style, e.g. `CheckIPHeader`).
    fn name(&self) -> &str;

    /// Processes `pkt`, emitting zero or more packets via `out(port, pkt)`.
    fn push(&mut self, pkt: Packet, out: &mut dyn FnMut(usize, Packet));
}

/// A linear chain of elements: each element's port 0 feeds the next; output
/// on any other port is discarded (like wiring it to Click's `Discard`).
#[derive(Default)]
pub struct Pipeline {
    elements: Vec<Box<dyn Element>>,
}

impl Pipeline {
    /// Creates an empty pipeline (a wire).
    pub fn new() -> Pipeline {
        Pipeline::default()
    }

    /// Appends an element.
    pub fn then(mut self, e: impl Element + 'static) -> Pipeline {
        self.elements.push(Box::new(e));
        self
    }

    /// Pushes a packet through the pipeline; surviving packets reach `sink`.
    pub fn push(&mut self, pkt: Packet, sink: &mut dyn FnMut(Packet)) {
        Self::push_from(&mut self.elements, 0, pkt, sink);
    }

    fn push_from(
        elements: &mut [Box<dyn Element>],
        idx: usize,
        pkt: Packet,
        sink: &mut dyn FnMut(Packet),
    ) {
        let Some((first, rest)) = elements[idx..].split_first_mut() else {
            sink(pkt);
            return;
        };
        let mut emitted: Vec<Packet> = Vec::new();
        first.push(pkt, &mut |port, p| {
            if port == 0 {
                emitted.push(p);
            }
        });
        if rest.is_empty() {
            for p in emitted {
                sink(p);
            }
        } else {
            for p in emitted {
                Self::push_from(elements, idx + 1, p, sink);
            }
        }
    }
}

/// Counts packets and bytes passing through (Click `Counter`).
pub struct Counter {
    /// Packets seen.
    pub packets: Arc<AtomicU64>,
    /// Bytes seen.
    pub bytes: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a counter; clone the returned atomics to observe it.
    pub fn new() -> Counter {
        Counter {
            packets: Arc::new(AtomicU64::new(0)),
            bytes: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl Element for Counter {
    fn name(&self) -> &str {
        "Counter"
    }

    fn push(&mut self, pkt: Packet, out: &mut dyn FnMut(usize, Packet)) {
        self.packets.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(pkt.wire_len() as u64, Ordering::Relaxed);
        out(0, pkt);
    }
}

/// Verifies the IPv4 header; invalid packets exit on port 1
/// (Click `CheckIPHeader`).
#[derive(Debug, Default)]
pub struct CheckIpHeader;

impl Element for CheckIpHeader {
    fn name(&self) -> &str {
        "CheckIPHeader"
    }

    fn push(&mut self, pkt: Packet, out: &mut dyn FnMut(usize, Packet)) {
        let ok = pkt.ipv4().and_then(|v| v.verify_checksum()).is_ok();
        out(if ok { 0 } else { 1 }, pkt);
    }
}

/// Decrements the IPv4 TTL, emitting expired packets on port 1
/// (Click `DecIPTTL`).
#[derive(Debug, Default)]
pub struct DecIpTtl;

impl Element for DecIpTtl {
    fn name(&self) -> &str {
        "DecIPTTL"
    }

    fn push(&mut self, mut pkt: Packet, out: &mut dyn FnMut(usize, Packet)) {
        let l3 = pkt.l3_mut();
        if l3.len() < 20 || l3[8] <= 1 {
            out(1, pkt);
            return;
        }
        let old_word = u16::from_be_bytes([l3[8], l3[9]]);
        l3[8] -= 1;
        let new_word = u16::from_be_bytes([l3[8], l3[9]]);
        let hc = u16::from_be_bytes([l3[10], l3[11]]);
        let fixed = checksum::update(hc, old_word, new_word);
        l3[10..12].copy_from_slice(&fixed.to_be_bytes());
        out(0, pkt);
    }
}

/// Classifies by IP protocol: TCP → port 0, UDP → port 1, other → port 2
/// (a fixed-pattern Click `IPClassifier`).
#[derive(Debug, Default)]
pub struct ProtoClassifier;

impl Element for ProtoClassifier {
    fn name(&self) -> &str {
        "IPClassifier"
    }

    fn push(&mut self, pkt: Packet, out: &mut dyn FnMut(usize, Packet)) {
        let proto = pkt.ipv4().map(|v| v.protocol()).unwrap_or(255);
        let port = match proto {
            ftc_packet::ip::PROTO_TCP => 0,
            ftc_packet::ip::PROTO_UDP => 1,
            _ => 2,
        };
        out(port, pkt);
    }
}

/// Swaps source and destination MAC addresses (Click `EtherMirror`), used
/// when bouncing packets back towards a traffic source.
#[derive(Debug, Default)]
pub struct EtherMirror;

impl Element for EtherMirror {
    fn name(&self) -> &str {
        "EtherMirror"
    }

    fn push(&mut self, pkt: Packet, out: &mut dyn FnMut(usize, Packet)) {
        let eth = pkt.eth();
        let (src, dst) = (eth.src(), eth.dst());
        let mut data = pkt.into_bytes();
        let _ = ether::emit(&mut data, dst, src, ether::ETHERTYPE_IPV4);
        out(0, Packet::from_frame_unchecked(data));
    }
}

/// Writes a fixed byte pattern over the UDP payload (Click `StoreData`
/// flavoured); useful to build recognizable test traffic.
pub struct PayloadStamp {
    /// The stamp written at the start of the payload.
    pub stamp: Bytes,
}

impl Element for PayloadStamp {
    fn name(&self) -> &str {
        "PayloadStamp"
    }

    fn push(&mut self, mut pkt: Packet, out: &mut dyn FnMut(usize, Packet)) {
        if let Ok(l4) = pkt.l4_mut() {
            if l4.len() >= 8 + self.stamp.len() {
                l4[8..8 + self.stamp.len()].copy_from_slice(&self.stamp);
            }
        }
        out(0, pkt);
    }
}

/// Drops everything (Click `Discard`).
#[derive(Debug, Default)]
pub struct Discard;

impl Element for Discard {
    fn name(&self) -> &str {
        "Discard"
    }

    fn push(&mut self, _pkt: Packet, _out: &mut dyn FnMut(usize, Packet)) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_packet::builder::{TcpPacketBuilder, UdpPacketBuilder};

    fn collect(pipeline: &mut Pipeline, pkt: Packet) -> Vec<Packet> {
        let mut got = Vec::new();
        pipeline.push(pkt, &mut |p| got.push(p));
        got
    }

    #[test]
    fn empty_pipeline_is_a_wire() {
        let mut p = Pipeline::new();
        let out = collect(&mut p, UdpPacketBuilder::new().build());
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        let packets = Arc::clone(&c.packets);
        let bytes = Arc::clone(&c.bytes);
        let mut p = Pipeline::new().then(c);
        let pkt = UdpPacketBuilder::new().frame_len(128).build();
        collect(&mut p, pkt.clone());
        collect(&mut p, pkt);
        assert_eq!(packets.load(Ordering::Relaxed), 2);
        assert_eq!(bytes.load(Ordering::Relaxed), 256);
    }

    #[test]
    fn check_ip_header_filters_corrupt() {
        let mut p = Pipeline::new().then(CheckIpHeader);
        let good = UdpPacketBuilder::new().build();
        assert_eq!(collect(&mut p, good).len(), 1);
        let mut bad = UdpPacketBuilder::new().build();
        bad.l3_mut()[15] ^= 0xff; // corrupt src ip without fixing checksum
        assert_eq!(
            collect(&mut p, bad).len(),
            0,
            "diverted to port 1 = dropped"
        );
    }

    #[test]
    fn dec_ttl_decrements_and_expires() {
        let mut p = Pipeline::new().then(DecIpTtl);
        let pkt = UdpPacketBuilder::new().build();
        let before = pkt.ipv4().unwrap().ttl();
        let out = collect(&mut p, pkt);
        assert_eq!(out[0].ipv4().unwrap().ttl(), before - 1);
        out[0].ipv4().unwrap().verify_checksum().unwrap();

        // TTL 1 expires.
        let mut dying = UdpPacketBuilder::new().build();
        {
            let l3 = dying.l3_mut();
            let old = u16::from_be_bytes([l3[8], l3[9]]);
            l3[8] = 1;
            let new = u16::from_be_bytes([l3[8], l3[9]]);
            let hc = u16::from_be_bytes([l3[10], l3[11]]);
            let fixed = checksum::update(hc, old, new);
            l3[10..12].copy_from_slice(&fixed.to_be_bytes());
        }
        assert_eq!(collect(&mut p, dying).len(), 0);
    }

    #[test]
    fn classifier_routes_by_protocol() {
        let mut cls = ProtoClassifier;
        let mut ports = Vec::new();
        cls.push(TcpPacketBuilder::new().build(), &mut |port, _| {
            ports.push(port)
        });
        cls.push(UdpPacketBuilder::new().build(), &mut |port, _| {
            ports.push(port)
        });
        assert_eq!(ports, vec![0, 1]);
    }

    #[test]
    fn ether_mirror_swaps_macs() {
        let pkt = UdpPacketBuilder::new().build();
        let (src, dst) = (pkt.eth().src(), pkt.eth().dst());
        let mut m = EtherMirror;
        let mut out = Vec::new();
        m.push(pkt, &mut |_, p| out.push(p));
        assert_eq!(out[0].eth().src(), dst);
        assert_eq!(out[0].eth().dst(), src);
    }

    #[test]
    fn discard_ends_pipeline() {
        let mut p = Pipeline::new().then(Counter::new()).then(Discard);
        assert_eq!(collect(&mut p, UdpPacketBuilder::new().build()).len(), 0);
    }

    #[test]
    fn payload_stamp_writes_payload() {
        let mut p = Pipeline::new().then(PayloadStamp {
            stamp: Bytes::from_static(b"HELLO"),
        });
        let out = collect(&mut p, UdpPacketBuilder::new().payload_len(32).build());
        let l4 = out[0].l4().unwrap();
        assert_eq!(&l4[8..13], b"HELLO");
    }
}
