//! The middlebox abstraction: transactional packet processing.

use crate::firewall::FirewallRule;
use ftc_packet::Packet;
use ftc_stm::{StateTxn, TxnError};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// What to do with a packet after processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Forward the packet to the next hop.
    Forward,
    /// Drop (filter) the packet. Under FTC, the runtime emits a propagating
    /// packet to carry the transaction's piggyback log onward (paper §5.1).
    Drop,
}

/// Per-invocation context handed to middleboxes.
#[derive(Debug, Clone, Copy)]
pub struct ProcCtx {
    /// Index of the worker thread running this transaction.
    pub worker: usize,
    /// Total worker threads of this middlebox instance.
    pub workers: usize,
}

impl ProcCtx {
    /// Context for single-threaded processing.
    pub fn single() -> ProcCtx {
        ProcCtx {
            worker: 0,
            workers: 1,
        }
    }
}

/// A data-plane function processing packets inside FTC packet transactions.
///
/// All state accesses go through the [`StateTxn`] — this is the paper's
/// requirement that "for an existing middlebox to use FTC, its source code
/// must be modified to call our API for state reads and writes" (§4.1).
///
/// `process` may be re-executed if the transaction is wounded, so packet
/// mutations must be deterministic functions of the packet and the state
/// read in the *current* execution (all our middleboxes satisfy this: they
/// rewrite headers based on the mapping they just read or created).
pub trait Middlebox: Send + Sync {
    /// Short human-readable name.
    fn name(&self) -> &str;

    /// Processes one packet inside transaction `txn`.
    fn process(
        &self,
        pkt: &mut Packet,
        txn: &mut dyn StateTxn,
        ctx: ProcCtx,
    ) -> Result<Action, TxnError>;

    /// Whether the middlebox keeps dynamic state (stateless middleboxes
    /// never produce piggyback logs).
    fn is_stateful(&self) -> bool {
        true
    }
}

/// A cloneable, buildable description of a middlebox.
///
/// Failure recovery must "instantiate a new middlebox instance" at the
/// failure position (paper §4.1/§5.2), so chains are configured with specs
/// rather than live instances; the orchestrator calls [`MbSpec::build`]
/// again when respawning.
#[derive(Debug, Clone)]
pub enum MbSpec {
    /// The commercial-NAT core (read-heavy, writes per flow).
    MazuNat {
        /// External address used for rewritten flows.
        external_ip: Ipv4Addr,
    },
    /// Basic NAT functionality.
    SimpleNat {
        /// External address used for rewritten flows.
        external_ip: Ipv4Addr,
    },
    /// Packet counter (read/write-heavy).
    Monitor {
        /// Number of worker threads sharing one counter (paper §7.1).
        sharing_level: usize,
    },
    /// Synthetic write-heavy state generator.
    Gen {
        /// Bytes of state written per packet (paper Fig. 5).
        state_size: usize,
    },
    /// Intrusion detection: port-scan blocking + signature alerts.
    Ids {
        /// Distinct destination ports a source may contact before it is
        /// flagged as a scanner.
        scan_threshold: usize,
        /// Payload byte patterns that trigger an alert and a drop.
        signatures: Vec<Vec<u8>>,
    },
    /// Stateless packet filter.
    Firewall {
        /// Match rules, first match wins; default permit.
        rules: Vec<FirewallRule>,
    },
    /// Connection-persistent L4 load balancer.
    LoadBalancer {
        /// Backend addresses.
        backends: Vec<Ipv4Addr>,
    },
    /// Forwards everything untouched (useful as a pure-replica stage).
    Passthrough,
}

impl MbSpec {
    /// Instantiates the middlebox.
    pub fn build(&self) -> Arc<dyn Middlebox> {
        match self {
            MbSpec::MazuNat { external_ip } => Arc::new(crate::nat::MazuNat::new(*external_ip)),
            MbSpec::SimpleNat { external_ip } => Arc::new(crate::nat::SimpleNat::new(*external_ip)),
            MbSpec::Monitor { sharing_level } => {
                Arc::new(crate::monitor::Monitor::new(*sharing_level))
            }
            MbSpec::Gen { state_size } => Arc::new(crate::gen::Gen::new(*state_size)),
            MbSpec::Ids {
                scan_threshold,
                signatures,
            } => Arc::new(crate::ids::Ids::new(*scan_threshold, signatures.clone())),
            MbSpec::Firewall { rules } => Arc::new(crate::firewall::Firewall::new(rules.clone())),
            MbSpec::LoadBalancer { backends } => {
                Arc::new(crate::lb::LoadBalancer::new(backends.clone()))
            }
            MbSpec::Passthrough => Arc::new(Passthrough),
        }
    }

    /// Short name for logs and reports.
    pub fn name(&self) -> &'static str {
        match self {
            MbSpec::MazuNat { .. } => "MazuNAT",
            MbSpec::SimpleNat { .. } => "SimpleNAT",
            MbSpec::Monitor { .. } => "Monitor",
            MbSpec::Gen { .. } => "Gen",
            MbSpec::Ids { .. } => "IDS",
            MbSpec::Firewall { .. } => "Firewall",
            MbSpec::LoadBalancer { .. } => "LoadBalancer",
            MbSpec::Passthrough => "Passthrough",
        }
    }
}

/// A stateless middlebox that forwards everything.
#[derive(Debug, Default)]
pub struct Passthrough;

impl Middlebox for Passthrough {
    fn name(&self) -> &str {
        "Passthrough"
    }

    fn process(
        &self,
        _pkt: &mut Packet,
        _txn: &mut dyn StateTxn,
        _ctx: ProcCtx,
    ) -> Result<Action, TxnError> {
        Ok(Action::Forward)
    }

    fn is_stateful(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_packet::builder::UdpPacketBuilder;
    use ftc_stm::StateStore;

    #[test]
    fn passthrough_forwards_without_log() {
        let store = StateStore::new(8);
        let mb = MbSpec::Passthrough.build();
        let mut pkt = UdpPacketBuilder::new().build();
        let out = store.transaction(|txn| mb.process(&mut pkt, txn, ProcCtx::single()));
        assert_eq!(out.value, Action::Forward);
        assert!(out.log.is_none());
        assert!(!mb.is_stateful());
    }

    #[test]
    fn specs_build_all_middleboxes() {
        let specs = [
            MbSpec::MazuNat {
                external_ip: Ipv4Addr::new(1, 1, 1, 1),
            },
            MbSpec::SimpleNat {
                external_ip: Ipv4Addr::new(1, 1, 1, 1),
            },
            MbSpec::Monitor { sharing_level: 2 },
            MbSpec::Gen { state_size: 64 },
            MbSpec::Firewall { rules: vec![] },
            MbSpec::Ids {
                scan_threshold: 10,
                signatures: vec![],
            },
            MbSpec::LoadBalancer {
                backends: vec![Ipv4Addr::new(10, 1, 0, 1)],
            },
            MbSpec::Passthrough,
        ];
        for spec in &specs {
            let mb = spec.build();
            assert_eq!(mb.name(), spec.name());
        }
    }
}
