//! Network address translators.
//!
//! [`SimpleNat`] "provides basic NAT functionalities"; [`MazuNat`] "is an
//! implementation of the core parts of a commercial NAT" (paper §7.1,
//! referencing Click's `mazu-nat.click`). Both are read-heavy: the common
//! case is one mapping lookup per packet, with writes only when a flow is
//! created (or, for MazuNAT, torn down).

mod mazu;
mod simple;

pub use mazu::MazuNat;
pub use simple::SimpleNat;

use bytes::Bytes;
use ftc_packet::{ether, ip, l4, FlowKey, Packet, WireError};
use std::net::Ipv4Addr;

/// A NAT mapping record: the internal flow a translated port belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NatMapping {
    /// Internal source address.
    pub int_ip: Ipv4Addr,
    /// Internal source port.
    pub int_port: u16,
    /// External port assigned to the flow.
    pub ext_port: u16,
    /// IP protocol.
    pub protocol: u8,
}

impl NatMapping {
    /// Serializes the mapping for storage.
    pub fn encode(&self) -> Bytes {
        let mut b = Vec::with_capacity(9);
        b.extend_from_slice(&self.int_ip.octets());
        b.extend_from_slice(&self.int_port.to_be_bytes());
        b.extend_from_slice(&self.ext_port.to_be_bytes());
        b.push(self.protocol);
        Bytes::from(b)
    }

    /// Deserializes a stored mapping.
    pub fn decode(b: &[u8]) -> Option<NatMapping> {
        if b.len() != 9 {
            return None;
        }
        Some(NatMapping {
            int_ip: Ipv4Addr::new(b[0], b[1], b[2], b[3]),
            int_port: u16::from_be_bytes([b[4], b[5]]),
            ext_port: u16::from_be_bytes([b[6], b[7]]),
            protocol: b[8],
        })
    }
}

/// First external port handed out.
pub const PORT_BASE: u16 = 10_000;
/// Size of the external port pool.
pub const PORT_SPAN: u16 = 50_000;

/// Key of the forward mapping for an internal flow.
pub fn forward_key(tag: &str, key: &FlowKey) -> Bytes {
    Bytes::from(format!("{tag}:fwd:{key}"))
}

/// Key of the reverse mapping for an external port.
pub fn reverse_key(tag: &str, protocol: u8, ext_port: u16) -> Bytes {
    Bytes::from(format!("{tag}:rev:{protocol}:{ext_port}"))
}

/// Key of the next-port allocator counter.
pub fn allocator_key(tag: &str, protocol: u8) -> Bytes {
    Bytes::from(format!("{tag}:nextport:{protocol}"))
}

/// Rewrites the packet's source address and L4 source port, maintaining the
/// IPv4 header checksum.
pub fn rewrite_src(pkt: &mut Packet, new_ip: Ipv4Addr, new_port: u16) -> Result<(), WireError> {
    let l4_off = pkt.l4_offset()? - ether::HEADER_LEN;
    let l3 = pkt.l3_mut();
    ip::set_src(l3, new_ip)?;
    l4::set_port(&mut l3[l4_off..], 0, new_port)?;
    Ok(())
}

/// Rewrites the packet's destination address and L4 destination port.
pub fn rewrite_dst(pkt: &mut Packet, new_ip: Ipv4Addr, new_port: u16) -> Result<(), WireError> {
    let l4_off = pkt.l4_offset()? - ether::HEADER_LEN;
    let l3 = pkt.l3_mut();
    ip::set_dst(l3, new_ip)?;
    l4::set_port(&mut l3[l4_off..], 2, new_port)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_packet::builder::UdpPacketBuilder;

    #[test]
    fn mapping_roundtrip() {
        let m = NatMapping {
            int_ip: Ipv4Addr::new(192, 168, 1, 44),
            int_port: 51234,
            ext_port: 12001,
            protocol: ip::PROTO_TCP,
        };
        assert_eq!(NatMapping::decode(&m.encode()), Some(m));
        assert_eq!(NatMapping::decode(b"short"), None);
    }

    #[test]
    fn rewrite_src_updates_header_and_port() {
        let mut pkt = UdpPacketBuilder::new()
            .src(Ipv4Addr::new(192, 168, 0, 5), 5555)
            .dst(Ipv4Addr::new(8, 8, 8, 8), 53)
            .build();
        rewrite_src(&mut pkt, Ipv4Addr::new(1, 2, 3, 4), 12000).unwrap();
        let key = pkt.flow_key().unwrap();
        assert_eq!(key.src_ip, Ipv4Addr::new(1, 2, 3, 4));
        assert_eq!(key.src_port, 12000);
        assert_eq!(key.dst_port, 53, "destination untouched");
        pkt.ipv4().unwrap().verify_checksum().unwrap();
    }

    #[test]
    fn rewrite_dst_updates_header_and_port() {
        let mut pkt = UdpPacketBuilder::new().build();
        rewrite_dst(&mut pkt, Ipv4Addr::new(10, 10, 10, 10), 8080).unwrap();
        let key = pkt.flow_key().unwrap();
        assert_eq!(key.dst_ip, Ipv4Addr::new(10, 10, 10, 10));
        assert_eq!(key.dst_port, 8080);
        pkt.ipv4().unwrap().verify_checksum().unwrap();
    }
}
