//! MazuNAT: the core of a commercial NAT (after Click's `mazu-nat.click`).
//!
//! Compared to [`super::SimpleNat`] it adds the behaviours the Click
//! configuration implements with `IPRewriter`: per-protocol port pools,
//! TCP connection-teardown handling (mappings are removed when the internal
//! host resets or both sides finish), and pass-through for ICMP and other
//! non-port protocols. The state access pattern is the paper's Table 1:
//! reads per packet, writes per flow (creation and teardown).

use super::{
    allocator_key, forward_key, reverse_key, rewrite_dst, rewrite_src, NatMapping, PORT_BASE,
    PORT_SPAN,
};
use crate::middlebox::{Action, Middlebox, ProcCtx};
use bytes::Bytes;
use ftc_packet::l4::TcpView;
use ftc_packet::{ip, FlowKey, Packet};
use ftc_stm::{StateTxn, TxnError};
use std::net::Ipv4Addr;

const TAG: &str = "mazu";

/// Commercial-NAT core: source NAT with per-protocol pools and TCP teardown.
#[derive(Debug)]
pub struct MazuNat {
    external_ip: Ipv4Addr,
}

impl MazuNat {
    /// Creates a MazuNAT translating to `external_ip`.
    pub fn new(external_ip: Ipv4Addr) -> MazuNat {
        MazuNat { external_ip }
    }

    /// The external address.
    pub fn external_ip(&self) -> Ipv4Addr {
        self.external_ip
    }

    /// True if the TCP segment ends the connection from the internal side.
    fn is_teardown(pkt: &Packet) -> bool {
        match pkt.l4().ok().and_then(|l4| TcpView::new(l4).ok()) {
            Some(tcp) => tcp.is_rst() || tcp.is_fin(),
            None => false,
        }
    }

    fn translate_outbound(
        &self,
        pkt: &mut Packet,
        txn: &mut dyn StateTxn,
        key: &FlowKey,
    ) -> Result<Action, TxnError> {
        let fkey = forward_key(TAG, key);
        let teardown = key.protocol == ip::PROTO_TCP && Self::is_teardown(pkt);
        let mapping = match txn.read(&fkey)? {
            Some(v) => NatMapping::decode(&v),
            None => None,
        };
        let mapping = match mapping {
            Some(m) => m,
            None => {
                if teardown {
                    // RST/FIN for an unknown flow: nothing to translate.
                    return Ok(Action::Drop);
                }
                let alloc = allocator_key(TAG, key.protocol);
                let n = txn.read_u64(&alloc)?.unwrap_or(0);
                txn.write_u64(alloc, n + 1)?;
                let m = NatMapping {
                    int_ip: key.src_ip,
                    int_port: key.src_port,
                    ext_port: PORT_BASE + (n % u64::from(PORT_SPAN)) as u16,
                    protocol: key.protocol,
                };
                txn.write(fkey.clone(), m.encode())?;
                txn.write(reverse_key(TAG, key.protocol, m.ext_port), m.encode())?;
                m
            }
        };
        if teardown {
            // Connection closing: drop both mapping directions so the port
            // returns to the pool (mazu-nat's rewriter GC, made explicit).
            txn.delete(fkey)?;
            txn.delete(reverse_key(TAG, key.protocol, mapping.ext_port))?;
        }
        if rewrite_src(pkt, self.external_ip, mapping.ext_port).is_err() {
            return Ok(Action::Drop);
        }
        Ok(Action::Forward)
    }

    fn translate_inbound(
        &self,
        pkt: &mut Packet,
        txn: &mut dyn StateTxn,
        key: &FlowKey,
    ) -> Result<Action, TxnError> {
        let rkey = reverse_key(TAG, key.protocol, key.dst_port);
        let Some(m) = txn.read(&rkey)?.and_then(|v| NatMapping::decode(&v)) else {
            return Ok(Action::Drop);
        };
        if rewrite_dst(pkt, m.int_ip, m.int_port).is_err() {
            return Ok(Action::Drop);
        }
        Ok(Action::Forward)
    }

    /// The `ICMPPingRewriter` role of mazu-nat.click: echo requests get a
    /// translated (source, identifier); replies are mapped back.
    fn translate_ping(&self, pkt: &mut Packet, txn: &mut dyn StateTxn) -> Result<Action, TxnError> {
        use ftc_packet::icmp;
        let (src, dst, ident, is_request) = {
            let Ok(v) = pkt.ipv4() else {
                return Ok(Action::Drop);
            };
            let (src, dst) = (v.src(), v.dst());
            let Ok(l4) = pkt.l4() else {
                return Ok(Action::Drop);
            };
            let Ok(e) = icmp::IcmpView::new(l4) else {
                return Ok(Action::Drop);
            };
            if !e.is_echo() {
                // Other ICMP (unreachables etc.): pass untranslated.
                return Ok(Action::Forward);
            }
            (
                src,
                dst,
                e.ident(),
                e.icmp_type() == icmp::TYPE_ECHO_REQUEST,
            )
        };
        if is_request && dst != self.external_ip {
            // Outbound ping: allocate (or reuse) an external identifier.
            let fkey = Bytes::from(format!("{TAG}:ping:{src}:{ident}"));
            let ext_ident = match txn.read(&fkey)? {
                Some(v) => NatMapping::decode(&v).map(|m| m.ext_port),
                None => None,
            };
            let ext_ident = match ext_ident {
                Some(e) => e,
                None => {
                    let alloc = allocator_key(TAG, ftc_packet::ip::PROTO_ICMP);
                    let n = txn.read_u64(&alloc)?.unwrap_or(0);
                    txn.write_u64(alloc, n + 1)?;
                    let e = PORT_BASE + (n % u64::from(PORT_SPAN)) as u16;
                    let m = NatMapping {
                        int_ip: src,
                        int_port: ident,
                        ext_port: e,
                        protocol: ftc_packet::ip::PROTO_ICMP,
                    };
                    txn.write(fkey, m.encode())?;
                    txn.write(reverse_key(TAG, ftc_packet::ip::PROTO_ICMP, e), m.encode())?;
                    e
                }
            };
            let ext_ip = self.external_ip;
            let l4_off = match pkt.l4_offset() {
                Ok(o) => o - ftc_packet::ether::HEADER_LEN,
                Err(_) => return Ok(Action::Drop),
            };
            let l3 = pkt.l3_mut();
            if ftc_packet::ip::set_src(l3, ext_ip).is_err()
                || icmp::set_ident(&mut l3[l4_off..], ext_ident).is_err()
            {
                return Ok(Action::Drop);
            }
            return Ok(Action::Forward);
        }
        if !is_request && dst == self.external_ip {
            // Reply towards our external address: map the identifier back.
            let rkey = reverse_key(TAG, ftc_packet::ip::PROTO_ICMP, ident);
            let Some(m) = txn.read(&rkey)?.and_then(|v| NatMapping::decode(&v)) else {
                return Ok(Action::Drop);
            };
            let l4_off = match pkt.l4_offset() {
                Ok(o) => o - ftc_packet::ether::HEADER_LEN,
                Err(_) => return Ok(Action::Drop),
            };
            let l3 = pkt.l3_mut();
            if ftc_packet::ip::set_dst(l3, m.int_ip).is_err()
                || icmp::set_ident(&mut l3[l4_off..], m.int_port).is_err()
            {
                return Ok(Action::Drop);
            }
            return Ok(Action::Forward);
        }
        Ok(Action::Forward)
    }
}

impl Middlebox for MazuNat {
    fn name(&self) -> &str {
        "MazuNAT"
    }

    fn process(
        &self,
        pkt: &mut Packet,
        txn: &mut dyn StateTxn,
        _ctx: ProcCtx,
    ) -> Result<Action, TxnError> {
        let Ok(key) = pkt.flow_key() else {
            return Ok(Action::Drop);
        };
        match key.protocol {
            ip::PROTO_TCP | ip::PROTO_UDP => {
                if key.dst_ip == self.external_ip {
                    self.translate_inbound(pkt, txn, &key)
                } else {
                    self.translate_outbound(pkt, txn, &key)
                }
            }
            ip::PROTO_ICMP => self.translate_ping(pkt, txn),
            // Other non-port protocols pass unmodified.
            _ => Ok(Action::Forward),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_packet::builder::{TcpPacketBuilder, UdpPacketBuilder};
    use ftc_packet::l4::tcp_flags;
    use ftc_stm::StateStore;

    const EXT: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 1);
    const INT: Ipv4Addr = Ipv4Addr::new(192, 168, 7, 3);

    fn run(store: &StateStore, nat: &MazuNat, pkt: &mut Packet) -> (Action, bool) {
        let out = store.transaction(|txn| nat.process(pkt, txn, ProcCtx::single()));
        (out.value, out.log.is_some())
    }

    fn tcp_out(flags: u8) -> Packet {
        TcpPacketBuilder::new()
            .src(INT, 40123)
            .dst(Ipv4Addr::new(93, 184, 216, 34), 443)
            .flags(flags)
            .build()
    }

    #[test]
    fn tcp_and_udp_use_separate_port_pools() {
        let store = StateStore::new(32);
        let nat = MazuNat::new(EXT);
        let mut t = tcp_out(tcp_flags::SYN);
        let mut u = UdpPacketBuilder::new()
            .src(INT, 40123)
            .dst(Ipv4Addr::new(8, 8, 8, 8), 53)
            .build();
        run(&store, &nat, &mut t);
        run(&store, &nat, &mut u);
        // Both get the first port of their own pool.
        assert_eq!(t.flow_key().unwrap().src_port, PORT_BASE);
        assert_eq!(u.flow_key().unwrap().src_port, PORT_BASE);
    }

    #[test]
    fn established_flow_is_read_only() {
        let store = StateStore::new(32);
        let nat = MazuNat::new(EXT);
        let mut syn = tcp_out(tcp_flags::SYN);
        let (_, wrote) = run(&store, &nat, &mut syn);
        assert!(wrote);
        let mut data = tcp_out(tcp_flags::ACK);
        let (action, wrote) = run(&store, &nat, &mut data);
        assert_eq!(action, Action::Forward);
        assert!(!wrote, "established TCP flow must not write state");
    }

    #[test]
    fn fin_tears_down_mapping() {
        let store = StateStore::new(32);
        let nat = MazuNat::new(EXT);
        let mut syn = tcp_out(tcp_flags::SYN);
        run(&store, &nat, &mut syn);
        let ext_port = syn.flow_key().unwrap().src_port;

        let mut fin = tcp_out(tcp_flags::FIN | tcp_flags::ACK);
        let (action, wrote) = run(&store, &nat, &mut fin);
        assert_eq!(action, Action::Forward, "the FIN itself is still forwarded");
        assert!(wrote, "teardown deletes the mapping (a state write)");
        // Reply to the released port is now unsolicited.
        let mut late = TcpPacketBuilder::new()
            .src(Ipv4Addr::new(93, 184, 216, 34), 443)
            .dst(EXT, ext_port)
            .flags(tcp_flags::ACK)
            .build();
        let (action, _) = run(&store, &nat, &mut late);
        assert_eq!(action, Action::Drop);
    }

    #[test]
    fn inbound_reply_translated_back() {
        let store = StateStore::new(32);
        let nat = MazuNat::new(EXT);
        let mut syn = tcp_out(tcp_flags::SYN);
        run(&store, &nat, &mut syn);
        let ext_port = syn.flow_key().unwrap().src_port;
        let mut reply = TcpPacketBuilder::new()
            .src(Ipv4Addr::new(93, 184, 216, 34), 443)
            .dst(EXT, ext_port)
            .flags(tcp_flags::SYN | tcp_flags::ACK)
            .build();
        let (action, wrote) = run(&store, &nat, &mut reply);
        assert_eq!(action, Action::Forward);
        assert!(!wrote);
        let key = reply.flow_key().unwrap();
        assert_eq!(key.dst_ip, INT);
        assert_eq!(key.dst_port, 40123);
    }

    #[test]
    fn icmp_passes_through_untouched() {
        let store = StateStore::new(32);
        let nat = MazuNat::new(EXT);
        let mut pkt = {
            // Build a UDP packet, then flip the protocol to ICMP to get a
            // valid IPv4 header with a non-port protocol.
            let mut p = UdpPacketBuilder::new()
                .src(INT, 0)
                .dst(Ipv4Addr::new(8, 8, 8, 8), 0)
                .build();
            let l3 = p.l3_mut();
            let old = l3[9];
            l3[9] = ip::PROTO_ICMP;
            // fix checksum for the protocol byte change (old/new in the same
            // 16-bit word as TTL)
            let hc = u16::from_be_bytes([l3[10], l3[11]]);
            let oldw = u16::from_be_bytes([l3[8], old]);
            let neww = u16::from_be_bytes([l3[8], ip::PROTO_ICMP]);
            let fixed = ftc_packet::checksum::update(hc, oldw, neww);
            l3[10..12].copy_from_slice(&fixed.to_be_bytes());
            p
        };
        let before = pkt.bytes().to_vec();
        let (action, wrote) = run(&store, &nat, &mut pkt);
        assert_eq!(action, Action::Forward);
        assert!(!wrote);
        assert_eq!(pkt.bytes(), &before[..]);
    }

    #[test]
    fn ping_request_and_reply_are_rewritten() {
        use ftc_packet::builder::IcmpPacketBuilder;
        use ftc_packet::icmp::IcmpView;
        let store = StateStore::new(32);
        let nat = MazuNat::new(EXT);

        // Outbound echo request gets the external source and identifier.
        let mut req = IcmpPacketBuilder::new()
            .ips(INT, Ipv4Addr::new(8, 8, 8, 8))
            .echo(512, 1)
            .build();
        let (action, wrote) = run(&store, &nat, &mut req);
        assert_eq!(action, Action::Forward);
        assert!(wrote, "first ping installs the mapping");
        assert_eq!(req.ipv4().unwrap().src(), EXT);
        req.ipv4().unwrap().verify_checksum().unwrap();
        let ext_ident = IcmpView::new(req.l4().unwrap()).unwrap().ident();
        assert_ne!(ext_ident, 512);
        IcmpView::new(req.l4().unwrap())
            .unwrap()
            .verify_checksum()
            .unwrap();

        // A second ping of the same (host, ident) reuses it, read-only.
        let mut req2 = IcmpPacketBuilder::new()
            .ips(INT, Ipv4Addr::new(8, 8, 8, 8))
            .echo(512, 2)
            .build();
        let (_, wrote) = run(&store, &nat, &mut req2);
        assert!(!wrote);
        assert_eq!(
            IcmpView::new(req2.l4().unwrap()).unwrap().ident(),
            ext_ident
        );

        // The reply to the external identifier maps back.
        let mut reply = IcmpPacketBuilder::new()
            .ips(Ipv4Addr::new(8, 8, 8, 8), EXT)
            .echo(ext_ident, 1)
            .reply()
            .build();
        let (action, wrote) = run(&store, &nat, &mut reply);
        assert_eq!(action, Action::Forward);
        assert!(!wrote);
        assert_eq!(reply.ipv4().unwrap().dst(), INT);
        assert_eq!(IcmpView::new(reply.l4().unwrap()).unwrap().ident(), 512);
        reply.ipv4().unwrap().verify_checksum().unwrap();
        IcmpView::new(reply.l4().unwrap())
            .unwrap()
            .verify_checksum()
            .unwrap();
    }

    #[test]
    fn unsolicited_ping_reply_dropped() {
        use ftc_packet::builder::IcmpPacketBuilder;
        let store = StateStore::new(32);
        let nat = MazuNat::new(EXT);
        let mut stray = IcmpPacketBuilder::new()
            .ips(Ipv4Addr::new(8, 8, 8, 8), EXT)
            .echo(4242, 9)
            .reply()
            .build();
        let (action, _) = run(&store, &nat, &mut stray);
        assert_eq!(action, Action::Drop);
    }

    #[test]
    fn rst_for_unknown_flow_dropped() {
        let store = StateStore::new(32);
        let nat = MazuNat::new(EXT);
        let mut rst = tcp_out(tcp_flags::RST);
        let (action, _) = run(&store, &nat, &mut rst);
        assert_eq!(action, Action::Drop);
    }
}
