//! SimpleNAT: basic source NAT with a transactional flow table.

use super::{
    allocator_key, forward_key, reverse_key, rewrite_dst, rewrite_src, NatMapping, PORT_BASE,
    PORT_SPAN,
};
use crate::middlebox::{Action, Middlebox, ProcCtx};
use ftc_packet::Packet;
use ftc_stm::{StateTxn, TxnError};
use std::net::Ipv4Addr;

const TAG: &str = "snat";

/// Basic NAT: rewrites outbound flows to an external address with an
/// allocated port; rewrites inbound packets back using the reverse mapping.
///
/// State access pattern (paper Table 1): reads per packet, writes per flow.
#[derive(Debug)]
pub struct SimpleNat {
    external_ip: Ipv4Addr,
}

impl SimpleNat {
    /// Creates a NAT translating to `external_ip`.
    pub fn new(external_ip: Ipv4Addr) -> SimpleNat {
        SimpleNat { external_ip }
    }

    /// The external address.
    pub fn external_ip(&self) -> Ipv4Addr {
        self.external_ip
    }

    fn handle_outbound(
        &self,
        pkt: &mut Packet,
        txn: &mut dyn StateTxn,
        key: &ftc_packet::FlowKey,
    ) -> Result<Action, TxnError> {
        let fkey = forward_key(TAG, key);
        let ext_port = match txn.read(&fkey)? {
            Some(v) => match NatMapping::decode(&v) {
                Some(m) => m.ext_port,
                None => return Ok(Action::Drop),
            },
            None => {
                // New flow: allocate an external port and install both
                // directions of the mapping (write per flow).
                let alloc = allocator_key(TAG, key.protocol);
                let n = txn.read_u64(&alloc)?.unwrap_or(0);
                txn.write_u64(alloc, n + 1)?;
                let ext_port = PORT_BASE + (n % u64::from(PORT_SPAN)) as u16;
                let mapping = NatMapping {
                    int_ip: key.src_ip,
                    int_port: key.src_port,
                    ext_port,
                    protocol: key.protocol,
                };
                txn.write(fkey, mapping.encode())?;
                txn.write(reverse_key(TAG, key.protocol, ext_port), mapping.encode())?;
                ext_port
            }
        };
        if rewrite_src(pkt, self.external_ip, ext_port).is_err() {
            return Ok(Action::Drop);
        }
        Ok(Action::Forward)
    }

    fn handle_inbound(
        &self,
        pkt: &mut Packet,
        txn: &mut dyn StateTxn,
        key: &ftc_packet::FlowKey,
    ) -> Result<Action, TxnError> {
        let rkey = reverse_key(TAG, key.protocol, key.dst_port);
        match txn.read(&rkey)? {
            Some(v) => match NatMapping::decode(&v) {
                Some(m) => {
                    if rewrite_dst(pkt, m.int_ip, m.int_port).is_err() {
                        return Ok(Action::Drop);
                    }
                    Ok(Action::Forward)
                }
                None => Ok(Action::Drop),
            },
            // No mapping: unsolicited inbound traffic is dropped.
            None => Ok(Action::Drop),
        }
    }
}

impl Middlebox for SimpleNat {
    fn name(&self) -> &str {
        "SimpleNAT"
    }

    fn process(
        &self,
        pkt: &mut Packet,
        txn: &mut dyn StateTxn,
        _ctx: ProcCtx,
    ) -> Result<Action, TxnError> {
        let Ok(key) = pkt.flow_key() else {
            return Ok(Action::Drop);
        };
        if key.protocol != ftc_packet::ip::PROTO_TCP && key.protocol != ftc_packet::ip::PROTO_UDP {
            // Non-port protocols pass untranslated (mirrors common NAT
            // behaviour for e.g. ICMP echo in our simplified model).
            return Ok(Action::Forward);
        }
        if key.dst_ip == self.external_ip {
            self.handle_inbound(pkt, txn, &key)
        } else {
            self.handle_outbound(pkt, txn, &key)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_packet::builder::UdpPacketBuilder;
    use ftc_stm::StateStore;

    const EXT: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 1);

    fn outbound(src_port: u16) -> Packet {
        UdpPacketBuilder::new()
            .src(Ipv4Addr::new(192, 168, 0, 10), src_port)
            .dst(Ipv4Addr::new(8, 8, 8, 8), 53)
            .build()
    }

    fn run(store: &StateStore, nat: &SimpleNat, pkt: &mut Packet) -> (Action, bool) {
        let out = store.transaction(|txn| nat.process(pkt, txn, ProcCtx::single()));
        (out.value, out.log.is_some())
    }

    #[test]
    fn outbound_flow_gets_translated() {
        let store = StateStore::new(32);
        let nat = SimpleNat::new(EXT);
        let mut pkt = outbound(5000);
        let (action, wrote) = run(&store, &nat, &mut pkt);
        assert_eq!(action, Action::Forward);
        assert!(wrote, "first packet installs the mapping");
        let key = pkt.flow_key().unwrap();
        assert_eq!(key.src_ip, EXT);
        assert_eq!(key.src_port, PORT_BASE);
        pkt.ipv4().unwrap().verify_checksum().unwrap();
    }

    #[test]
    fn subsequent_packets_reuse_mapping_read_only() {
        let store = StateStore::new(32);
        let nat = SimpleNat::new(EXT);
        let mut first = outbound(5000);
        run(&store, &nat, &mut first);
        let mut second = outbound(5000);
        let (action, wrote) = run(&store, &nat, &mut second);
        assert_eq!(action, Action::Forward);
        assert!(
            !wrote,
            "established flows are read-only (paper: read-heavy)"
        );
        assert_eq!(second.flow_key().unwrap().src_port, PORT_BASE);
    }

    #[test]
    fn distinct_flows_get_distinct_ports() {
        let store = StateStore::new(32);
        let nat = SimpleNat::new(EXT);
        let mut a = outbound(5000);
        let mut b = outbound(5001);
        run(&store, &nat, &mut a);
        run(&store, &nat, &mut b);
        let pa = a.flow_key().unwrap().src_port;
        let pb = b.flow_key().unwrap().src_port;
        assert_ne!(pa, pb);
    }

    #[test]
    fn inbound_reverses_translation() {
        let store = StateStore::new(32);
        let nat = SimpleNat::new(EXT);
        let mut out = outbound(5000);
        run(&store, &nat, &mut out);
        let ext_port = out.flow_key().unwrap().src_port;

        // Reply from the server towards the external address.
        let mut reply = UdpPacketBuilder::new()
            .src(Ipv4Addr::new(8, 8, 8, 8), 53)
            .dst(EXT, ext_port)
            .build();
        let (action, wrote) = run(&store, &nat, &mut reply);
        assert_eq!(action, Action::Forward);
        assert!(!wrote);
        let key = reply.flow_key().unwrap();
        assert_eq!(key.dst_ip, Ipv4Addr::new(192, 168, 0, 10));
        assert_eq!(key.dst_port, 5000);
    }

    #[test]
    fn unsolicited_inbound_dropped() {
        let store = StateStore::new(32);
        let nat = SimpleNat::new(EXT);
        let mut stray = UdpPacketBuilder::new()
            .src(Ipv4Addr::new(8, 8, 8, 8), 53)
            .dst(EXT, 4444)
            .build();
        let (action, _) = run(&store, &nat, &mut stray);
        assert_eq!(action, Action::Drop);
    }

    #[test]
    fn connection_persistence_under_concurrency() {
        // Many threads translating the same new flow must agree on one
        // mapping — the paper's example of why NAT threads "must coordinate
        // to provide this property" (§3.2).
        use std::sync::Arc;
        let store = Arc::new(StateStore::new(32));
        let nat = Arc::new(SimpleNat::new(EXT));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let store = Arc::clone(&store);
            let nat = Arc::clone(&nat);
            handles.push(std::thread::spawn(move || {
                let mut ports = Vec::new();
                for _ in 0..50 {
                    let mut pkt = outbound(7777);
                    store.transaction(|txn| nat.process(&mut pkt, txn, ProcCtx::single()));
                    ports.push(pkt.flow_key().unwrap().src_port);
                }
                ports
            }));
        }
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        all.dedup();
        assert_eq!(
            all.len(),
            1,
            "every packet of the flow must map to one port"
        );
    }
}
