//! Simulation results.

use ftc_traffic::Histogram;
use serde::Serialize;
use std::time::Duration;

/// Outcome of one simulation run.
#[derive(Debug, Clone, Serialize)]
pub struct SimReport {
    /// System under test.
    pub system: &'static str,
    /// Offered load (pps).
    pub offered_pps: f64,
    /// Achieved released-packet rate within the measurement window (pps).
    pub achieved_pps: f64,
    /// Packets injected in the measurement window.
    pub injected: u64,
    /// Packets released in the measurement window.
    pub released: u64,
    /// End-to-end latency distribution (ingress → release).
    #[serde(skip)]
    pub latency: Histogram,
    /// Mean piggyback trailer bytes per packet on the busiest hop (FTC).
    pub trailer_bytes: f64,
}

impl SimReport {
    /// Achieved throughput in Mpps.
    pub fn mpps(&self) -> f64 {
        self.achieved_pps / 1e6
    }

    /// Mean latency, if any packet was released.
    pub fn mean_latency(&self) -> Option<Duration> {
        self.latency.mean()
    }

    /// Median latency.
    pub fn median_latency(&self) -> Option<Duration> {
        self.latency.median()
    }

    /// 99th-percentile latency.
    pub fn p99_latency(&self) -> Option<Duration> {
        self.latency.quantile(0.99)
    }
}
