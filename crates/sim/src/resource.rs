//! FIFO resources on the virtual timeline.
//!
//! Each resource serves one request at a time in arrival order. For
//! feed-forward FIFO networks, advancing `free_at` per request reproduces
//! an event-driven simulation's schedule exactly.

/// Virtual time in nanoseconds.
pub type SimNs = f64;

/// A single FIFO server (a core, a NIC rx unit, a lock, a link, …).
#[derive(Debug, Clone, Default)]
pub struct Resource {
    free_at: SimNs,
    busy_ns: SimNs,
    served: u64,
}

impl Resource {
    /// Creates an idle resource.
    pub fn new() -> Resource {
        Resource::default()
    }

    /// Serves a request arriving at `arrival` for `service` ns; returns the
    /// completion time.
    pub fn serve(&mut self, arrival: SimNs, service: SimNs) -> SimNs {
        let start = self.free_at.max(arrival);
        self.free_at = start + service;
        self.busy_ns += service;
        self.served += 1;
        self.free_at
    }

    /// Like [`Resource::serve`] but also returns the start time (to measure
    /// queueing separately from service).
    pub fn serve_timed(&mut self, arrival: SimNs, service: SimNs) -> (SimNs, SimNs) {
        let start = self.free_at.max(arrival);
        self.free_at = start + service;
        self.busy_ns += service;
        self.served += 1;
        (start, self.free_at)
    }

    /// Current backlog horizon.
    pub fn free_at(&self) -> SimNs {
        self.free_at
    }

    /// Queueing delay a request arriving at `t` would currently face.
    pub fn backlog_at(&self, t: SimNs) -> SimNs {
        (self.free_at - t).max(0.0)
    }

    /// Total busy time (for utilization).
    pub fn busy_ns(&self) -> SimNs {
        self.busy_ns
    }

    /// Requests served.
    pub fn served(&self) -> u64 {
        self.served
    }
}

/// Recurring unavailability windows (FTMB snapshot stalls): pushes start
/// times out of `[k·period + phase, k·period + phase + pause)`.
#[derive(Debug, Clone, Copy)]
pub struct StallSchedule {
    /// Interval between stalls (ns).
    pub period: SimNs,
    /// Stall length (ns).
    pub pause: SimNs,
    /// Phase offset (ns) so chained middleboxes stall unsynchronized.
    pub phase: SimNs,
}

impl StallSchedule {
    /// Returns the earliest time ≥ `t` outside any stall window.
    pub fn next_available(&self, t: SimNs) -> SimNs {
        if self.period <= 0.0 {
            return t;
        }
        let rel = t - self.phase;
        let k = (rel / self.period).floor();
        let win_start = k * self.period + self.phase;
        if t >= win_start && t < win_start + self.pause {
            win_start + self.pause
        } else {
            t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_backlog_accumulates() {
        let mut r = Resource::new();
        assert_eq!(r.serve(0.0, 10.0), 10.0);
        assert_eq!(r.serve(0.0, 10.0), 20.0, "second request queues");
        assert_eq!(r.serve(100.0, 5.0), 105.0, "idle gap resets");
        assert_eq!(r.served(), 3);
        assert_eq!(r.busy_ns(), 25.0);
    }

    #[test]
    fn serve_timed_reports_start() {
        let mut r = Resource::new();
        r.serve(0.0, 50.0);
        let (start, done) = r.serve_timed(10.0, 5.0);
        assert_eq!(start, 50.0);
        assert_eq!(done, 55.0);
    }

    #[test]
    fn stall_schedule_pushes_out_of_windows() {
        let s = StallSchedule {
            period: 100.0,
            pause: 10.0,
            phase: 0.0,
        };
        assert_eq!(s.next_available(5.0), 10.0, "inside first window");
        assert_eq!(s.next_available(10.0), 10.0, "window end is available");
        assert_eq!(s.next_available(50.0), 50.0, "between windows");
        assert_eq!(s.next_available(205.0), 210.0, "third window");
        let phased = StallSchedule {
            period: 100.0,
            pause: 10.0,
            phase: 30.0,
        };
        assert_eq!(phased.next_available(131.0), 140.0);
        assert_eq!(phased.next_available(20.0), 20.0);
    }
}
