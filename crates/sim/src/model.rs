//! Simulation configuration: which system, which chain, which load.

use crate::cost::CostModel;
use serde::Serialize;

/// A middlebox in the simulated chain, with its workload-relevant knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum MbKind {
    /// Commercial-NAT core: read-heavy, writes only on new/closing flows.
    MazuNat,
    /// Basic NAT: like MazuNat with slightly lighter processing.
    SimpleNat,
    /// Counter middlebox; `sharing` worker threads share each counter
    /// (paper §7.1). Writes state on every packet.
    Monitor {
        /// Threads sharing one counter variable.
        sharing: usize,
    },
    /// Write-heavy synthetic middlebox writing `state` bytes per packet.
    Gen {
        /// Bytes of state written per packet.
        state: usize,
    },
    /// Stateless filter.
    Firewall,
    /// A pure replica stage (no middlebox work): used when a chain shorter
    /// than `f + 1` is padded so updates reach `f + 1` servers (§5.1).
    Passthrough,
}

impl MbKind {
    /// Does a packet write state here? (probabilities handled by caller;
    /// this is the per-packet common case).
    pub fn writes_per_packet(&self) -> bool {
        matches!(self, MbKind::Monitor { .. } | MbKind::Gen { .. })
    }

    /// Is the middlebox stateful at all?
    pub fn is_stateful(&self) -> bool {
        !matches!(self, MbKind::Firewall | MbKind::Passthrough)
    }

    /// Bytes of state written by one writing packet.
    pub fn state_bytes(&self) -> usize {
        match self {
            MbKind::Monitor { .. } => 16, // two 8-byte counters
            MbKind::Gen { state } => *state,
            MbKind::MazuNat | MbKind::SimpleNat => 18, // two 9-byte mappings
            MbKind::Firewall | MbKind::Passthrough => 0,
        }
    }
}

/// Which fault-tolerance system runs the chain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum SystemKind {
    /// No fault tolerance.
    Nf,
    /// Fault-tolerant chaining with replication factor `f + 1`.
    Ftc {
        /// Failures tolerated.
        f: usize,
    },
    /// FTMB (per-middlebox master + loggers), optionally with periodic
    /// snapshot stalls `(period_ns, pause_ns)`.
    Ftmb {
        /// `Some((period, pause))` enables FTMB+Snapshot.
        snapshot: Option<(f64, f64)>,
    },
}

impl SystemKind {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            SystemKind::Nf => "NF",
            SystemKind::Ftc { .. } => "FTC",
            SystemKind::Ftmb { snapshot: None } => "FTMB",
            SystemKind::Ftmb { snapshot: Some(_) } => "FTMB+Snapshot",
        }
    }
}

/// Design-choice ablations for FTC (used by the ablation benches).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum Ablation {
    /// Replace data dependency vectors with a single sequence number: all
    /// log applies at a replica serialize on one stream (§4.3 without the
    /// partial order).
    TotalOrderReplication,
    /// Replace state piggybacking with separate replication messages: each
    /// writing packet costs an extra message send/receive per hop, like
    /// the per-middlebox frameworks of §2.2.
    NoPiggyback,
}

/// One simulation run's parameters.
#[derive(Debug, Clone, Serialize)]
pub struct SimConfig {
    /// The system under test.
    pub system: SystemKind,
    /// Optional FTC design ablation.
    pub ablation: Option<Ablation>,
    /// Middleboxes in chain order.
    pub chain: Vec<MbKind>,
    /// Worker threads (= cores) per middlebox server.
    pub workers: usize,
    /// Offered load in packets per second. Offer above capacity (e.g.
    /// 12 Mpps) to measure maximum throughput.
    pub offered_pps: f64,
    /// Frame size in bytes (Ethernet..payload).
    pub packet_bytes: usize,
    /// Number of distinct flows (RSS spread).
    pub flows: usize,
    /// Virtual duration of the run in seconds.
    pub duration_s: f64,
    /// Fraction of the run discarded as warmup.
    pub warmup_frac: f64,
    /// Cost calibration.
    pub cost: CostModel,
    /// RNG seed (arrival jitter, flow assignment).
    pub seed: u64,
}

impl SimConfig {
    /// A reasonable default: measure max throughput of `chain` under
    /// `system` with 8 workers and 256-byte packets.
    pub fn saturated(system: SystemKind, chain: Vec<MbKind>) -> SimConfig {
        SimConfig {
            system,
            ablation: None,
            chain,
            workers: 8,
            offered_pps: 14e6,
            packet_bytes: 256,
            flows: 4096,
            duration_s: 0.05,
            warmup_frac: 0.2,
            cost: CostModel::default(),
            seed: 42,
        }
    }

    /// Same chain at a fixed offered load (for latency measurements).
    pub fn at_rate(system: SystemKind, chain: Vec<MbKind>, pps: f64) -> SimConfig {
        SimConfig {
            offered_pps: pps,
            ..SimConfig::saturated(system, chain)
        }
    }

    /// Builder-style worker override.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Builder-style packet-size override.
    pub fn with_packet_bytes(mut self, bytes: usize) -> Self {
        self.packet_bytes = bytes;
        self
    }

    /// Builder-style duration override.
    pub fn with_duration(mut self, seconds: f64) -> Self {
        self.duration_s = seconds;
        self
    }

    /// Builder-style ablation override.
    pub fn with_ablation(mut self, ablation: Ablation) -> Self {
        self.ablation = Some(ablation);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_properties() {
        assert!(MbKind::Monitor { sharing: 2 }.writes_per_packet());
        assert!(!MbKind::MazuNat.writes_per_packet());
        assert!(MbKind::MazuNat.is_stateful());
        assert!(!MbKind::Firewall.is_stateful());
        assert_eq!(MbKind::Gen { state: 128 }.state_bytes(), 128);
    }

    #[test]
    fn names_match_figures() {
        assert_eq!(SystemKind::Nf.name(), "NF");
        assert_eq!(SystemKind::Ftc { f: 1 }.name(), "FTC");
        assert_eq!(SystemKind::Ftmb { snapshot: None }.name(), "FTMB");
        assert_eq!(
            SystemKind::Ftmb {
                snapshot: Some((50e6, 6e6))
            }
            .name(),
            "FTMB+Snapshot"
        );
    }
}
