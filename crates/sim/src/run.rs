//! The simulation proper: per-packet walks over FIFO resource timelines.

use crate::cost::CostModel;
use crate::model::{Ablation, MbKind, SimConfig, SystemKind};
use crate::report::SimReport;
use crate::resource::{Resource, SimNs, StallSchedule};
use ftc_traffic::Histogram;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of state partitions assumed for NAT-style flow-keyed locks.
const NAT_PARTITIONS: usize = 32;

/// Runs one simulation and reports throughput + latency.
///
/// ```
/// use ftc_sim::{simulate, MbKind, SimConfig, SystemKind};
///
/// // Maximum throughput of a 2-middlebox FTC chain.
/// let cfg = SimConfig::saturated(
///     SystemKind::Ftc { f: 1 },
///     vec![MbKind::Monitor { sharing: 1 }; 2],
/// )
/// .with_duration(0.005);
/// let report = simulate(&cfg);
/// assert!(report.mpps() > 5.0);
/// ```
pub fn simulate(cfg: &SimConfig) -> SimReport {
    assert!(!cfg.chain.is_empty());
    assert!(cfg.workers >= 1);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Arrival process: constant bit rate with ±2% jitter, uniform flows.
    let gap = 1e9 / cfg.offered_pps;
    let total = (cfg.offered_pps * cfg.duration_s) as usize;
    let mut arrivals: Vec<SimNs> = Vec::with_capacity(total);
    let mut flows: Vec<u64> = Vec::with_capacity(total);
    let mut t = 0.0;
    for _ in 0..total {
        t += gap * (1.0 + 0.04 * (rng.gen::<f64>() - 0.5));
        arrivals.push(t);
        flows.push(rng.gen_range(0..cfg.flows as u64));
    }

    let (exits, trailer_mean) = match cfg.system {
        SystemKind::Nf => (walk_nf(cfg, &arrivals, &flows, &mut rng), 0.0),
        SystemKind::Ftmb { snapshot } => {
            (walk_ftmb(cfg, &arrivals, &flows, snapshot, &mut rng), 0.0)
        }
        SystemKind::Ftc { f } => walk_ftc(cfg, &arrivals, &flows, f, &mut rng),
    };

    // FTC: resolve buffer releases; others release at exit.
    let releases = match cfg.system {
        SystemKind::Ftc { f } => ftc_releases(cfg, f, &arrivals, &exits),
        _ => exits.clone(),
    };

    // Measurement window: discard warmup, stop at the virtual end.
    let t_lo = cfg.duration_s * 1e9 * cfg.warmup_frac;
    let t_hi = cfg.duration_s * 1e9;
    let mut latency = Histogram::new();
    let mut released = 0u64;
    let mut injected = 0u64;
    for i in 0..arrivals.len() {
        if arrivals[i] >= t_lo && arrivals[i] < t_hi {
            injected += 1;
        }
        let r = releases[i];
        if r >= t_lo && r < t_hi {
            released += 1;
            latency.record_ns((r - arrivals[i]).max(0.0) as u64);
        }
    }
    let window_s = (t_hi - t_lo) / 1e9;
    SimReport {
        system: cfg.system.name(),
        offered_pps: cfg.offered_pps,
        achieved_pps: released as f64 / window_s,
        injected,
        released,
        latency,
        trailer_bytes: trailer_mean,
    }
}

fn rss(flow: u64, workers: usize) -> usize {
    (flow % workers as u64) as usize
}

/// Jittered per-server IO latency.
fn io_ns(c: &CostModel, rng: &mut StdRng) -> f64 {
    c.hop_io_latency_ns * (1.0 + c.io_jitter * (2.0 * rng.gen::<f64>() - 1.0))
}

/// Parallel (per-core, uncontended) processing time of a middlebox.
fn mb_parallel_ns(kind: MbKind, c: &CostModel) -> f64 {
    match kind {
        MbKind::MazuNat => c.cy(c.mazu_proc_cy),
        MbKind::SimpleNat => c.cy(c.snat_proc_cy),
        MbKind::Monitor { .. } => c.cy(c.monitor_proc_cy),
        MbKind::Gen { state } => c.cy(c.gen_proc_cy + c.gen_per_byte_cy * state as f64),
        MbKind::Firewall => c.cy(c.firewall_proc_cy),
        MbKind::Passthrough => 0.0,
    }
}

/// Critical-section time (serialized on the middlebox's lock).
fn mb_cs_ns(kind: MbKind, c: &CostModel) -> f64 {
    match kind {
        MbKind::MazuNat => c.cy(c.mazu_cs_cy),
        MbKind::SimpleNat => c.cy(c.snat_cs_cy),
        MbKind::Monitor { .. } => c.cy(c.monitor_cs_cy),
        MbKind::Gen { .. } => 0.0, // per-worker state: no sharing
        MbKind::Firewall | MbKind::Passthrough => 0.0,
    }
}

/// Number of locks a middlebox's shared state fans out over, and the lock a
/// given (worker, flow) uses.
fn lock_of(kind: MbKind, workers: usize, w: usize, flow: u64) -> Option<(usize, usize)> {
    match kind {
        MbKind::Monitor { sharing } => {
            let groups = workers.div_ceil(sharing);
            Some((groups, w / sharing))
        }
        MbKind::MazuNat | MbKind::SimpleNat => {
            Some((NAT_PARTITIONS, (flow % NAT_PARTITIONS as u64) as usize))
        }
        MbKind::Gen { .. } | MbKind::Firewall | MbKind::Passthrough => None,
    }
}

/// Serialized log-apply streams a predecessor's piggyback logs arrive on
/// (mirrors `lock_of`: one stream per upstream lock group / writer).
fn stream_of(kind: MbKind, workers: usize, flow: u64) -> (usize, usize) {
    match kind {
        MbKind::Monitor { sharing } => {
            let groups = workers.div_ceil(sharing);
            (groups, rss(flow, workers) / sharing)
        }
        MbKind::Gen { .. } => (workers, rss(flow, workers)),
        _ => (NAT_PARTITIONS, (flow % NAT_PARTITIONS as u64) as usize),
    }
}

struct Hop {
    link: Resource,
}

// ---------------------------------------------------------------- NF ----

fn walk_nf(cfg: &SimConfig, arrivals: &[SimNs], flows: &[u64], rng: &mut StdRng) -> Vec<SimNs> {
    let c = &cfg.cost;
    let n = cfg.chain.len();
    let mut nics: Vec<Resource> = (0..n).map(|_| Resource::new()).collect();
    let mut workers: Vec<Vec<SimNs>> = vec![vec![0.0; cfg.workers]; n];
    let mut locks: Vec<Vec<Resource>> = cfg
        .chain
        .iter()
        .map(|&k| {
            let cnt = lock_of(k, cfg.workers, 0, 0).map(|(c, _)| c).unwrap_or(0);
            (0..cnt).map(|_| Resource::new()).collect()
        })
        .collect();
    let mut hops: Vec<Hop> = (0..n)
        .map(|_| Hop {
            link: Resource::new(),
        })
        .collect();

    let max_backlog = c.nic_queue_frames as f64 * c.nic_ns(cfg.packet_bytes);
    let mut exits = Vec::with_capacity(arrivals.len());
    for (i, &a) in arrivals.iter().enumerate() {
        let fl = flows[i];
        let mut t = a;
        let mut dropped = false;
        for s in 0..n {
            let kind = cfg.chain[s];
            if nics[s].backlog_at(t) > max_backlog {
                dropped = true; // RX-ring overrun at an overloaded stage
                break;
            }
            t = nics[s].serve(t, c.nic_ns(cfg.packet_bytes));
            t += io_ns(c, rng);
            let w = rss(fl, cfg.workers);
            if workers[s][w] - t > c.worker_queue_ns {
                dropped = true; // RSS ring overrun
                break;
            }
            t = t.max(workers[s][w]);
            t += mb_parallel_ns(kind, c);
            if let Some((_, li)) = lock_of(kind, cfg.workers, w, fl) {
                t = locks[s][li].serve(t, mb_cs_ns(kind, c));
            }
            workers[s][w] = t;
            t = hops[s].link.serve(t, c.wire_ns(cfg.packet_bytes)) + c.link_prop_ns;
        }
        exits.push(if dropped { f64::INFINITY } else { t });
    }
    exits
}

// -------------------------------------------------------------- FTMB ----

fn walk_ftmb(
    cfg: &SimConfig,
    arrivals: &[SimNs],
    flows: &[u64],
    snapshot: Option<(f64, f64)>,
    rng: &mut StdRng,
) -> Vec<SimNs> {
    let c = &cfg.cost;
    let n = cfg.chain.len();
    let mut il_nics: Vec<Resource> = (0..n).map(|_| Resource::new()).collect();
    let mut links_il_m: Vec<Resource> = (0..n).map(|_| Resource::new()).collect();
    let mut m_nics: Vec<Resource> = (0..n).map(|_| Resource::new()).collect();
    let mut workers: Vec<Vec<SimNs>> = vec![vec![0.0; cfg.workers]; n];
    let mut locks: Vec<Vec<Resource>> = cfg
        .chain
        .iter()
        .map(|&k| {
            let cnt = lock_of(k, cfg.workers, 0, 0).map(|(c, _)| c).unwrap_or(0);
            (0..cnt).map(|_| Resource::new()).collect()
        })
        .collect();
    let mut links_m_ol: Vec<Resource> = (0..n).map(|_| Resource::new()).collect();
    let mut ols: Vec<Resource> = (0..n).map(|_| Resource::new()).collect();
    let mut links_out: Vec<Resource> = (0..n).map(|_| Resource::new()).collect();
    let stalls: Vec<Option<StallSchedule>> = (0..n)
        .map(|s| {
            snapshot.map(|(period, pause)| StallSchedule {
                period,
                pause,
                // Chained middleboxes checkpoint unsynchronized (§7.4:
                // "non-overlapping snapshots cause higher throughput drops").
                phase: period * (s as f64) / (n as f64),
            })
        })
        .collect();

    let max_backlog = c.nic_queue_frames as f64 * c.nic_ns(cfg.packet_bytes);
    let mut exits = Vec::with_capacity(arrivals.len());
    for (i, &a) in arrivals.iter().enumerate() {
        let fl = flows[i];
        let mut t = a;
        let mut dropped = false;
        for s in 0..n {
            let kind = cfg.chain[s];
            // IL on the logger server.
            if il_nics[s].backlog_at(t) > max_backlog {
                dropped = true;
                break;
            }
            t = il_nics[s].serve(t, c.nic_ns(cfg.packet_bytes));
            t += io_ns(c, rng) + c.cy(c.ftmb_il_cy);
            t = links_il_m[s].serve(t, c.wire_ns(cfg.packet_bytes)) + c.link_prop_ns;
            // Master.
            if m_nics[s].backlog_at(t) > max_backlog {
                dropped = true;
                break;
            }
            t = m_nics[s].serve(t, c.nic_ns(cfg.packet_bytes));
            t += io_ns(c, rng);
            let w = rss(fl, cfg.workers);
            if workers[s][w] - t > c.worker_queue_ns {
                dropped = true;
                break;
            }
            let mut start = t.max(workers[s][w]);
            if let Some(stall) = &stalls[s] {
                start = stall.next_available(start);
            }
            t = start + mb_parallel_ns(kind, c);
            if let Some((_, li)) = lock_of(kind, cfg.workers, w, fl) {
                // The PAL records the *order* of shared-state accesses, so
                // it is generated while the lock is held.
                let pal = if kind.is_stateful() {
                    c.cy(c.ftmb_pal_cy)
                } else {
                    0.0
                };
                t = locks[s][li].serve(t, mb_cs_ns(kind, c) + pal);
            } else if kind.is_stateful() {
                t += c.cy(c.ftmb_pal_cy); // unshared state: PAL off the lock
            }
            workers[s][w] = t;
            // Data and PAL race to the OL on separate links.
            let pal_done = if kind.is_stateful() {
                t + c.wire_ns(c.ftmb_pal_bytes) + c.link_prop_ns
            } else {
                t
            };
            t = links_m_ol[s].serve(t, c.wire_ns(cfg.packet_bytes)) + c.link_prop_ns;
            t = t.max(pal_done);
            // The OL's own queue overruns if it is the bottleneck.
            if ols[s].backlog_at(t) > max_backlog {
                dropped = true;
                break;
            }
            t = ols[s].serve(t, c.ftmb_ol_ns) + io_ns(c, rng);
            t = links_out[s].serve(t, c.wire_ns(cfg.packet_bytes)) + c.link_prop_ns;
        }
        exits.push(if dropped { f64::INFINITY } else { t });
    }
    exits
}

// --------------------------------------------------------------- FTC ----

/// Per-hop piggyback trailer bytes for an FTC chain (steady state): logs of
/// writing middleboxes ride from their head to their tail (f hops, wrapping
/// through the buffer→forwarder feedback); commit vectors of wrapped
/// middleboxes ride from their tail to the buffer.
fn ftc_trailer_bytes(cfg: &SimConfig, f: usize, hop: usize) -> usize {
    let n = cfg.chain.len();
    let c = &cfg.cost;
    let mut bytes = c.ftc_framing_bytes;
    for (m, kind) in cfg.chain.iter().enumerate() {
        if !kind.writes_per_packet() {
            continue;
        }
        let log = c.ftc_log_overhead_bytes + kind.state_bytes();
        let tail = m + f; // may exceed n-1: wrapped
                          // Pre-wrap hops: stage m .. min(tail, n-1)-1 → hop index h carries
                          // the log when m <= h < min(tail, n).
        if m <= hop && hop < tail.min(n) {
            bytes += log;
        }
        // Post-wrap hops (feedback-attached logs): carried into stages
        // 0..=(tail - n), i.e. hops 0..(tail - n).
        if tail >= n && hop < tail - n {
            bytes += log;
        }
        // Commit vector from a wrapped tail to the buffer.
        if tail >= n && hop >= tail - n {
            bytes += c.ftc_commit_bytes;
        }
    }
    bytes
}

fn walk_ftc(
    cfg: &SimConfig,
    arrivals: &[SimNs],
    flows: &[u64],
    f: usize,
    rng: &mut StdRng,
) -> (Vec<SimNs>, f64) {
    let c = &cfg.cost;
    let n = cfg.chain.len();
    let mut nics: Vec<Resource> = (0..n).map(|_| Resource::new()).collect();
    let mut workers: Vec<Vec<SimNs>> = vec![vec![0.0; cfg.workers]; n];
    let mut locks: Vec<Vec<Resource>> = cfg
        .chain
        .iter()
        .map(|&k| {
            let cnt = lock_of(k, cfg.workers, 0, 0).map(|(c, _)| c).unwrap_or(0);
            (0..cnt).map(|_| Resource::new()).collect()
        })
        .collect();
    // Apply streams at stage s for predecessor slot d (1..=f): one resource
    // per upstream writer stream. The total-order ablation collapses them
    // to a single stream (no dependency vectors, §4.2's single sequence
    // number).
    let total_order = cfg.ablation == Some(Ablation::TotalOrderReplication);
    let mut streams: Vec<Vec<Vec<Resource>>> = (0..n)
        .map(|s| {
            (1..=f)
                .map(|d| {
                    let pred = (s + n - (d % n)) % n;
                    let cnt = if total_order {
                        1
                    } else {
                        stream_of(cfg.chain[pred], cfg.workers, 0).0
                    };
                    (0..cnt).map(|_| Resource::new()).collect()
                })
                .collect()
        })
        .collect();
    let mut hops: Vec<Hop> = (0..n)
        .map(|_| Hop {
            link: Resource::new(),
        })
        .collect();
    let mut buffer_cpu = Resource::new();
    // Ablation: per-stage replication channel (the successor's message-
    // processing capacity on a separate queue).
    let mut repl_ch: Vec<Resource> = (0..n).map(|_| Resource::new()).collect();

    let trailer: Vec<usize> = (0..n).map(|h| ftc_trailer_bytes(cfg, f, h)).collect();
    let trailer_mean = trailer.iter().map(|&b| b as f64).sum::<f64>() / n as f64;

    let max_backlog = c.nic_queue_frames as f64 * c.nic_ns(cfg.packet_bytes);
    let mut exits = Vec::with_capacity(arrivals.len());
    for (i, &a) in arrivals.iter().enumerate() {
        let fl = flows[i];
        let mut t = a;
        let mut dropped = false;
        for s in 0..n {
            let kind = cfg.chain[s];
            // The frame entering stage s still carries hop s-1's trailer.
            let rx_bytes = if s == 0 {
                cfg.packet_bytes
            } else {
                cfg.packet_bytes + trailer[s - 1]
            };
            if nics[s].backlog_at(t) > max_backlog {
                dropped = true;
                break;
            }
            t = nics[s].serve(t, c.nic_ns(rx_bytes));
            t += io_ns(c, rng);
            if s == 0 {
                t += c.cy(c.ftc_forwarder_cy); // forwarder shares server 0
            }
            let w = rss(fl, cfg.workers);
            if workers[s][w] - t > c.worker_queue_ns {
                dropped = true;
                break;
            }
            t = t.max(workers[s][w]);
            // Apply the piggybacked logs of the f predecessors (in steady
            // state: one log per writing predecessor per packet).
            for d in 1..=f {
                let pred = (s + n - (d % n)) % n;
                let pk = cfg.chain[pred];
                if !pk.writes_per_packet() {
                    continue;
                }
                let apply_ns =
                    c.cy(c.ftc_apply_cy + c.ftc_apply_per_byte_cy * pk.state_bytes() as f64);
                let si = if total_order {
                    0
                } else {
                    stream_of(pk, cfg.workers, fl).1
                };
                t = streams[s][d - 1][si].serve(t, apply_ns);
            }
            // The packet transaction + piggyback construction. Writes are
            // copied into the log at commit, while the partition locks are
            // still held — so the piggyback cost extends the critical
            // section for shared state (and the parallel part otherwise).
            t += mb_parallel_ns(kind, c);
            let mut pb = 0.0;
            if kind.writes_per_packet() && f > 0 {
                pb = c
                    .cy(c.ftc_piggyback_cy
                        + c.ftc_piggyback_per_byte_cy * kind.state_bytes() as f64);
                if cfg.ablation == Some(Ablation::NoPiggyback) {
                    // Separate replication message per update instead of
                    // piggybacking: the head builds and sends it…
                    pb += c.cy(c.ftmb_pal_cy);
                }
            }
            if let Some((_, li)) = lock_of(kind, cfg.workers, w, fl) {
                t = locks[s][li].serve(t, mb_cs_ns(kind, c) + pb);
            } else {
                t += pb;
            }
            if cfg.ablation == Some(Ablation::NoPiggyback)
                && kind.writes_per_packet()
                && f > 0
                && s + 1 < n
            {
                // …and waits for the replica's acknowledgment before
                // releasing the packet (§2.2: "a middlebox can release a
                // packet only when it receives an acknowledgement that
                // relevant state updates are replicated"): the message is
                // processed by the successor's replication channel and the
                // ack pays a round trip.
                t = repl_ch[s + 1].serve(t, c.nic_ns(c.ftmb_pal_bytes + kind.state_bytes()))
                    + 2.0 * c.link_prop_ns;
            }
            workers[s][w] = t;
            let frame = cfg.packet_bytes + trailer[s];
            t = hops[s].link.serve(t, c.wire_ns(frame)) + c.link_prop_ns;
        }
        if dropped {
            exits.push(f64::INFINITY);
        } else {
            t = buffer_cpu.serve(t, c.cy(c.ftc_buffer_cy));
            exits.push(t);
        }
    }
    (exits, trailer_mean)
}

/// Resolves FTC buffer releases: a packet carrying wrapped writers' logs is
/// withheld until a later *carrier* packet (or a propagating packet) brings
/// the commit vector back around the ring (paper §5.1).
fn ftc_releases(cfg: &SimConfig, f: usize, arrivals: &[SimNs], exits: &[SimNs]) -> Vec<SimNs> {
    let n = cfg.chain.len();
    let c = &cfg.cost;
    // Does any wrapped middlebox write per packet?
    let any_wrapped_writes = (0..n).any(|m| m + f >= n && cfg.chain[m].writes_per_packet());
    if !any_wrapped_writes || f == 0 {
        return exits.to_vec();
    }
    // Feedback delay buffer→forwarder (the paper's separate 10 GbE link).
    let fb_delay = c.link_prop_ns + 40.0;
    // A propagating packet's traversal time on an idle chain.
    let prop_traverse: f64 = (0..n)
        .map(|h| {
            c.nic_ns(128)
                + c.hop_io_latency_ns
                + c.cy(c.ftc_apply_cy)
                + c.wire_ns(128 + ftc_trailer_bytes(cfg, f, h))
                + c.link_prop_ns
        })
        .sum();

    // Carriers must be *admitted* packets: collect (arrival, exit) of
    // non-dropped packets for the carrier search.
    let admitted: Vec<(SimNs, SimNs)> = arrivals
        .iter()
        .zip(exits)
        .filter(|&(_, &e)| e.is_finite())
        .map(|(&a, &e)| (a, e))
        .collect();
    let mut releases = Vec::with_capacity(exits.len());
    for &exit in exits {
        if !exit.is_finite() {
            releases.push(f64::INFINITY);
            continue;
        }
        let fb_ready = exit + fb_delay;
        // First admitted packet injected after the feedback arrived.
        let j = admitted.partition_point(|&(a, _)| a < fb_ready);
        let rel = if j < admitted.len() && admitted[j].0 - fb_ready <= c.ftc_propagate_timeout_ns {
            admitted[j].1.max(exit)
        } else {
            // Idle chain: the forwarder's timer emits a propagating packet.
            fb_ready + c.ftc_propagate_timeout_ns + prop_traverse
        };
        releases.push(rel);
    }
    releases
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{MbKind, SimConfig, SystemKind};

    fn monitors(n: usize, sharing: usize) -> Vec<MbKind> {
        vec![MbKind::Monitor { sharing }; n]
    }

    #[test]
    fn nf_single_monitor_hits_nic_cap_at_sharing_1() {
        let cfg = SimConfig::saturated(SystemKind::Nf, monitors(1, 1)).with_duration(0.02);
        let r = simulate(&cfg);
        assert!(
            (9.0..=10.8).contains(&r.mpps()),
            "NF Monitor sharing 1 must be NIC-capped: {} Mpps",
            r.mpps()
        );
    }

    #[test]
    fn sharing_reduces_throughput() {
        let lo =
            simulate(&SimConfig::saturated(SystemKind::Nf, monitors(1, 1)).with_duration(0.02));
        let hi =
            simulate(&SimConfig::saturated(SystemKind::Nf, monitors(1, 8)).with_duration(0.02));
        assert!(
            hi.mpps() < lo.mpps() * 0.6,
            "full sharing must cost throughput: {} vs {}",
            hi.mpps(),
            lo.mpps()
        );
        // Fully shared Monitor ≈ 1/cs ≈ 4.5 Mpps.
        assert!((3.5..=5.5).contains(&hi.mpps()), "{}", hi.mpps());
    }

    #[test]
    fn system_ordering_nf_ftc_ftmb() {
        let chain = monitors(2, 1);
        let nf = simulate(&SimConfig::saturated(SystemKind::Nf, chain.clone()).with_duration(0.02));
        let ftc = simulate(
            &SimConfig::saturated(SystemKind::Ftc { f: 1 }, chain.clone()).with_duration(0.02),
        );
        let ftmb = simulate(
            &SimConfig::saturated(SystemKind::Ftmb { snapshot: None }, chain).with_duration(0.02),
        );
        assert!(
            nf.mpps() >= ftc.mpps() * 0.99,
            "NF ≥ FTC: {} vs {}",
            nf.mpps(),
            ftc.mpps()
        );
        assert!(
            ftc.mpps() > ftmb.mpps() * 1.15,
            "FTC must beat FTMB clearly: {} vs {}",
            ftc.mpps(),
            ftmb.mpps()
        );
        // FTMB capped near 5.26 Mpps by per-packet PALs + OL.
        assert!((4.0..=5.6).contains(&ftmb.mpps()), "{}", ftmb.mpps());
    }

    #[test]
    fn ftc_latency_grows_with_chain_length() {
        let mut means = Vec::new();
        for n in [2usize, 5] {
            let cfg = SimConfig::at_rate(SystemKind::Ftc { f: 1 }, monitors(n, 1), 2e6)
                .with_workers(1)
                .with_duration(0.02);
            let r = simulate(&cfg);
            assert!(r.released > 0);
            means.push(r.mean_latency().unwrap());
        }
        assert!(
            means[1] > means[0],
            "latency must grow with chain length: {means:?}"
        );
    }

    #[test]
    fn ftc_buffer_holds_cost_latency_but_not_throughput() {
        let chain = monitors(3, 1);
        let nf = SimConfig::at_rate(SystemKind::Nf, chain.clone(), 2e6)
            .with_workers(1)
            .with_duration(0.02);
        let ftc = SimConfig::at_rate(SystemKind::Ftc { f: 1 }, chain, 2e6)
            .with_workers(1)
            .with_duration(0.02);
        let rn = simulate(&nf);
        let rf = simulate(&ftc);
        assert!(rf.mean_latency().unwrap() > rn.mean_latency().unwrap());
        // Sustained load at 2 Mpps for both.
        assert!((1.8e6..2.2e6).contains(&rn.achieved_pps));
        assert!((1.8e6..2.2e6).contains(&rf.achieved_pps));
    }

    #[test]
    fn snapshots_hurt_long_chains_more() {
        let snap = Some((50e6, 6e6));
        let short = simulate(
            &SimConfig::saturated(SystemKind::Ftmb { snapshot: snap }, monitors(2, 1))
                .with_duration(0.3),
        );
        let long = simulate(
            &SimConfig::saturated(SystemKind::Ftmb { snapshot: snap }, monitors(5, 1))
                .with_duration(0.3),
        );
        let plain = simulate(
            &SimConfig::saturated(SystemKind::Ftmb { snapshot: None }, monitors(5, 1))
                .with_duration(0.3),
        );
        assert!(
            short.mpps() > long.mpps(),
            "{} vs {}",
            short.mpps(),
            long.mpps()
        );
        assert!(plain.mpps() > long.mpps());
    }

    #[test]
    fn latency_spikes_past_saturation() {
        let chain = monitors(1, 8);
        let under =
            simulate(&SimConfig::at_rate(SystemKind::Nf, chain.clone(), 2e6).with_duration(0.02));
        let over = simulate(&SimConfig::at_rate(SystemKind::Nf, chain, 8e6).with_duration(0.02));
        // Queue residency is ring-bounded, so the spike is finite but must
        // still dwarf the uncongested latency.
        assert!(
            over.mean_latency().unwrap() > under.mean_latency().unwrap() * 5,
            "saturation must blow up latency: {:?} vs {:?}",
            over.mean_latency(),
            under.mean_latency()
        );
    }

    #[test]
    fn gen_state_size_reduces_throughput_modestly() {
        let small = simulate(
            &SimConfig::saturated(
                SystemKind::Ftc { f: 1 },
                vec![MbKind::Gen { state: 16 }, MbKind::Passthrough],
            )
            .with_workers(1)
            .with_duration(0.02),
        );
        let big = simulate(
            &SimConfig::saturated(
                SystemKind::Ftc { f: 1 },
                vec![MbKind::Gen { state: 256 }, MbKind::Passthrough],
            )
            .with_workers(1)
            .with_duration(0.02),
        );
        assert!(big.mpps() < small.mpps());
        assert!(
            big.mpps() > small.mpps() * 0.75,
            "state growth must cost only modest throughput: {} vs {}",
            big.mpps(),
            small.mpps()
        );
        assert!(big.trailer_bytes > small.trailer_bytes);
    }

    #[test]
    fn replication_factor_grows_trailer_and_costs_little_throughput() {
        let chain = monitors(5, 1);
        let f1 = simulate(
            &SimConfig::saturated(SystemKind::Ftc { f: 1 }, chain.clone()).with_duration(0.02),
        );
        let f4 =
            simulate(&SimConfig::saturated(SystemKind::Ftc { f: 4 }, chain).with_duration(0.02));
        assert!(f4.trailer_bytes > f1.trailer_bytes * 2.0);
        assert!(
            f4.mpps() > f1.mpps() * 0.8,
            "higher f must cost only a few percent: {} vs {}",
            f4.mpps(),
            f1.mpps()
        );
    }
}
