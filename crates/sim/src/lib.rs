//! Performance models of the paper's systems, in virtual time.
//!
//! # Why a simulator
//!
//! The paper's evaluation ran on 12 testbed servers (8-core Xeon D-1540 @
//! 2 GHz, 40 GbE Mellanox NICs). The threaded runtime in `ftc-core`
//! reproduces the *protocol* faithfully, but wall-clock throughput scaling
//! cannot be reproduced on this build machine (a single-core VM). This
//! crate therefore models the *performance* of NF, FTC, FTMB and
//! FTMB+Snapshot chains in virtual time and regenerates the shapes of every
//! figure in §7.
//!
//! # Technique
//!
//! The chains are feed-forward networks of FIFO resources (NIC rx units,
//! worker cores, partition locks, serialized log-apply streams, links, the
//! FTMB output logger). For such networks, walking packets in arrival order
//! and advancing each resource's `free_at` horizon produces the exact same
//! schedule as an event-heap discrete-event simulation, at a fraction of
//! the cost. The only feedback path — FTC's buffer⭢forwarder ring — affects
//! only *release* times, which are resolved in a second pass that mirrors
//! the buffer's commit-vector release rule.
//!
//! # Calibration
//!
//! Per-packet CPU costs come from the paper's own Table 2 (cycles at 2 GHz)
//! where available, and are otherwise set so that the anchor points the
//! paper states in prose hold: the ~10 Mpps NIC receive cap (§7.3 footnote),
//! FTMB's 5.26 Mpps PAL ceiling at sharing level 1 (§7.3), and the 6 ms /
//! 50 ms snapshot stall of FTMB+Snapshot (§7.4). See [`cost::CostModel`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod model;
pub mod report;
pub mod resource;
pub mod run;

pub use cost::CostModel;
pub use model::{Ablation, MbKind, SimConfig, SystemKind};
pub use report::SimReport;
pub use run::simulate;
