//! The calibrated cost model.
//!
//! All CPU costs are expressed in cycles on the paper's 2.0 GHz Xeon D-1540
//! and converted to nanoseconds at simulation time. Sources:
//!
//! | Constant | Source |
//! |---|---|
//! | MazuNAT processing 355 cy, locking 152 cy | Table 2 |
//! | piggyback copy 58 cy, forwarder 8 cy, buffer 100 cy | Table 2 |
//! | NIC receive cap ≈ 10.2 Mpps (98 ns/pkt) | §7.3 footnote 1 ("9.6–10.6 Mpps") |
//! | FTMB OL ≈ 5.26 Mpps (190 ns/pkt) | §7.3 ("limits FTMB's throughput to 5.26 Mpps") |
//! | Snapshot stall 6 ms / 50 ms | §7.4 |
//! | Monitor/SimpleNAT/Gen/Firewall base costs | calibrated to the Fig. 6/7 anchor bars |

use serde::Serialize;

/// Calibrated per-operation costs.
#[derive(Debug, Clone, Serialize)]
pub struct CostModel {
    /// CPU frequency used to convert cycles to time.
    pub cpu_ghz: f64,
    /// Fixed per-packet NIC receive processing time (ns) per server.
    pub nic_rx_base_ns: f64,
    /// Additional NIC receive time per frame byte (DMA/copy component) —
    /// this is what makes piggyback trailers cost throughput when a chain
    /// is NIC-bound (the paper's 6–13% FTC overhead in Fig. 9).
    pub nic_rx_per_byte_ns: f64,
    /// NIC receive ring depth in frames; arrivals beyond this backlog are
    /// dropped at admission (RX overruns under overload).
    pub nic_queue_frames: usize,
    /// Maximum per-worker queue residency before the RSS ring overruns and
    /// drops (bounds worker backlogs the way rings bound NIC backlogs).
    pub worker_queue_ns: f64,
    /// Uniform multiplicative jitter applied to per-packet IO latency
    /// (DPDK batching variability): `io × U[1-j, 1+j]`. Gives latency
    /// distributions their spread (Fig. 11).
    pub io_jitter: f64,
    /// Link bandwidth in bits/s (40 GbE).
    pub link_bps: f64,
    /// Fixed per-hop propagation + switching delay (ns).
    pub link_prop_ns: f64,
    /// Per-server IO latency (DPDK RX/TX batching + queue residency) added
    /// to every packet's delay without occupying a resource. Calibrated so
    /// an NF middlebox costs 10-15 us of latency (§3.1: "at each middlebox
    /// of a chain, latency should be within 10 to 100 us").
    pub hop_io_latency_ns: f64,

    // -- middlebox work (cycles) --------------------------------------
    /// MazuNAT parallel processing (Table 2).
    pub mazu_proc_cy: f64,
    /// MazuNAT critical section (Table 2 "locking").
    pub mazu_cs_cy: f64,
    /// SimpleNAT parallel / critical-section cycles.
    pub snat_proc_cy: f64,
    /// SimpleNAT critical section.
    pub snat_cs_cy: f64,
    /// Monitor parallel cycles.
    pub monitor_proc_cy: f64,
    /// Monitor shared-counter critical section (read-modify-write of the
    /// group counter; dominates under high sharing).
    pub monitor_cs_cy: f64,
    /// Gen parallel cycles (base).
    pub gen_proc_cy: f64,
    /// Gen extra cycles per byte of generated state.
    pub gen_per_byte_cy: f64,
    /// Firewall cycles (stateless).
    pub firewall_proc_cy: f64,

    // -- FTC (Table 2) --------------------------------------------------
    /// Constructing/copying the piggyback log.
    pub ftc_piggyback_cy: f64,
    /// Extra piggyback cycles per byte of written state.
    pub ftc_piggyback_per_byte_cy: f64,
    /// Applying one replicated log at a replica (serialized per log
    /// stream).
    pub ftc_apply_cy: f64,
    /// Extra apply cycles per byte of state.
    pub ftc_apply_per_byte_cy: f64,
    /// Forwarder per-packet work.
    pub ftc_forwarder_cy: f64,
    /// Buffer per-packet work.
    pub ftc_buffer_cy: f64,
    /// Forwarder idle timeout before a propagating packet (ns).
    pub ftc_propagate_timeout_ns: f64,
    /// Fixed FTC framing on *every* packet (empty-message trailer + the
    /// IPv4 option): "FTC has to pay the cost of adding space to packets
    /// for possible state writes, even when state writes are not
    /// performed" (§7.3).
    pub ftc_framing_bytes: usize,
    /// Fixed piggyback framing bytes per log (header + deps).
    pub ftc_log_overhead_bytes: usize,
    /// Commit vector bytes (trimmed dense vector).
    pub ftc_commit_bytes: usize,

    // -- FTMB -----------------------------------------------------------
    /// Master-side PAL generation + send per state-accessing packet.
    pub ftmb_pal_cy: f64,
    /// Input logger per-packet cost.
    pub ftmb_il_cy: f64,
    /// Output logger per-packet cost (the 5.26 Mpps ceiling).
    pub ftmb_ol_ns: f64,
    /// PAL message size on the wire.
    pub ftmb_pal_bytes: usize,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            cpu_ghz: 2.0,
            nic_rx_base_ns: 88.0, // with per-byte: ≈ 9.2–10.2 Mpps cap
            nic_rx_per_byte_ns: 0.08,
            nic_queue_frames: 1024,
            worker_queue_ns: 150_000.0,
            io_jitter: 0.35,
            link_bps: 40e9,      // 40 GbE data plane
            link_prop_ns: 500.0, // ToR switch + cabling
            hop_io_latency_ns: 18_000.0,
            mazu_proc_cy: 355.0, // Table 2
            mazu_cs_cy: 152.0,   // Table 2
            snat_proc_cy: 300.0,
            snat_cs_cy: 140.0,
            monitor_proc_cy: 200.0,
            monitor_cs_cy: 440.0, // → ~4.5 Mpps fully shared (Fig 6)
            gen_proc_cy: 240.0,
            gen_per_byte_cy: 0.12,
            firewall_proc_cy: 180.0,
            ftc_piggyback_cy: 58.0, // Table 2
            ftc_piggyback_per_byte_cy: 0.08,
            ftc_apply_cy: 130.0,
            ftc_apply_per_byte_cy: 0.06,
            ftc_forwarder_cy: 8.0, // Table 2
            ftc_buffer_cy: 100.0,  // Table 2
            ftc_propagate_timeout_ns: 1.0e6,
            ftc_framing_bytes: 18,
            ftc_log_overhead_bytes: 28,
            ftc_commit_bytes: 16,
            ftmb_pal_cy: 160.0,
            ftmb_il_cy: 100.0,
            ftmb_ol_ns: 190.0, // → 5.26 Mpps (§7.3)
            ftmb_pal_bytes: 24,
        }
    }
}

impl CostModel {
    /// Converts cycles to nanoseconds.
    pub fn cy(&self, cycles: f64) -> f64 {
        cycles / self.cpu_ghz
    }

    /// Serialization time of `bytes` on the data-plane link, in ns.
    pub fn wire_ns(&self, bytes: usize) -> f64 {
        bytes as f64 * 8.0 / self.link_bps * 1e9
    }

    /// NIC receive processing time for a frame of `bytes`.
    pub fn nic_ns(&self, bytes: usize) -> f64 {
        self.nic_rx_base_ns + self.nic_rx_per_byte_ns * bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_hold() {
        let c = CostModel::default();
        // NIC cap for small frames ≈ the paper's 9.6–10.6 Mpps window.
        let cap_small = 1e9 / c.nic_ns(128) / 1e6;
        assert!((9.6..=10.6).contains(&cap_small), "{cap_small}");
        // 256 B frames land slightly below.
        let cap = 1e9 / c.nic_ns(256) / 1e6;
        assert!((8.8..=10.0).contains(&cap), "{cap}");
        // FTMB OL ceiling ≈ 5.26 Mpps
        let ol = 1e9 / c.ftmb_ol_ns / 1e6;
        assert!((5.0..=5.5).contains(&ol), "{ol}");
        // Table 2 cycle conversions at 2 GHz: 355 cy ≈ 177.5 ns.
        assert!((c.cy(c.mazu_proc_cy) - 177.5).abs() < 1e-9);
    }

    #[test]
    fn wire_time_40g() {
        let c = CostModel::default();
        // 256 B at 40 Gbps = 51.2 ns
        assert!((c.wire_ns(256) - 51.2).abs() < 0.01);
    }
}
