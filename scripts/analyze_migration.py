#!/usr/bin/env python3
"""Static migration-completeness verifier.

A live handover (``ftc reconfig``) moves a middlebox instance's state by
exporting the flow partitions the migration manifest names. If
``MIGRATION_MANIFEST`` in ``crates/mbox/src/spec_lang.rs`` omits a prefix
a middlebox actually uses, the transfer silently strands that state on
the retired source — the destination answers from a partial store and
invariant **I6** (migrated state = committed prefix at source) breaks at
runtime with no error anywhere.

This lint rules that out statically, from two inputs:

1. The per-middlebox access sets from ``analyze_state_access.py --json``
   (declared prefixes plus the read/write sets *derived from source*) —
   run via a subprocess by default, or loaded from a file given as a
   positional argument.
2. ``MIGRATION_MANIFEST`` parsed out of spec_lang.rs with the same
   table grammar ``analyze_state_access.py`` uses for
   ``DECLARED_STATE_PREFIXES``.

Checks, per middlebox:

* every **declared** prefix is in the manifest — a declared-but-
  unmanifested prefix is exactly a migration path that skips a state
  prefix (rejected with the stranded-state message);
* every **derived write** prefix is in the manifest — catches the case
  where source grows a write the declaration table missed but the
  manifest check in Rust can't see (defense in depth over the derived
  sets, not just the declared table);
* every manifest prefix is declared — a stale extra entry is a table
  bug (it transfers nothing), flagged so the tables can't drift apart;
* every middlebox with an access row has a manifest row and vice versa.

The dual dynamic check lives in
``crates/mbox/tests/migration_agreement.rs``: a proptest forcing that
this static verdict coincides with whether a manifest-filtered transfer
actually strands keys. Exit 0 = complete; 1 = violations.
``--self-test`` runs the checker against an embedded fixture middlebox
that omits a declared prefix (must be rejected) plus a clean case.
"""

import json
import re
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SPEC_LANG = ROOT / "crates" / "mbox" / "src" / "spec_lang.rs"
ACCESS_ANALYZER = ROOT / "scripts" / "analyze_state_access.py"


def parse_manifest(spec_lang_text):
    """The name -> prefixes table from MIGRATION_MANIFEST."""
    m = re.search(r"MIGRATION_MANIFEST[^=]*=\s*&\[(.*?)\];", spec_lang_text, re.S)
    if not m:
        raise SystemExit(
            "analyze_migration: MIGRATION_MANIFEST not found in "
            f"{SPEC_LANG.relative_to(ROOT)} — the migration lint and the "
            "runtime manifest have lost their shared table"
        )
    manifest = {}
    for name, prefixes in re.findall(
        r'\(\s*"(\w+)"\s*,\s*&\[(.*?)\]\s*\)', m.group(1), re.S
    ):
        manifest[name] = set(re.findall(r'"([^"]+)"', prefixes))
    return manifest


def check(access, manifest):
    """-> violation strings for {name: {declared,reads,writes}} vs manifest."""
    violations = []
    for name, sets in access.items():
        row = manifest.get(name)
        if row is None:
            violations.append(
                f"{name}: middlebox has no row in MIGRATION_MANIFEST "
                f"({SPEC_LANG.relative_to(ROOT)}); a handover of `{name}` "
                "would transfer nothing — add a row (empty for stateless "
                "stages)"
            )
            continue
        declared = set(sets.get("declared", []))
        writes = set(sets.get("writes", []))
        for p in sorted(declared - row):
            violations.append(
                f"{name}: declared prefix `{p}` is missing from the "
                f"migration manifest — a handover would strand `{p}` state "
                f"on the retired source (I6 violation); add `{p}` to "
                f"`{name}` in MIGRATION_MANIFEST"
            )
        for p in sorted(writes - declared - row):
            violations.append(
                f"{name}: source writes under prefix `{p}` but neither the "
                "declaration table nor the migration manifest lists it — "
                f"a handover would strand `{p}` state on the retired source"
            )
        for p in sorted(row - declared):
            violations.append(
                f"{name}: manifest lists prefix `{p}` that is never "
                "declared — a stale entry transfers nothing; remove it or "
                "declare the prefix"
            )
    for name in sorted(set(manifest) - set(access)):
        violations.append(
            f"{name}: MIGRATION_MANIFEST row has no middlebox in the "
            "access report — remove the stale row or fix the analyzer's "
            "module map"
        )
    return violations


def self_test():
    """The checker must reject each planted incompleteness."""
    # 1. Fixture middlebox omitting a declared prefix from its manifest:
    #    `leaky_nat` declares conn:/ports: but only manifests ports:.
    access = {
        "leaky_nat": {
            "declared": ["conn:", "ports:"],
            "reads": ["conn:"],
            "writes": ["conn:", "ports:"],
        }
    }
    manifest = {"leaky_nat": {"ports:"}}
    got = check(access, manifest)
    assert any(
        "strand `conn:` state" in v and "I6 violation" in v for v in got
    ), f"self-test: missing-prefix fixture not rejected: {got!r}"

    # 2. A derived write the declaration table missed must still be caught.
    access = {
        "drifty": {"declared": ["d:"], "reads": [], "writes": ["d:", "rogue:"]}
    }
    got = check(access, {"drifty": {"d:"}})
    assert any(
        "neither the declaration table nor the migration manifest" in v
        for v in got
    ), f"self-test: undeclared-write fixture not rejected: {got!r}"

    # 3. Stale manifest entry and missing rows.
    got = check(
        {"a": {"declared": ["a:"], "reads": [], "writes": ["a:"]}},
        {"a": {"a:", "ghost:"}, "b": {"b:"}},
    )
    assert any("never declared" in v for v in got), got
    assert any("no middlebox in the access report" in v for v in got), got
    got = check({"c": {"declared": [], "reads": [], "writes": []}}, {})
    assert any("no row in MIGRATION_MANIFEST" in v for v in got), got

    # 4. A complete manifest passes.
    access = {
        "nat": {"declared": ["n:"], "reads": ["n:"], "writes": ["n:"]},
        "fw": {"declared": [], "reads": [], "writes": []},
    }
    got = check(access, {"nat": {"n:"}, "fw": set()})
    assert not got, f"self-test: complete manifest flagged: {got!r}"
    print("analyze_migration: self-test ok")


def load_access_report(args):
    """The access sets: from a JSON file argument, or the analyzer."""
    paths = [a for a in args if not a.startswith("-")]
    if paths:
        return json.loads(Path(paths[0]).read_text())
    proc = subprocess.run(
        [sys.executable, str(ACCESS_ANALYZER), "--json"],
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        sys.stdout.write(proc.stdout)
        raise SystemExit(
            "analyze_migration: analyze_state_access.py --json failed — "
            "fix the state-access contract first"
        )
    return json.loads(proc.stdout)


def main():
    if "--self-test" in sys.argv:
        self_test()
        return 0
    access = load_access_report(sys.argv[1:])
    manifest = parse_manifest(SPEC_LANG.read_text())
    violations = check(access, manifest)
    if violations:
        for v in violations:
            print(f"analyze_migration: {v}")
        print(f"analyze_migration: {len(violations)} violation(s)")
        return 1
    total = sum(len(p) for p in manifest.values())
    print(
        f"analyze_migration: complete — {len(manifest)} middleboxes, "
        f"{total} manifested prefixes cover every declared prefix and "
        "every derived write"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
