#!/usr/bin/env python3
"""Static async-safety analyzer for the socket backend and data plane.

The async-transport model checker (``ftc_audit::async_check``) explores
the socket backend dynamically; this script is the static half of the same
contract. The det-mode executor polls every task on one thread, so a
single blocking call inside a task poll wedges the whole schedule — and in
production (thread-per-task) the same call turns a pipelined connection
into a head-of-line stall. The analyzer derives three things from source,
brace- and ``await``-aware rather than line-regex-based:

1. ``lock-cycle``   — a **lock-acquisition-order graph**: within each
                      function body, acquiring lock B while a guard on
                      lock A is live adds edge A→B (guards tracked by
                      ``let`` binding to the end of their enclosing brace
                      scope, or an explicit ``drop(guard)``). A cycle in
                      the union graph is a deadlock two threads can
                      actually reach.
2. ``await-guard``  — an ``.await`` while a lock guard is live inside an
                      ``async fn`` or ``async`` block. Across an await the
                      task can be parked indefinitely; under the det
                      executor every other task needing that parking_lot
                      lock then blocks a poll (the one thing det mode
                      cannot recover from), and in production it holds the
                      lock across arbitrary I/O latency.
3. ``async-blocking`` — a blocking call (``std::thread::sleep``, sync
                      ``std::net``/``std::os::unix::net`` constructors,
                      sync channel ``recv``/``recv_timeout``/
                      ``recv_deadline`` without ``.await``, ``block_on``,
                      det-mode driver waits) lexically inside an async
                      context, or inside a named function reachable from
                      one through the call graph (name-based, resolved
                      against functions defined in the scanned tree).

Rule 3 subsumes the old regex-only ``block-on`` rule that used to live in
``forbidden_patterns.py`` (rule 6): ``block_on`` in the data-plane crates
(``crates/{packet,net,core,stm}``) is still flagged *anywhere*, not just
in async context, because parking a packet-path worker on a future
reintroduces the head-of-line stall the thread-per-task design avoids.

``// async-ok: <reason>`` on the flagged line or the line directly above
exempts that line (say why alongside — e.g. a branch that provably runs
only under the thread-per-task scheduler). Test blocks (``#[cfg(test)]``)
are stripped the same way the sibling scripts do. Exit 0 = clean,
1 = findings. ``--self-test`` runs the analyses against embedded
known-bad and known-clean fixtures.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

SKIP_DIRS = {"target", ".git", "vendor"}
SKIP_PARTS = {"tests", "benches", "examples"}

# Crates on (or under) the packet hot path: block_on is forbidden here
# outright, async context or not (migrated from forbidden_patterns rule 6).
DATA_PLANE_CRATES = {
    ("crates", "packet", "src"),
    ("crates", "net", "src"),
    ("crates", "core", "src"),
    ("crates", "stm", "src"),
}

# (rule-tag, pattern) pairs for calls that park the calling thread. The
# sync-recv pattern is await-aware at the use site (an async channel's
# `rx.recv().await` is fine; a crossbeam `rx.recv_timeout(..)` is not).
BLOCKING_CALLS = [
    ("thread-sleep", re.compile(r"\bthread\s*::\s*sleep\s*\(")),
    ("block-on", re.compile(r"\bblock_on\s*\(")),
    ("det-driver-wait", re.compile(r"\b(?:det\s*::\s*)?(?:block_until|block_sleep)\s*\(")),
    ("sync-net", re.compile(r"\bstd::net::(?:TcpStream|TcpListener|UdpSocket)\b")),
    ("sync-uds", re.compile(r"\bstd::os::unix::net::Unix(?:Stream|Listener)\b")),
    ("sync-recv", re.compile(r"\.\s*recv(?:_timeout|_deadline)?\s*\(")),
]

LOCK_ACQUIRE = re.compile(r"([\w.\(\)\s]*?)(\w+)\s*\.\s*(?:lock|read|write)\s*\(\s*\)")
AWAIT = re.compile(r"\.\s*await\b")
FN_DEF = re.compile(r"^\s*(?:pub(?:\([\w:\s]+\))?\s+)?(?:const\s+)?(async\s+)?fn\s+(\w+)")
ASYNC_BLOCK = re.compile(r"\basync\s+(?:move\s+)?\{")
# Call-graph edges are deliberately narrow: free/path calls (`helper(..)`,
# `frame::decode(..)`) and `self.method(..)` only. A method call on any
# other receiver (`rx.recv()`, `conn.send()`) is NOT an edge — resolving
# those by bare name links every `recv` in the tree to every other and
# drowns the report in phantom chains; the dangerous ones are already
# caught point-blank by the blocking-pattern table at the call site.
FREE_CALL = re.compile(r"(?<![\w.])([a-z_][a-z0-9_]*)\s*\(")
SELF_METHOD = re.compile(r"\bself\s*\.\s*([a-z_][a-z0-9_]*)\s*\(")

RUST_KEYWORDS = {
    "if", "while", "for", "match", "return", "loop", "fn", "let", "in",
    "move", "ref", "mut", "as", "use", "where", "impl", "dyn", "box",
    "unsafe", "else", "continue", "break", "struct", "enum", "type",
}

# Names defined so many times across the tree that a name-based edge says
# nothing (`reader_task` calling `FrameDecoder::new` is not a path into
# every other type's `new`). Calls to these are not followed as edges.
NONSPECIFIC_CALLEES = {
    "new", "default", "clone", "drop", "len", "is_empty", "min", "max",
    "get", "insert", "remove", "push", "iter", "name", "send", "recv",
}


def strip_test_blocks(lines):
    """Yields (lineno, line) outside #[cfg(test)] item blocks."""
    i, n = 0, len(lines)
    while i < n:
        if re.search(r"#\[cfg\(test\)\]", lines[i]):
            depth, opened = 0, False
            while i < n:
                for ch in lines[i]:
                    if ch == "{":
                        depth += 1
                        opened = True
                    elif ch == "}":
                        depth -= 1
                if opened and depth <= 0:
                    break
                i += 1
            i += 1
            continue
        yield i + 1, lines[i]
        i += 1


def split_code(line):
    """The code part of a line (before any // comment)."""
    return line.split("//")[0] if "//" in line else line


def exempt(line, prev):
    return "async-ok:" in line or "async-ok:" in prev


class FnBody:
    """One function (or synthetic async-block root) with its code lines."""

    def __init__(self, name, rel, is_async, lines):
        self.name = name
        self.rel = rel
        self.is_async = is_async
        self.lines = lines  # [(lineno, raw_line)]
        self.calls = set()
        self.blocking = []  # [(lineno, rule, stripped_line)]

    def qual(self):
        return f"{self.rel}:{self.name}"


def parse_functions(rel, text):
    """-> list of FnBody: every fn, plus synthetic roots for async blocks.

    Bodies are brace-matched from the fn signature; an ``async {}`` block
    inside a sync fn becomes its own async root (the enclosing fn keeps
    the lines too, which only makes the analysis more conservative).
    """
    code_lines = [(no, line) for no, line in strip_test_blocks(text.splitlines())]
    fns = []
    i = 0
    while i < len(code_lines):
        no, line = code_lines[i]
        m = FN_DEF.match(split_code(line))
        if not m:
            i += 1
            continue
        is_async, name = bool(m.group(1)), m.group(2)
        depth, opened, body = 0, False, []
        while i < len(code_lines):
            bno, bline = code_lines[i]
            body.append((bno, bline))
            for ch in split_code(bline):
                if ch == "{":
                    depth += 1
                    opened = True
                elif ch == "}":
                    depth -= 1
            if opened and depth <= 0:
                break
            i += 1
        fns.append(FnBody(name, rel, is_async, body))
        i += 1
    # Synthetic async roots for async blocks inside sync fns.
    for fn in list(fns):
        if fn.is_async:
            continue
        j = 0
        blocks = 0
        while j < len(fn.lines):
            no, line = fn.lines[j]
            if ASYNC_BLOCK.search(split_code(line)):
                depth, opened, sub = 0, False, []
                while j < len(fn.lines):
                    bno, bline = fn.lines[j]
                    sub.append((bno, bline))
                    for ch in split_code(bline):
                        if ch == "{":
                            depth += 1
                            opened = True
                        elif ch == "}":
                            depth -= 1
                    if opened and depth <= 0:
                        break
                    j += 1
                blocks += 1
                fns.append(
                    FnBody(f"{fn.name}::async_block_{blocks}", fn.rel, True, sub)
                )
            j += 1
    return fns


def analyze_fn(fn, findings, lock_edges):
    """Per-function pass: calls, blocking sites, guard scopes, lock edges."""
    in_data_plane = Path(fn.rel).parts[:3] in DATA_PLANE_CRATES
    guards = []  # live guards: [name or None, lock_id, brace_depth]
    depth = 0
    prev = ""
    for no, raw in fn.lines:
        code = split_code(raw)
        is_sig = bool(FN_DEF.match(code))

        # Collect callee names for the reachability graph.
        for callee in FREE_CALL.findall(code) + SELF_METHOD.findall(code):
            if callee not in RUST_KEYWORDS and callee not in NONSPECIFIC_CALLEES:
                fn.calls.add(callee)

        # Blocking-call sites (await-aware for channel recv). A fn
        # signature line is a definition, not a call — `pub fn
        # block_sleep(..)` must not flag itself.
        for rule, pat in BLOCKING_CALLS if not is_sig else []:
            m = pat.search(code)
            if not m:
                continue
            if rule == "sync-recv" and AWAIT.search(code[m.end():]):
                continue  # async recv: `rx.recv().await`
            if rule == "block-on" and in_data_plane and not exempt(raw, prev):
                findings.append(
                    f"{fn.rel}:{no}: [async-blocking] `block_on` in a "
                    f"data-plane crate (fn `{fn.name}`): parking a packet-"
                    "path worker on a future reintroduces head-of-line "
                    f"blocking — {raw.strip()}"
                )
            if not exempt(raw, prev):
                fn.blocking.append((no, rule, raw.strip()))

        # Guard-scope tracking by brace depth.
        entry_depth = depth
        for ch in code:
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
        guards = [g for g in guards if g[2] <= min(entry_depth, depth)]
        dm = re.search(r"\bdrop\s*\(\s*(\w+)\s*\)", code)
        if dm:
            guards = [g for g in guards if g[0] != dm.group(1)]

        for am in LOCK_ACQUIRE.finditer(code):
            lock_id = am.group(2)
            if lock_id in ("self", "std"):
                continue
            crate = Path(fn.rel).parts[1] if len(Path(fn.rel).parts) > 1 else fn.rel
            qualified = f"{crate}:{lock_id}"
            for _, held, _ in guards:
                if held != qualified:
                    lock_edges.setdefault((held, qualified), f"{fn.rel}:{no}")
            bm = re.match(r"\s*let\s+(?:mut\s+)?(\w+)\s*=", code)
            if bm and not re.search(
                rf"{re.escape(am.group(0))}\s*\.", code
            ):  # `let g = x.lock();` binds a guard; `x.lock().f()` is a temporary
                guards.append((bm.group(1), qualified, entry_depth))

        # Await while a guard is live (async contexts only).
        if fn.is_async and AWAIT.search(code) and guards and not exempt(raw, prev):
            held = ", ".join(sorted({g[1] for g in guards}))
            findings.append(
                f"{fn.rel}:{no}: [await-guard] `.await` in async fn "
                f"`{fn.name}` while holding lock guard(s) {held}: the task "
                "can park indefinitely with the lock held, stalling every "
                f"det-executor poll that needs it — {raw.strip()}"
            )
        prev = raw


def find_lock_cycles(lock_edges):
    """DFS cycle detection over the acquisition-order graph."""
    graph = {}
    for (a, b), site in lock_edges.items():
        graph.setdefault(a, []).append((b, site))
    findings = []
    seen_cycles = set()

    def dfs(node, stack, sites):
        for nxt, site in graph.get(node, []):
            if nxt in stack:
                cycle = stack[stack.index(nxt):] + [nxt]
                key = frozenset(cycle)
                if key not in seen_cycles:
                    seen_cycles.add(key)
                    path = " -> ".join(cycle)
                    where = "; ".join(sites + [site])
                    findings.append(
                        f"[lock-cycle] lock acquisition order cycle "
                        f"{path} (edges at {where}): two threads taking "
                        "these locks in opposite orders deadlock"
                    )
                continue
            dfs(nxt, stack + [nxt], sites + [site])

    for node in list(graph):
        dfs(node, [node], [])
    return findings


def find_async_blocking(fns):
    """BFS from async roots through the name-based call graph."""
    by_name = {}
    for fn in fns:
        by_name.setdefault(fn.name, []).append(fn)
    findings = []
    reported = set()
    for root in fns:
        if not root.is_async:
            continue
        # Direct blocking sites in the async body itself.
        for no, rule, line in root.blocking:
            key = (root.rel, no)
            if key not in reported:
                reported.add(key)
                findings.append(
                    f"{root.rel}:{no}: [async-blocking] {rule} inside async "
                    f"`{root.name}`: blocks the det-executor poll (and a "
                    f"production worker thread) — {line}"
                )
        # Reachable named functions with blocking sites.
        seen = {root.name}
        frontier = [(root, [root.name])]
        while frontier:
            fn, path = frontier.pop()
            for callee in sorted(fn.calls):
                if callee in seen:
                    continue
                seen.add(callee)
                for target in by_name.get(callee, []):
                    for no, rule, line in target.blocking:
                        key = (target.rel, no)
                        if key not in reported:
                            reported.add(key)
                            chain = " -> ".join(path + [callee])
                            findings.append(
                                f"{target.rel}:{no}: [async-blocking] {rule} "
                                f"reachable from async `{root.name}` via "
                                f"{chain}: blocks the det-executor poll — "
                                f"{line}"
                            )
                    frontier.append((target, path + [callee]))
    return findings


def rust_sources():
    for path in sorted(ROOT.rglob("*.rs")):
        rel = path.relative_to(ROOT)
        parts = set(rel.parts)
        if parts & SKIP_DIRS or parts & SKIP_PARTS:
            continue
        yield rel


def run(files):
    """-> findings for {relname: text}."""
    findings = []
    lock_edges = {}
    all_fns = []
    for rel, text in files.items():
        for fn in parse_functions(rel, text):
            analyze_fn(fn, findings, lock_edges)
            all_fns.append(fn)
    findings.extend(find_lock_cycles(lock_edges))
    findings.extend(find_async_blocking(all_fns))
    return findings, len(all_fns)


def self_test():
    """Each analysis must catch its planted bug and pass its clean twin."""
    lock_cycle = {
        "crates/net/src/x.rs": (
            "fn ship(&self) {\n"
            "    let a = self.dial.lock();\n"
            "    let b = self.conns.lock();\n"
            "    b.push(a.take());\n"
            "}\n"
            "fn recover(&self) {\n"
            "    let b = self.conns.lock();\n"
            "    let a = self.dial.lock();\n"
            "    a.merge(b.drain());\n"
            "}\n"
        )
    }
    await_guard = {
        "crates/net/src/x.rs": (
            "async fn route(&self) {\n"
            "    let pending = self.state.pending.lock();\n"
            "    self.out.send(f).await;\n"
            "    pending.remove(&f.seq);\n"
            "}\n"
        )
    }
    blocking_reachable = {
        "crates/net/src/x.rs": (
            "fn settle(&self) {\n"
            "    std::thread::sleep(self.backoff);\n"
            "}\n"
            "async fn pump(&self) {\n"
            "    loop { self.settle(); }\n"
            "}\n"
        )
    }
    block_on_sync = {
        "crates/net/src/x.rs": (
            "fn bridge(&self) {\n"
            "    self.rt.block_on(self.fut());\n"
            "}\n"
        )
    }
    sync_recv_in_async_block = {
        "crates/net/src/x.rs": (
            "fn spawn_pump(&self) {\n"
            "    self.rt.spawn(async move {\n"
            "        let f = rxq.recv_timeout(BUDGET);\n"
            "    });\n"
            "}\n"
        )
    }
    cases = [
        (lock_cycle, "[lock-cycle]"),
        (await_guard, "[await-guard]"),
        (blocking_reachable, "[async-blocking] thread-sleep reachable"),
        (block_on_sync, "[async-blocking] `block_on` in a data-plane"),
        (sync_recv_in_async_block, "[async-blocking] sync-recv inside async"),
    ]
    for files, expect in cases:
        got, _ = run(files)
        assert any(expect in f for f in got), (
            f"self-test: expected a finding containing {expect!r}, got {got!r}"
        )
    clean = {
        "crates/net/src/x.rs": (
            # Consistent lock order, guard dropped before await, async
            # recv, annotated thread-per-task branch.
            "fn ship(&self) {\n"
            "    let a = self.dial.lock();\n"
            "    let b = self.conns.lock();\n"
            "}\n"
            "fn reuse(&self) {\n"
            "    let a = self.dial.lock();\n"
            "    let b = self.conns.lock();\n"
            "}\n"
            "async fn route(&self) {\n"
            "    {\n"
            "        let pending = self.state.pending.lock();\n"
            "        pending.insert(id, tx);\n"
            "    }\n"
            "    while let Some(f) = rx.recv().await {\n"
            "        // async-ok: thread-per-task branch, det mode uses try_recv\n"
            "        let g = rxq.recv_timeout(BUDGET);\n"
            "    }\n"
            "}\n"
        )
    }
    got, _ = run(clean)
    assert not got, f"self-test: clean fixture flagged: {got!r}"
    print("analyze_async_safety: self-test ok")


def main():
    if "--self-test" in sys.argv:
        self_test()
        return 0
    files = {str(rel): (ROOT / rel).read_text() for rel in rust_sources()}
    findings, nfns = run(files)
    if findings:
        for f in findings:
            print(f"analyze_async_safety: {f}")
        print(f"analyze_async_safety: {len(findings)} finding(s)")
        return 1
    print(
        f"analyze_async_safety: clean — {len(files)} files, {nfns} functions, "
        "no lock cycles, no awaits under guards, no blocking calls in async "
        "reach"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
