#!/usr/bin/env bash
# Lint gate: clippy with warnings denied, plus formatting. Referenced from
# README "Building and testing"; CI and pre-commit hooks should run this.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all -- --check
echo "check.sh: clippy and fmt clean"
