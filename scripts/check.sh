#!/usr/bin/env bash
# Lint gate: clippy with warnings denied, formatting, and the
# forbidden-pattern pass. Referenced from README "Building and testing";
# CI and pre-commit hooks run this.
#
# Optional sanitizer jobs (skipped gracefully when the toolchain pieces
# are not installed; CI runs them as non-blocking matrix entries):
#   CHECK_MIRI=1 scripts/check.sh   — Miri over the ftc-stm unit tests
#   CHECK_TSAN=1 scripts/check.sh   — ThreadSanitizer over ftc-stm tests
#
# Protocol model checker (exhaustive failure schedules; a few seconds at
# f=1, minutes with FTC_PROTOCOL_F2=1 — CI runs f=2 nightly):
#   scripts/check.sh --protocol
#
# Bench regression gate (runs `ftc bench --quick` and compares against the
# committed BENCH_baseline_quick.json; >10% throughput regression fails,
# override with FTC_BENCH_TOLERANCE=0.25):
#   scripts/check.sh --bench-gate
#
# Async-transport model checker (deterministic interleaving x fault
# schedules over the real socket backend, ~1 second at the PR-gate bound;
# FTC_TRANSPORT_DEEP=1 raises the bound — CI runs the deep sweep nightly):
#   scripts/check.sh --transport-check
#
# Reconfiguration model checker (crash matrix over the scale/migrate/
# splice handshake, I1-I6 with replayable witnesses; ~1000+ schedules at
# the PR-gate bound, FTC_RECONFIG_DEEP=1 widens the matrix — CI nightly):
#   scripts/check.sh --reconfig-check
set -euo pipefail
cd "$(dirname "$0")/.."

RUN_PROTOCOL=0
RUN_BENCH_GATE=0
RUN_TRANSPORT=0
RUN_RECONFIG=0
for arg in "$@"; do
    case "$arg" in
    --protocol) RUN_PROTOCOL=1 ;;
    --bench-gate) RUN_BENCH_GATE=1 ;;
    --transport-check) RUN_TRANSPORT=1 ;;
    --reconfig-check) RUN_RECONFIG=1 ;;
    *)
        echo "check.sh: unknown argument: $arg" >&2
        exit 2
        ;;
    esac
done

cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all -- --check
python3 scripts/forbidden_patterns.py
python3 scripts/analyze_state_access.py --self-test
python3 scripts/analyze_state_access.py
python3 scripts/analyze_async_safety.py --self-test
python3 scripts/analyze_async_safety.py
python3 scripts/analyze_migration.py --self-test
python3 scripts/analyze_migration.py

if [[ "$RUN_PROTOCOL" == "1" ]]; then
    echo "check.sh: protocol model checker (f=1 exhaustive)"
    cargo test -q -p ftc-audit --test protocol_explorer --release -- --nocapture
    if [[ "${FTC_PROTOCOL_F2:-0}" == "1" ]]; then
        echo "check.sh: protocol model checker already ran the f=2 matrix (FTC_PROTOCOL_F2=1)"
    fi
fi

if [[ "$RUN_BENCH_GATE" == "1" ]]; then
    echo "check.sh: bench gate (quick Table-2 run vs committed baseline)"
    python3 scripts/bench_gate.py --self-test
    cargo run -q --release -p ftc-cli --bin ftc -- \
        bench --quick --out target/BENCH_fresh_quick.json
    python3 scripts/bench_gate.py \
        BENCH_baseline_quick.json target/BENCH_fresh_quick.json \
        --tolerance "${FTC_BENCH_TOLERANCE:-0.10}"
fi

if [[ "$RUN_TRANSPORT" == "1" ]]; then
    if [[ "${FTC_TRANSPORT_DEEP:-0}" == "1" ]]; then
        echo "check.sh: async-transport model checker (deep nightly bound)"
        FTC_TRANSPORT_DEEP=1 cargo test -q -p ftc-audit --release \
            --test async_transport -- --nocapture
    else
        echo "check.sh: async-transport model checker (PR gate bound)"
        FTC_TRANSPORT_GATE=1 cargo test -q -p ftc-audit --release \
            --test async_transport -- --nocapture
    fi
    # Sabotage self-test: the checker must catch the planted reconnect bug
    # with a replayable witness. Separate cargo invocation on purpose —
    # feature unification would poison every other ftc-net test.
    echo "check.sh: async-transport sabotage fixture (T3 must fire)"
    cargo test -q -p ftc-audit --release --features sabotage \
        --test async_sabotage
fi

if [[ "$RUN_RECONFIG" == "1" ]]; then
    if [[ "${FTC_RECONFIG_DEEP:-0}" == "1" ]]; then
        echo "check.sh: reconfiguration model checker (deep nightly matrix)"
        FTC_RECONFIG_DEEP=1 cargo test -q -p ftc-audit --release \
            --test reconfig_explorer -- --nocapture
    else
        echo "check.sh: reconfiguration model checker (PR gate matrix)"
        cargo test -q -p ftc-audit --release \
            --test reconfig_explorer -- --nocapture
    fi
    # Sabotage self-test: skipping the release step must trip I5 (single
    # ownership) with a replayable witness. Separate cargo invocation on
    # purpose — feature unification would poison every other ftc-core test.
    echo "check.sh: reconfiguration sabotage fixture (I5 must fire)"
    cargo test -q -p ftc-audit --release --features reconfig-sabotage \
        --test reconfig_sabotage
fi

if [[ "${CHECK_MIRI:-0}" == "1" ]]; then
    if rustup component list --toolchain nightly 2>/dev/null | grep -q 'miri.*(installed)'; then
        echo "check.sh: running Miri on ftc-stm"
        # Isolation off: the wound-wait backstop uses timed condvar waits.
        MIRIFLAGS="-Zmiri-disable-isolation" \
            cargo +nightly miri test -p ftc-stm --lib
    else
        echo "check.sh: Miri not installed; skipping (rustup +nightly component add miri)"
    fi
fi

if [[ "${CHECK_TSAN:-0}" == "1" ]]; then
    if rustup toolchain list 2>/dev/null | grep -q nightly; then
        echo "check.sh: running ThreadSanitizer on ftc-stm"
        RUSTFLAGS="-Zsanitizer=thread" \
            cargo +nightly test -p ftc-stm --lib \
            --target "$(rustc -vV | sed -n 's/host: //p')" ||
            echo "check.sh: TSan run failed (nightly without rust-src?); treat as advisory"
    else
        echo "check.sh: no nightly toolchain; skipping TSan"
    fi
fi

echo "check.sh: clean"
