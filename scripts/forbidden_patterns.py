#!/usr/bin/env python3
"""Forbidden-pattern gate for the concurrency core.

Greps can't see context; this script can see just enough. Each rule is
motivated by a past or feared class of concurrency bug:

1. ``std-mutex``   — ``std::sync::Mutex``/``RwLock`` outside approved
                     modules. Production code must use ``parking_lot``
                     (no poisoning: a panicking packet thread must not
                     wedge every other thread that touches the lock).
2. ``relaxed-flag``— ``Ordering::Relaxed`` on an ``AtomicBool``. Boolean
                     flags are cross-thread signals (wounded, shutdown,
                     recording, ...) and must use SeqCst/Acquire/Release;
                     Relaxed is reserved for counters where only the
                     eventual total matters.
3. ``hot-unwrap``  — ``.unwrap()`` in the packet hot path
                     (``crates/packet/src``) or the epoch-batched engine's
                     commit path (``crates/stm/src/{batched,epoch}.rs``,
                     which every packet transaction of a batched-engine
                     chain crosses). Parsers handle adversarial bytes and
                     the commit path holds the epoch lock; use
                     ``.expect("why this cannot fail")`` or propagate the
                     error.
4. ``allow-audit`` — ``#[allow(...)]`` in the protocol crates
                     (``crates/{core,stm,orch}``) without an ``// audit:``
                     justification on the same line or the line above.
                     Suppressed lints in replication code have hidden real
                     bugs before; every suppression must say what was
                     checked by hand.
5. ``thread-sleep``— ``std::thread::sleep`` in protocol code outside the
                     deterministic testkit. Sleeps in the packet/recovery
                     paths paper over ordering bugs the model checker
                     exists to find; use channel timeouts or the timer
                     steps. Modeled delays (WAN RTT emulation, heartbeat
                     cadence) are exempt via ``// forbidden-ok:
                     thread-sleep`` with the reason alongside.
6. ``sock-unwrap`` — ``.unwrap()`` in the socket transport
                     (``crates/net/src/sock.rs``). Every syscall there
                     can fail at any moment — a peer process is entitled
                     to die mid-write — and an unwrap turns a routine
                     connection reset into a dead reader thread. Handle
                     the error (redial, drop the conn, surface
                     ``Disconnected``) or ``.expect()`` with a proof.

Test code is exempt: ``#[cfg(test)]`` blocks are stripped by brace
matching, and ``tests/``, ``benches/``, ``examples/`` trees are skipped.
``// forbidden-ok: <rule>`` on the flagged line or the line directly
above exempts that line from <rule> (use sparingly; say why alongside).

Exit status 0 = clean, 1 = violations (listed on stdout).
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

# Modules allowed to use std::sync primitives (e.g. for Condvar pairing
# or poisoning semantics they actually want). Currently empty on purpose.
STD_MUTEX_ALLOWED: set = set()

# vendor/ holds offline API stand-ins; the parking_lot shim *wraps*
# std::sync::Mutex by design, so the std-mutex rule does not apply there.
SKIP_DIRS = {"target", ".git", "vendor"}
SKIP_PARTS = {"tests", "benches", "examples"}


def rust_sources():
    for path in sorted(ROOT.rglob("*.rs")):
        rel = path.relative_to(ROOT)
        parts = set(rel.parts)
        if parts & SKIP_DIRS or parts & SKIP_PARTS:
            continue
        yield rel


def strip_test_blocks(lines):
    """Yields (lineno, line) for lines outside #[cfg(test)] { ... } blocks."""
    i = 0
    n = len(lines)
    while i < n:
        line = lines[i]
        if re.search(r"#\[cfg\(test\)\]", line):
            # Skip to the end of the attached item by brace matching.
            depth = 0
            opened = False
            while i < n:
                for ch in lines[i]:
                    if ch == "{":
                        depth += 1
                        opened = True
                    elif ch == "}":
                        depth -= 1
                if opened and depth <= 0:
                    break
                i += 1
            i += 1
            continue
        yield i + 1, line
        i += 1


def atomic_bool_fields(text):
    """Names declared as AtomicBool anywhere in the file."""
    return set(re.findall(r"(\w+)\s*:\s*(?:\w+::)*AtomicBool\b", text))


PROTOCOL_CRATES = {
    ("crates", "core", "src"),
    ("crates", "stm", "src"),
    ("crates", "orch", "src"),
}

# Engine files on the batched-backend packet path: every transaction of a
# batched-engine chain executes and commits through these, so they get the
# same no-unwrap discipline as the packet parsers.
ENGINE_HOT_FILES = {
    ("crates", "stm", "src", "batched.rs"),
    ("crates", "stm", "src", "epoch.rs"),
}

def check_file(rel, violations):
    text = (ROOT / rel).read_text()
    lines = text.splitlines()
    flags = atomic_bool_fields(text)
    in_packet_hot_path = (
        rel.parts[:3] == ("crates", "packet", "src") or rel.parts in ENGINE_HOT_FILES
    )
    in_protocol_crate = rel.parts[:3] in PROTOCOL_CRATES
    in_sock_module = rel.parts[:3] == ("crates", "net", "src") and rel.name == "sock.rs"
    in_testkit = rel.name == "testkit.rs"

    prev = ""
    for lineno, line in strip_test_blocks(lines):
        code = line.split("//")[0] if "//" in line else line

        def exempt(rule):
            # Annotation accepted on the flagged line or the line above
            # (rationale comments usually take a full line of their own).
            return f"forbidden-ok: {rule}" in line or f"forbidden-ok: {rule}" in prev

        if (
            re.search(r"\bstd::sync::(Mutex|RwLock)\b", code)
            and str(rel) not in STD_MUTEX_ALLOWED
            and not exempt("std-mutex")
        ):
            violations.append((rel, lineno, "std-mutex", line.strip()))

        if re.search(r"Ordering::Relaxed", code) and not exempt("relaxed-flag"):
            recv = re.findall(
                r"(\w+)\s*\.\s*(?:load|store|swap|fetch_\w+|compare_exchange\w*)\s*\(",
                code,
            )
            if any(r in flags for r in recv):
                violations.append((rel, lineno, "relaxed-flag", line.strip()))

        if (
            in_packet_hot_path
            and re.search(r"\.unwrap\(\)", code)
            and not exempt("hot-unwrap")
        ):
            violations.append((rel, lineno, "hot-unwrap", line.strip()))

        if (
            in_protocol_crate
            and re.search(r"#\[allow\(", code)
            and "// audit:" not in line
            and "// audit:" not in prev
            and not exempt("allow-audit")
        ):
            violations.append((rel, lineno, "allow-audit", line.strip()))

        if (
            in_protocol_crate
            and not in_testkit
            and re.search(r"\bthread\s*::\s*sleep\b", code)
            and not exempt("thread-sleep")
        ):
            violations.append((rel, lineno, "thread-sleep", line.strip()))

        # The old regex-only ``block-on`` rule lived here; it moved to
        # ``analyze_async_safety.py``, which still forbids ``block_on`` in
        # the data-plane crates but does it brace/await-aware, alongside
        # the lock-order and blocking-reachability analyses.

        if (
            in_sock_module
            and re.search(r"\.unwrap\(\)", code)
            and not exempt("sock-unwrap")
        ):
            violations.append((rel, lineno, "sock-unwrap", line.strip()))

        prev = line


def main():
    violations = []
    count = 0
    for rel in rust_sources():
        count += 1
        check_file(rel, violations)
    if violations:
        for rel, lineno, rule, line in violations:
            print(f"{rel}:{lineno}: [{rule}] {line}")
        print(f"forbidden_patterns: {len(violations)} violation(s) in {count} files")
        return 1
    print(f"forbidden_patterns: clean ({count} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
