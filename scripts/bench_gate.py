#!/usr/bin/env python3
"""Bench regression gate: compare a fresh BENCH_*.json against the baseline.

Usage:
    bench_gate.py BASELINE FRESH [--tolerance 0.10]
    bench_gate.py --self-test

Both files are `ftc bench` artifacts. The gate fails (exit 1) when the fresh
throughput drops more than TOLERANCE below the baseline, or when any
Table-2 stage's p99 rises more than 3x TOLERANCE above it (stage p99 on a
short run is noisier than aggregate throughput, so it gets a wider band).
Artifacts from different modes (quick vs full) are never compared: the gate
refuses rather than producing a meaningless verdict.

The gate reads only the baseline 2PL keys (`pps` and `stages.*`). The
`engines` section (the per-engine sharing-level sweep `ftc bench` also
emits) is trajectory data, deliberately not a gate input: optimistic-engine
numbers shift with contention and would make the gate flap.

`--self-test` checks the comparator itself: it synthesizes a baseline plus a
deliberately slowed-down fresh result and asserts the gate rejects it, and an
unchanged result and asserts the gate accepts it. check.sh --bench-gate runs
the self-test before every real comparison so a broken comparator cannot
wave regressions through.
"""

import json
import sys

DEFAULT_TOLERANCE = 0.10
STAGES = ["transaction", "piggyback", "apply", "forwarder", "buffer"]


def compare(baseline, fresh, tolerance):
    """Returns a list of failure strings (empty = gate passes)."""
    failures = []
    if baseline.get("bench") != fresh.get("bench"):
        return [
            "artifact mismatch: baseline is %r, fresh is %r"
            % (baseline.get("bench"), fresh.get("bench"))
        ]
    if baseline.get("quick") != fresh.get("quick"):
        return [
            "mode mismatch: baseline quick=%s, fresh quick=%s "
            "(regenerate the baseline with the same mode)"
            % (baseline.get("quick"), fresh.get("quick"))
        ]

    base_pps = float(baseline["pps"])
    fresh_pps = float(fresh["pps"])
    floor = base_pps * (1.0 - tolerance)
    if fresh_pps < floor:
        failures.append(
            "throughput regression: %.0f pps < %.0f pps "
            "(baseline %.0f, tolerance %.0f%%)"
            % (fresh_pps, floor, base_pps, tolerance * 100)
        )

    p99_tol = 3.0 * tolerance
    for stage in STAGES:
        base_stage = baseline.get("stages", {}).get(stage)
        fresh_stage = fresh.get("stages", {}).get(stage)
        if not base_stage or not fresh_stage:
            failures.append("stage %r missing from an artifact" % stage)
            continue
        base_p99 = float(base_stage["p99_ns"])
        fresh_p99 = float(fresh_stage["p99_ns"])
        if base_p99 > 0 and fresh_p99 > base_p99 * (1.0 + p99_tol):
            failures.append(
                "stage %s p99 regression: %d ns > %d ns + %.0f%%"
                % (stage, fresh_p99, base_p99, p99_tol * 100)
            )
    return failures


def synthetic(pps, p99_scale=1.0, quick=True):
    return {
        "bench": "table2",
        "quick": quick,
        "pps": pps,
        "stages": {
            s: {"samples": 1000, "p99_ns": int(5000 * p99_scale)} for s in STAGES
        },
    }


def self_test():
    base = synthetic(100_000.0)
    # Unchanged and mildly-noisy runs pass.
    assert compare(base, synthetic(100_000.0), DEFAULT_TOLERANCE) == []
    assert compare(base, synthetic(95_000.0, 1.05), DEFAULT_TOLERANCE) == []
    # A deliberate 20% throughput slowdown must fail.
    slow = compare(base, synthetic(80_000.0), DEFAULT_TOLERANCE)
    assert slow, "gate must reject a 20% throughput regression"
    assert "throughput regression" in slow[0], slow
    # A doubled stage p99 must fail.
    tail = compare(base, synthetic(100_000.0, 2.0), DEFAULT_TOLERANCE)
    assert tail, "gate must reject a 2x p99 regression"
    # Quick and full artifacts never compare.
    mixed = compare(base, synthetic(100_000.0, quick=False), DEFAULT_TOLERANCE)
    assert mixed and "mode mismatch" in mixed[0], mixed
    print("bench_gate.py: self-test passed")


def main(argv):
    if "--self-test" in argv:
        self_test()
        return 0
    argv = list(argv)
    tolerance = DEFAULT_TOLERANCE
    if "--tolerance" in argv:
        i = argv.index("--tolerance")
        tolerance = float(argv[i + 1])
        del argv[i : i + 2]
    args = [a for a in argv if not a.startswith("--")]
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(args[0]) as f:
        baseline = json.load(f)
    with open(args[1]) as f:
        fresh = json.load(f)
    failures = compare(baseline, fresh, tolerance)
    if failures:
        for msg in failures:
            print("bench_gate.py: FAIL: %s" % msg, file=sys.stderr)
        return 1
    print(
        "bench_gate.py: OK (%.0f pps vs baseline %.0f pps, tolerance %.0f%%)"
        % (float(fresh["pps"]), float(baseline["pps"]), tolerance * 100)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
