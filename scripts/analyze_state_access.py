#!/usr/bin/env python3
"""Static state-access analyzer for the middlebox crate.

The chain's replication contract is keyed by *state-key prefixes*: every
middlebox writes only under its declared prefixes (``mon:``, ``gen:``,
``ids:``, ...), and ``DECLARED_STATE_PREFIXES`` in
``crates/mbox/src/spec_lang.rs`` is the single source of truth the static
chain-spec verifier uses to decide which stages are stateful. If a
middlebox grows a write under an undeclared prefix, the verifier can pass
a chain whose new state silently escapes the replication groups — exactly
the class of bug static verification exists to rule out.

This script closes the loop by *deriving* each middlebox's read/write set
from its source:

1. Parse ``DECLARED_STATE_PREFIXES`` out of spec_lang.rs.
2. For each middlebox module, collect every state-key expression:
   ``format!("...")`` strings and ``b"..."``/``"..."`` literals shaped
   like ``prefix:rest``, resolving the NAT modules' ``const TAG`` and the
   shared ``forward_key/reverse_key/allocator_key(TAG, ...)`` helpers.
3. Classify each key as a read (``txn.read*``/``peek*``) or a write
   (``txn.write*``/``txn.delete``) from the statement it appears in.
4. Fail if any derived access uses an undeclared prefix, if a declared
   prefix is never used (stale table), or if two middleboxes share a
   prefix (ownership must be exclusive for recovery to fetch per-group).

Since the engine became pluggable (`StateBackend` in
``crates/stm/src/backend.rs``), the same drift risk exists one layer
down: ``EngineKind`` keeps three hand-maintained tables — the
``name()`` match, the ``FromStr`` match, and the ``ALL`` array — plus a
copy of the engine names in the CLI usage text (``--engine
twopl|batched``). A new engine variant that lands in one table but not
the others is either unreachable from chain specs or unparseable from
``--engine``/``FTC_ENGINE``; the analyzer cross-checks all four so the
drift fails CI instead of surfacing as a runtime "unknown engine".
The middlebox prefix contract itself is engine-independent (middleboxes
write through ``&mut dyn StateTxn``, so the derived access sets are the
same whichever engine commits them).

Test blocks (``#[cfg(test)]``) are stripped the same way
``forbidden_patterns.py`` does. Exit 0 = contract holds; 1 = violations.
``--self-test`` runs the detector against embedded bad fixtures.
``--json`` emits the derived access sets as machine-readable JSON on
stdout (one object per middlebox: declared / reads / writes, all sorted)
— the input contract of ``analyze_migration.py``, which checks the
migration manifests against exactly these sets.
"""

import json
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SPEC_LANG = ROOT / "crates" / "mbox" / "src" / "spec_lang.rs"
BACKEND = ROOT / "crates" / "stm" / "src" / "backend.rs"
CLI_ARGS = ROOT / "crates" / "cli" / "src" / "args.rs"

# Middlebox name -> the source files its state accesses live in. The NAT
# helpers in nat/mod.rs are shared; their prefixes come from the caller's
# TAG const, so each NAT module owns its helper-derived keys.
MODULES = {
    "monitor": ["crates/mbox/src/monitor.rs"],
    "gen": ["crates/mbox/src/gen.rs"],
    "ids": ["crates/mbox/src/ids.rs"],
    "lb": ["crates/mbox/src/lb.rs"],
    "mazu_nat": ["crates/mbox/src/nat/mazu.rs"],
    "simple_nat": ["crates/mbox/src/nat/simple.rs"],
    "firewall": ["crates/mbox/src/firewall.rs"],
    "passthrough": [],  # built from MbSpec::Passthrough; no module, no state
}

# The shared NAT key constructors: calling one with the module's TAG
# derives a key under "<TAG>:".
NAT_HELPERS = ("forward_key", "reverse_key", "allocator_key")

READ_CALLS = re.compile(r"\b(?:txn\s*\.\s*read(?:_u64)?|peek(?:_u64)?)\s*\(")
WRITE_CALLS = re.compile(r"\btxn\s*\.\s*(?:write(?:_u64)?|delete)\s*\(")
KEY_LITERAL = re.compile(r'b?"([a-z_]+):[^"]*"')


def strip_test_blocks(lines):
    """Yields (lineno, line) outside #[cfg(test)] item blocks."""
    i, n = 0, len(lines)
    while i < n:
        if re.search(r"#\[cfg\(test\)\]", lines[i]):
            depth, opened = 0, False
            while i < n:
                for ch in lines[i]:
                    if ch == "{":
                        depth += 1
                        opened = True
                    elif ch == "}":
                        depth -= 1
                if opened and depth <= 0:
                    break
                i += 1
            i += 1
            continue
        yield i + 1, lines[i]
        i += 1


def parse_declared(spec_lang_text):
    """The name -> prefixes table from DECLARED_STATE_PREFIXES."""
    m = re.search(
        r"DECLARED_STATE_PREFIXES[^=]*=\s*&\[(.*?)\];", spec_lang_text, re.S
    )
    if not m:
        raise SystemExit(
            "analyze_state_access: DECLARED_STATE_PREFIXES not found in "
            f"{SPEC_LANG.relative_to(ROOT)} — the analyzer and the static "
            "verifier have lost their shared table"
        )
    declared = {}
    for name, prefixes in re.findall(
        r'\(\s*"(\w+)"\s*,\s*&\[(.*?)\]\s*\)', m.group(1), re.S
    ):
        declared[name] = set(re.findall(r'"([^"]+)"', prefixes))
    return declared


def derive_accesses(text):
    """-> (reads, writes): sets of key prefixes derived from one module.

    Resolution is three-layered: literal prefixes on the access line
    itself, `let k = ...` bindings carrying a prefix into a later txn
    call, and a module-level symbol table mapping key-constructor
    functions and consts (`fn conn_key`, `const ALERTS_KEY`) to the
    prefixes in their bodies — so `txn.read(&Self::ports_key(src))`
    attributes `ids:` even though the literal lives in the helper. The
    classification is intentionally conservative: an undeclared prefix in
    either set is a violation.
    """
    lines = text.splitlines()
    tag = None
    tag_m = re.search(r'const TAG:\s*&str\s*=\s*"(\w+)"', text)
    if tag_m:
        tag = tag_m.group(1)

    def prefixes_in(segment):
        found = set()
        for lit in KEY_LITERAL.findall(segment):
            found.add(lit + ":")
        # format! strings interpolating the TAG const.
        if tag:
            for _ in re.findall(r'"\{TAG\}:', segment):
                found.add(tag + ":")
            for helper in NAT_HELPERS:
                if re.search(rf"\b{helper}\s*\(\s*TAG\b", segment):
                    found.add(tag + ":")
        return found

    code_lines = list(strip_test_blocks(lines))

    # Pass 1 — symbol table: key-constructor fns (prefixes anywhere in
    # their brace-matched body) and consts with a key literal.
    symbols = {}
    i = 0
    while i < len(code_lines):
        _, line = code_lines[i]
        code = line.split("//")[0]
        cm = re.match(r"\s*(?:pub\s+)?const\s+(\w+)\s*:", code)
        if cm:
            pf = prefixes_in(code)
            if pf:
                symbols[cm.group(1)] = pf
            i += 1
            continue
        fm = re.match(r"\s*(?:pub\s+)?(?:\w+\s+)*fn\s+(\w+)", code)
        if fm:
            depth, opened, pf = 0, False, set()
            while i < len(code_lines):
                _, body_line = code_lines[i]
                body_code = body_line.split("//")[0]
                pf |= prefixes_in(body_code)
                for ch in body_code:
                    if ch == "{":
                        depth += 1
                        opened = True
                    elif ch == "}":
                        depth -= 1
                if opened and depth <= 0:
                    break
                i += 1
            if pf:
                symbols[fm.group(1)] = pf
        i += 1

    # Pass 2 — classify access sites.
    reads, writes = set(), set()
    bindings = {}

    def resolve(code):
        used = prefixes_in(code)
        for name, pf in symbols.items():
            if re.search(rf"\b{name}\b", code):
                used |= pf
        return used

    for _, line in code_lines:
        code = line.split("//")[0]
        found = resolve(code)
        bind = re.match(r"\s*let\s+(?:mut\s+)?(\w+)\s*=", code)
        if bind and found:
            bindings[bind.group(1)] = set(found)
        is_read = READ_CALLS.search(code)
        is_write = WRITE_CALLS.search(code)
        if not (is_read or is_write):
            continue
        # Prefixes resolvable on the access line itself, plus any named
        # binding passed into the call.
        used = set(found)
        for name, pf in bindings.items():
            if re.search(rf"\(\s*&?\s*{name}\b", code) or re.search(
                rf",\s*&?\s*{name}\b", code
            ):
                used |= pf
        if is_write:
            writes |= used
        else:
            reads |= used
    return reads, writes


def check(declared, modules_text):
    """-> list of violation strings for the given {name: [file texts]}."""
    violations = []
    owners = {}
    for name, texts in modules_text.items():
        decl = declared.get(name)
        if decl is None:
            violations.append(
                f"{name}: middlebox has no row in DECLARED_STATE_PREFIXES "
                f"({SPEC_LANG.relative_to(ROOT)}); add one (use an empty "
                "prefix list for stateless stages)"
            )
            continue
        reads, writes = set(), set()
        for text in texts:
            r, w = derive_accesses(text)
            reads |= r
            writes |= w
        for p in sorted(writes - decl):
            violations.append(
                f"{name}: writes state under undeclared prefix `{p}` — "
                f"the static verifier cannot see this state, so a chain "
                f"spec could pass verification while `{p}` updates escape "
                f"the replication groups; declare `{p}` for `{name}` in "
                "DECLARED_STATE_PREFIXES"
            )
        for p in sorted(reads - writes - decl):
            violations.append(
                f"{name}: reads state under undeclared prefix `{p}` — "
                f"either it belongs to another middlebox (cross-stage "
                f"state sharing breaks per-group recovery) or the "
                "declaration table is stale"
            )
        for p in sorted(decl - writes - reads):
            violations.append(
                f"{name}: declares prefix `{p}` but no source access uses "
                "it — remove the stale declaration or fix the analyzer's "
                "module map"
            )
        for p in writes | decl:
            if p in owners and owners[p] != name:
                violations.append(
                    f"prefix `{p}` claimed by both `{owners[p]}` and "
                    f"`{name}`: ownership must be exclusive, or recovery "
                    "cannot attribute the partition to one replication "
                    "group"
                )
            owners[p] = name
    return violations


def check_engines(backend_text, usage_text):
    """-> violation strings when the EngineKind tables have drifted.

    Four places must agree on the engine set: the ``name()`` match (variant
    -> wire name), the ``FromStr`` match (wire name -> variant), the
    ``ALL`` array (what sweeps and verifiers iterate), and the
    ``--engine`` line of the CLI usage text (what users are told exists).
    """
    violations = []
    named = dict(
        re.findall(r'EngineKind::(\w+)\s*=>\s*"(\w+)"', backend_text)
    )
    parsed = {
        name: variant
        for name, variant in re.findall(
            r'"(\w+)"\s*=>\s*Ok\(EngineKind::(\w+)\)', backend_text
        )
    }
    all_m = re.search(r"ALL:\s*\[EngineKind;\s*(\d+)\]\s*=\s*\[(.*?)\];",
                      backend_text, re.S)
    if not (named and parsed and all_m):
        return [
            "engine tables: EngineKind name()/FromStr/ALL not found in "
            f"{BACKEND.relative_to(ROOT)} — the analyzer and the backend "
            "have lost their shared shape"
        ]
    all_variants = set(re.findall(r"EngineKind::(\w+)", all_m.group(2)))
    if named.keys() != set(parsed.values()) or set(named.values()) != set(
        parsed.keys()
    ):
        violations.append(
            "engine tables: name() and FromStr disagree "
            f"(name() covers {sorted(named)}, FromStr covers "
            f"{sorted(parsed.values())}) — an engine with this drift is "
            "nameable but unparseable (or vice versa) from chain specs "
            "and --engine/FTC_ENGINE"
        )
    if all_variants != named.keys():
        violations.append(
            "engine tables: ALL lists "
            f"{sorted(all_variants)} but name() covers {sorted(named)} — "
            "sweeps and the spec verifier iterate ALL, so the missing "
            "engine is invisible to them"
        )
    usage = re.search(r"--engine\s+([\w|]+)", usage_text)
    usage_names = set(usage.group(1).split("|")) if usage else set()
    if usage_names != set(named.values()):
        violations.append(
            "engine tables: CLI usage advertises "
            f"{sorted(usage_names)} but the backend implements "
            f"{sorted(named.values())} — update the `--engine` line in "
            f"{CLI_ARGS.relative_to(ROOT)}"
        )
    return violations


def self_test():
    """The detector must catch each planted contract violation."""
    declared = {"monitor": {"mon:"}, "gen": {"gen:"}}
    # 1. Undeclared write prefix.
    bad_write = 'let k = format!("rogue:w{}", w);\ntxn.write(k, v)?;'
    # 2. Cross-middlebox read.
    bad_read = 'let c = txn.read_u64(b"mon:packets:g0")?;'
    # 3. Stale declaration (no access at all).
    stale = "fn process() {}"
    cases = [
        ({"monitor": [bad_write]}, "undeclared prefix `rogue:`"),
        ({"gen": ['txn.write(format!("gen:w0"), v)?;\n' + bad_read]},
         "reads state under undeclared prefix `mon:`"),
        ({"monitor": [stale]}, "declares prefix `mon:` but no source"),
    ]
    for modules_text, expect in cases:
        got = check(declared, modules_text)
        assert any(expect in v for v in got), (
            f"self-test: expected a violation containing {expect!r}, "
            f"got {got!r}"
        )
    # And a clean module passes.
    clean = {
        "monitor": [
            'let key = format!("mon:packets:g{g}");\n'
            "let c = txn.read_u64(&key)?;\n"
            "txn.write_u64(key, c + 1)?;"
        ]
    }
    got = check({"monitor": {"mon:"}}, clean)
    assert not got, f"self-test: clean module flagged: {got!r}"

    # Engine-table drift fixtures.
    good_backend = (
        'EngineKind::TwoPl => "twopl",\n'
        'EngineKind::Batched => "batched",\n'
        '"twopl" => Ok(EngineKind::TwoPl),\n'
        '"batched" => Ok(EngineKind::Batched),\n'
        "ALL: [EngineKind; 2] = [EngineKind::TwoPl, EngineKind::Batched];\n"
    )
    good_usage = "[--engine twopl|batched]"
    assert not check_engines(good_backend, good_usage), "clean tables flagged"
    # A variant nameable but not parseable.
    drift = good_backend.replace('"batched" => Ok(EngineKind::Batched),\n', "")
    got = check_engines(drift, good_usage)
    assert any("name() and FromStr disagree" in v for v in got), got
    # ALL missing an engine.
    drift = good_backend.replace(", EngineKind::Batched", "")
    got = check_engines(drift, good_usage)
    assert any("ALL lists" in v for v in got), got
    # Usage text drift.
    got = check_engines(good_backend, "[--engine twopl]")
    assert any("CLI usage advertises" in v for v in got), got
    print("analyze_state_access: self-test ok")


def access_report(declared, modules_text):
    """The machine-readable per-middlebox access sets for ``--json``."""
    report = {}
    for name, texts in modules_text.items():
        reads, writes = set(), set()
        for text in texts:
            r, w = derive_accesses(text)
            reads |= r
            writes |= w
        report[name] = {
            "declared": sorted(declared.get(name, set())),
            "reads": sorted(reads),
            "writes": sorted(writes),
        }
    return report


def main():
    if "--self-test" in sys.argv:
        self_test()
        return 0
    declared = parse_declared(SPEC_LANG.read_text())
    modules_text = {}
    for name, rels in MODULES.items():
        texts = []
        for rel in rels:
            path = ROOT / rel
            if not path.exists():
                print(f"{name}: module {rel} missing (analyzer map stale)")
                return 1
            texts.append(path.read_text())
        modules_text[name] = texts
    if "--json" in sys.argv:
        json.dump(access_report(declared, modules_text), sys.stdout, indent=2)
        print()
        return 0
    violations = check(declared, modules_text)
    violations += check_engines(BACKEND.read_text(), CLI_ARGS.read_text())
    if violations:
        for v in violations:
            print(f"analyze_state_access: {v}")
        print(f"analyze_state_access: {len(violations)} violation(s)")
        return 1
    stateful = sum(1 for p in declared.values() if p)
    print(
        f"analyze_state_access: clean — {len(declared)} middleboxes, "
        f"{stateful} stateful, declarations match derived access sets; "
        "engine tables agree (name/FromStr/ALL/usage)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
