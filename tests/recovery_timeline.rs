//! Integration test for the journal-derived recovery timeline: after a
//! detector-driven kill + respawn, the chain-wide event trace must yield a
//! [`RecoveryTimeline`] covering all four Fig-13 phases (detection,
//! initialization, state fetch, resume).

use ftc::prelude::*;
use std::net::Ipv4Addr;
use std::time::Duration;

fn pkt(src_port: u16, ident: u16) -> Packet {
    UdpPacketBuilder::new()
        .src(Ipv4Addr::new(10, 5, 0, 1), src_port)
        .dst(Ipv4Addr::new(10, 99, 0, 1), 443)
        .ident(ident)
        .build()
}

#[test]
fn kill_respawn_yields_four_phase_timeline() {
    let specs = vec![MbSpec::Monitor { sharing_level: 1 }; 3];
    let chain = FtcChain::deploy(ChainConfig::new(specs).with_f(1));
    let mut orch = Orchestrator::new(chain, OrchestratorConfig::default());

    // Warm traffic so there is state to fetch during recovery.
    for i in 0..40 {
        orch.chain.inject(pkt(5000 + (i % 8), i));
    }
    assert_eq!(
        orch.chain
            .egress()
            .collect(40, Duration::from_secs(15))
            .len(),
        40
    );
    std::thread::sleep(Duration::from_millis(100));

    orch.chain.kill(1);
    let mut recovered = false;
    for _ in 0..20 {
        if orch
            .monitor_round()
            .iter()
            .any(|(idx, r)| *idx == 1 && r.is_ok())
        {
            recovered = true;
            break;
        }
    }
    assert!(recovered, "monitor loop must detect and repair the failure");

    // Prove the rerouted chain carries traffic again (also backs the
    // journal's `traffic_resumed` event with real packets).
    for i in 0..20 {
        orch.chain.inject(pkt(6000 + (i % 8), 100 + i));
    }
    assert_eq!(
        orch.chain
            .egress()
            .collect(20, Duration::from_secs(15))
            .len(),
        20
    );

    let trace = orch.chain.metrics.journal.trace();
    assert!(
        trace.iter().any(|e| e.kind.label() == "failure_detected"),
        "detector must journal the confirmed failure"
    );

    let timelines = orch.recovery_timelines();
    let t = timelines
        .iter()
        .find(|t| t.replica == 1)
        .expect("a recovery timeline for the killed replica");
    assert!(
        t.detection > Duration::ZERO,
        "detection phase must span first miss -> confirmation, got {timelines:?}"
    );
    assert!(
        t.initialization > Duration::ZERO,
        "initialization phase must span confirmation -> state fetch, got {timelines:?}"
    );
    assert!(
        t.state_fetch > Duration::ZERO,
        "state-fetch phase must be non-empty, got {timelines:?}"
    );
    assert!(
        t.resume > Duration::ZERO,
        "resume phase must span fetch end -> traffic resumed, got {timelines:?}"
    );
    assert_eq!(
        t.total(),
        t.detection + t.initialization + t.state_fetch + t.resume
    );
}
