use ftc::prelude::*;
use std::net::Ipv4Addr;
use std::time::Duration;

/// Multi-seed stress of the loss/reorder path that once exposed a
/// parking livelock (a packet parked on its first blocked log even when a
/// later log in the same message was the missing dependency).
#[test]
fn lossy_links_multi_seed_stress() {
    for seed in [2024u64, 1, 7, 99] {
        let cfg = ChainConfig::new(vec![
            MbSpec::Monitor { sharing_level: 2 },
            MbSpec::Monitor { sharing_level: 2 },
            MbSpec::Monitor { sharing_level: 2 },
        ])
        .with_f(1)
        .with_workers(2)
        .with_link(
            Endpoint::in_proc()
                .with_latency(Duration::from_micros(5))
                .with_jitter(Duration::from_micros(20))
                .with_loss(0.08)
                .with_reorder(0.1)
                .with_seed(seed),
        );
        let chain = FtcChain::deploy(cfg);
        let n = 150u16;
        for i in 0..n {
            chain.inject(
                UdpPacketBuilder::new()
                    .src(Ipv4Addr::new(10, 0, 0, 5), 4000 + (i % 16))
                    .dst(Ipv4Addr::new(10, 77, 0, 1), 80)
                    .ident(i)
                    .build(),
            );
        }
        let got = chain.egress().collect(n as usize, Duration::from_secs(30));
        assert_eq!(got.len(), n as usize, "seed {seed} stalled");
        if false {
            let m = chain.metrics.snapshot();
            eprintln!(
                "injected={} released={} applied={} parked={} stale={} prop={} held={}",
                m.injected,
                m.released,
                m.logs_applied,
                m.logs_parked,
                m.logs_stale,
                m.propagating,
                m.held,
            );
            for slot in &chain.replicas {
                eprintln!(
                    "r{}: own g0={:?} g1={:?} parked={} nic_drops={} in_wired={} out_wired={}",
                    slot.state.idx,
                    slot.state.own_store.peek_u64(b"mon:packets:g0"),
                    slot.state.own_store.peek_u64(b"mon:packets:g1"),
                    slot.state.parked_len(),
                    slot.nic.dropped(),
                    slot.in_port.is_wired(),
                    slot.out_port.is_wired(),
                );
            }
            eprintln!(
                "buffer held={} uncommitted={} fwd pending={}",
                chain.buffer.held_len(),
                chain.buffer.uncommitted_len(),
                chain.forwarder.pending_len()
            );
        }
    }
}
