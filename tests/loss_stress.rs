use ftc::prelude::*;
use std::net::Ipv4Addr;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// Multi-seed stress of the loss/reorder path that once exposed a
/// parking livelock (a packet parked on its first blocked log even when a
/// later log in the same message was the missing dependency).
#[test]
fn lossy_links_multi_seed_stress() {
    for seed in [2024u64, 1, 7, 99] {
        let cfg = ChainConfig::new(vec![
            MbSpec::Monitor { sharing_level: 2 },
            MbSpec::Monitor { sharing_level: 2 },
            MbSpec::Monitor { sharing_level: 2 },
        ])
        .with_f(1)
        .with_workers(2)
        .with_link(LinkConfig::lossy(0.08, 0.1, seed));
        let chain = FtcChain::deploy(cfg);
        let n = 150u16;
        for i in 0..n {
            chain.inject(
                UdpPacketBuilder::new()
                    .src(Ipv4Addr::new(10, 0, 0, 5), 4000 + (i % 16))
                    .dst(Ipv4Addr::new(10, 77, 0, 1), 80)
                    .ident(i)
                    .build(),
            );
        }
        let got = chain.collect_egress(n as usize, Duration::from_secs(30));
        assert_eq!(got.len(), n as usize, "seed {seed} stalled");
        if false {
            let m = &chain.metrics;
            eprintln!(
                "injected={} released={} applied={} parked={} stale={} prop={} held={}",
                m.injected.load(Ordering::Relaxed),
                m.released.load(Ordering::Relaxed),
                m.logs_applied.load(Ordering::Relaxed),
                m.logs_parked.load(Ordering::Relaxed),
                m.logs_stale.load(Ordering::Relaxed),
                m.propagating.load(Ordering::Relaxed),
                m.held.load(Ordering::Relaxed),
            );
            for slot in &chain.replicas {
                eprintln!(
                    "r{}: own g0={:?} g1={:?} parked={} nic_drops={} in_wired={} out_wired={}",
                    slot.state.idx,
                    slot.state.own_store.peek_u64(b"mon:packets:g0"),
                    slot.state.own_store.peek_u64(b"mon:packets:g1"),
                    slot.state.parked_len(),
                    slot.nic.dropped(),
                    slot.in_port.is_wired(),
                    slot.out_port.is_wired(),
                );
            }
            eprintln!(
                "buffer held={} uncommitted={} fwd pending={}",
                chain.buffer.held_len(),
                chain.buffer.uncommitted_len(),
                chain.forwarder.pending_len()
            );
        }
    }
}

