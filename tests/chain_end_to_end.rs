//! End-to-end integration tests of the FTC chain under realistic traffic,
//! impairments and configurations.

use ftc::mbox::firewall::FirewallRule;
use ftc::prelude::*;
use std::net::Ipv4Addr;
use std::sync::atomic::Ordering;
use std::time::Duration;

fn pkt(src_port: u16, ident: u16) -> Packet {
    UdpPacketBuilder::new()
        .src(Ipv4Addr::new(10, 0, 0, 5), src_port)
        .dst(Ipv4Addr::new(10, 77, 0, 1), 80)
        .ident(ident)
        .build()
}

#[test]
fn five_middlebox_chain_processes_everything() {
    // Ch-5 from Table 1: five monitors.
    let chain =
        FtcChain::deploy(ChainConfig::new(vec![MbSpec::Monitor { sharing_level: 1 }; 5]).with_f(1));
    let n = 100;
    for i in 0..n {
        chain.inject(pkt(1000 + i, i));
    }
    let got = chain.egress().collect(n as usize, Duration::from_secs(20));
    assert_eq!(got.len(), n as usize);
    for slot in &chain.replicas {
        assert_eq!(
            slot.state.own_store.peek_u64(b"mon:packets:g0"),
            Some(u64::from(n)),
            "every monitor must count every packet"
        );
    }
}

#[test]
fn heterogeneous_chain_nat_rewrites_and_replicates() {
    // Ch-Rec: Firewall → Monitor → SimpleNAT.
    let ext = Ipv4Addr::new(198, 51, 100, 1);
    let chain = FtcChain::deploy(
        ChainConfig::new(vec![
            MbSpec::Firewall { rules: vec![] },
            MbSpec::Monitor { sharing_level: 1 },
            MbSpec::SimpleNat { external_ip: ext },
        ])
        .with_f(1),
    );
    for i in 0..40 {
        chain.inject(pkt(2000 + (i % 4), i));
    }
    let got = chain.egress().collect(40, Duration::from_secs(20));
    assert_eq!(got.len(), 40);
    for p in &got {
        let key = p.flow_key().unwrap();
        assert_eq!(key.src_ip, ext, "NAT must rewrite the source");
        assert!(!p.has_piggyback());
        p.ipv4().unwrap().verify_checksum().unwrap();
    }
    // 4 flows → 4 NAT mappings, replicated at the NAT's ring successor r0.
    std::thread::sleep(Duration::from_millis(100));
    let nat_replica = &chain.replicas[0].state.replicated[&2];
    let keys = nat_replica.store.len();
    // 4 forward + 4 reverse mappings + 1 allocator counter.
    assert_eq!(keys, 9, "NAT flow table must be replicated around the ring");
}

#[test]
fn firewall_filters_but_chain_state_stays_consistent() {
    let chain = FtcChain::deploy(
        ChainConfig::new(vec![
            MbSpec::Monitor { sharing_level: 1 },
            MbSpec::Firewall {
                rules: vec![FirewallRule::deny_dst_ports(80..=80)],
            },
            MbSpec::Monitor { sharing_level: 1 },
        ])
        .with_f(1),
    );
    // Half the packets go to the blocked port.
    for i in 0..40u16 {
        let dst_port = if i % 2 == 0 { 80 } else { 443 };
        let p = UdpPacketBuilder::new()
            .src(Ipv4Addr::new(10, 0, 0, 5), 3000 + i)
            .dst(Ipv4Addr::new(10, 77, 0, 1), dst_port)
            .ident(i)
            .build();
        chain.inject(p);
    }
    let got = chain.egress().collect(20, Duration::from_secs(20));
    assert_eq!(got.len(), 20, "only the allowed half egresses");
    assert!(got.iter().all(|p| p.flow_key().unwrap().dst_port == 443));
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(chain.metrics.filtered.load(Ordering::Relaxed), 20);
    // The first monitor saw all 40; its state (including from filtered
    // packets, carried by propagating packets) is fully replicated at r1.
    assert_eq!(
        chain.replicas[0]
            .state
            .own_store
            .peek_u64(b"mon:packets:g0"),
        Some(40)
    );
    assert_eq!(
        chain.replicas[1].state.replicated[&0]
            .store
            .peek_u64(b"mon:packets:g0"),
        Some(40),
        "filtered packets' updates must still replicate (propagating packets)"
    );
    // The second monitor only saw the surviving 20.
    assert_eq!(
        chain.replicas[2]
            .state
            .own_store
            .peek_u64(b"mon:packets:g0"),
        Some(20)
    );
}

#[test]
fn chain_survives_loss_reorder_and_multithreading() {
    let cfg = ChainConfig::new(vec![
        MbSpec::Monitor { sharing_level: 2 },
        MbSpec::Monitor { sharing_level: 2 },
        MbSpec::Monitor { sharing_level: 2 },
    ])
    .with_f(1)
    .with_workers(2)
    .with_link(Endpoint::lossy(0.08, 0.1, 2024));
    let chain = FtcChain::deploy(cfg);
    let n = 150;
    for i in 0..n {
        chain.inject(pkt(4000 + (i % 16), i));
    }
    let got = chain.egress().collect(n as usize, Duration::from_secs(30));
    assert_eq!(got.len(), n as usize, "reliable transport must mask loss");
    for slot in &chain.replicas {
        assert_eq!(
            slot.state.own_store.peek_u64(b"mon:packets:g0"),
            Some(u64::from(n))
        );
    }
}

#[test]
fn f2_replicates_at_two_successors() {
    let chain =
        FtcChain::deploy(ChainConfig::new(vec![MbSpec::Monitor { sharing_level: 1 }; 4]).with_f(2));
    for i in 0..30 {
        chain.inject(pkt(5000 + i, i));
    }
    let got = chain.egress().collect(30, Duration::from_secs(20));
    assert_eq!(got.len(), 30);
    std::thread::sleep(Duration::from_millis(200));
    // m0's state must live at r1 AND r2.
    for succ in [1usize, 2] {
        assert_eq!(
            chain.replicas[succ].state.replicated[&0]
                .store
                .peek_u64(b"mon:packets:g0"),
            Some(30),
            "f=2: m0 replicated at r{succ}"
        );
    }
}

#[test]
fn short_chain_is_padded_with_pure_replicas() {
    // A single middlebox with f = 1 needs a second server (§5.1).
    let chain =
        FtcChain::deploy(ChainConfig::new(vec![MbSpec::Monitor { sharing_level: 1 }]).with_f(1));
    assert_eq!(chain.len(), 2, "chain padded to f + 1 servers");
    for i in 0..25 {
        chain.inject(pkt(6000 + i, i));
    }
    let got = chain.egress().collect(25, Duration::from_secs(20));
    assert_eq!(got.len(), 25);
    std::thread::sleep(Duration::from_millis(100));
    // The pure replica holds the monitor's state.
    assert_eq!(
        chain.replicas[1].state.replicated[&0]
            .store
            .peek_u64(b"mon:packets:g0"),
        Some(25)
    );
}

#[test]
fn load_balancer_is_connection_persistent_through_the_chain() {
    let backends = vec![Ipv4Addr::new(10, 1, 0, 1), Ipv4Addr::new(10, 1, 0, 2)];
    let chain = FtcChain::deploy(
        ChainConfig::new(vec![
            MbSpec::LoadBalancer {
                backends: backends.clone(),
            },
            MbSpec::Monitor { sharing_level: 1 },
        ])
        .with_f(1),
    );
    // 10 packets of one flow + 10 of another.
    for i in 0..20 {
        chain.inject(pkt(7000 + (i % 2), i));
    }
    let got = chain.egress().collect(20, Duration::from_secs(20));
    assert_eq!(got.len(), 20);
    use std::collections::HashMap;
    let mut by_flow: HashMap<u16, Vec<Ipv4Addr>> = HashMap::new();
    for p in &got {
        let k = p.flow_key().unwrap();
        by_flow.entry(k.src_port).or_default().push(k.dst_ip);
    }
    for (flow, dsts) in by_flow {
        assert!(backends.contains(&dsts[0]));
        assert!(
            dsts.iter().all(|d| *d == dsts[0]),
            "flow {flow} must stick to one backend"
        );
    }
}

#[test]
fn idle_chain_flushes_state_with_propagating_packets() {
    let chain = FtcChain::deploy(
        ChainConfig::new(vec![
            MbSpec::Monitor { sharing_level: 1 },
            MbSpec::Monitor { sharing_level: 1 },
        ])
        .with_f(1),
    );
    // A single packet: its m1 log must replicate via the ring even though
    // no further traffic arrives (forwarder idle timer, §5.1).
    chain.inject(pkt(8000, 1));
    let got = chain.egress().collect(1, Duration::from_secs(10));
    assert_eq!(got.len(), 1, "the lone packet must be released, not stuck");
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(
        chain.replicas[0].state.replicated[&1]
            .store
            .peek_u64(b"mon:packets:g0"),
        Some(1),
        "m1's state must replicate to r0 without carrier traffic"
    );
    assert!(chain.metrics.propagating.load(Ordering::Relaxed) > 0);
}
