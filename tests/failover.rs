//! Failure-injection integration tests: the paper's core guarantee is that
//! a chain tolerates `f` fail-stop replica failures with correct recovery —
//! "the middlebox behavior after a failure recovery is consistent with the
//! behavior prior to the failure" (§3.1).

use ftc::orch::RecoveryReport;
use ftc::prelude::*;
use std::net::Ipv4Addr;
use std::time::Duration;

fn pkt(src_port: u16, ident: u16) -> Packet {
    UdpPacketBuilder::new()
        .src(Ipv4Addr::new(10, 3, 0, 1), src_port)
        .dst(Ipv4Addr::new(10, 88, 0, 1), 443)
        .ident(ident)
        .build()
}

fn monitors(n: usize) -> Vec<MbSpec> {
    vec![MbSpec::Monitor { sharing_level: 1 }; n]
}

fn orch(n: usize, f: usize) -> Orchestrator {
    Orchestrator::new(
        FtcChain::deploy(ChainConfig::new(monitors(n)).with_f(f)),
        OrchestratorConfig::default(),
    )
}

/// Drives traffic, kills `victim`, recovers, then verifies that every
/// *released* packet's state update survived — the strong-consistency
/// guarantee (§3.1).
fn kill_and_verify(mut o: Orchestrator, victim: usize) {
    // Phase 1: warm traffic.
    for i in 0..60 {
        o.chain.inject(pkt(1000 + (i % 8), i));
    }
    let released_before = o.chain.egress().collect(60, Duration::from_secs(15)).len() as u64;
    assert_eq!(released_before, 60);
    // Let the ring finish replicating the tail middlebox's updates.
    std::thread::sleep(Duration::from_millis(100));

    // Phase 2: fail-stop.
    o.chain.kill(victim);
    let report: RecoveryReport = o.recover(victim, ftc::net::RegionId(0)).expect("recovery");
    assert!(report.bytes_transferred > 0 || victim_padded(&o, victim));

    // Phase 3: the recovered replica must hold every released update.
    let own = &o.chain.replicas[victim].state.own_store;
    assert_eq!(
        own.peek_u64(b"mon:packets:g0"),
        Some(released_before),
        "r{victim}: released updates must survive the failure"
    );

    // Phase 4: traffic continues and the counter resumes exactly.
    for i in 0..40 {
        o.chain.inject(pkt(2000 + (i % 8), i));
    }
    let more = o.chain.egress().collect(40, Duration::from_secs(15));
    assert_eq!(more.len(), 40, "post-recovery traffic must flow");
    assert_eq!(own.peek_u64(b"mon:packets:g0"), Some(released_before + 40));
}

fn victim_padded(o: &Orchestrator, victim: usize) -> bool {
    matches!(
        o.chain.cfg.effective_middleboxes()[victim],
        MbSpec::Passthrough
    )
}

#[test]
fn head_position_failure_recovers() {
    kill_and_verify(orch(3, 1), 0);
}

#[test]
fn middle_position_failure_recovers() {
    kill_and_verify(orch(3, 1), 1);
}

#[test]
fn tail_position_failure_recovers() {
    kill_and_verify(orch(3, 1), 2);
}

#[test]
fn every_position_of_a_5_chain_recovers() {
    for victim in 0..5 {
        kill_and_verify(orch(5, 1), victim);
    }
}

#[test]
fn f2_survives_two_simultaneous_failures() {
    let mut o = orch(4, 2);
    for i in 0..50 {
        o.chain.inject(pkt(3000 + (i % 4), i));
    }
    assert_eq!(
        o.chain.egress().collect(50, Duration::from_secs(15)).len(),
        50
    );
    std::thread::sleep(Duration::from_millis(150));

    // Kill two adjacent replicas at once.
    o.chain.kill(1);
    o.chain.kill(2);
    o.recover(1, ftc::net::RegionId(0)).expect("recover r1");
    o.recover(2, ftc::net::RegionId(0)).expect("recover r2");

    for victim in [1usize, 2] {
        assert_eq!(
            o.chain.replicas[victim]
                .state
                .own_store
                .peek_u64(b"mon:packets:g0"),
            Some(50),
            "r{victim} state after double failure"
        );
    }
    for i in 0..30 {
        o.chain.inject(pkt(4000 + (i % 4), i));
    }
    assert_eq!(
        o.chain.egress().collect(30, Duration::from_secs(15)).len(),
        30
    );
}

#[test]
fn sequential_failures_of_every_position() {
    // Kill r0, recover; then r1; then r2 — state accumulates correctly
    // through repeated recoveries.
    let mut o = orch(3, 1);
    let mut expected = 0u64;
    for round in 0..3 {
        for i in 0..20 {
            o.chain.inject(pkt(5000 + (i % 4), round * 100 + i));
        }
        expected += 20;
        assert_eq!(
            o.chain.egress().collect(20, Duration::from_secs(15)).len(),
            20,
            "round {round}"
        );
        std::thread::sleep(Duration::from_millis(100));
        let victim = round as usize;
        o.chain.kill(victim);
        o.recover(victim, ftc::net::RegionId(0)).expect("recover");
        assert_eq!(
            o.chain.replicas[victim]
                .state
                .own_store
                .peek_u64(b"mon:packets:g0"),
            Some(expected),
            "after recovering r{victim}"
        );
    }
}

#[test]
fn detector_driven_recovery_loop() {
    let mut o = orch(3, 1);
    for i in 0..30 {
        o.chain.inject(pkt(6000 + i, i));
    }
    assert_eq!(
        o.chain.egress().collect(30, Duration::from_secs(15)).len(),
        30
    );
    std::thread::sleep(Duration::from_millis(100));
    o.chain.kill(1);
    // Let the monitor loop find and repair it.
    let mut recovered = false;
    for _ in 0..10 {
        let results = o.monitor_round();
        if results.iter().any(|(idx, r)| *idx == 1 && r.is_ok()) {
            recovered = true;
            break;
        }
    }
    assert!(recovered, "monitor loop must detect and repair the failure");
    assert_eq!(
        o.chain.replicas[1]
            .state
            .own_store
            .peek_u64(b"mon:packets:g0"),
        Some(30)
    );
}

#[test]
fn recovery_across_wan_regions_is_rtt_dominated() {
    // Deploy across regions; recovery of the remote replica must cost at
    // least the WAN round trip, like Fig. 13.
    let topo = Topology::savi_like().scaled(0.2);
    let regions = vec![RegionId(0), RegionId(2), RegionId(1)];
    let chain = FtcChain::deploy_in(
        ChainConfig::new(monitors(3)).with_f(1),
        topo.clone(),
        regions.clone(),
    );
    let mut o = Orchestrator::new(chain, OrchestratorConfig::default());
    for i in 0..20 {
        o.chain.inject(pkt(7000 + i, i));
    }
    assert_eq!(
        o.chain.egress().collect(20, Duration::from_secs(20)).len(),
        20
    );
    std::thread::sleep(Duration::from_millis(100));

    o.chain.kill(1); // the replica in the remote region
    let report = o.recover(1, RegionId(2)).expect("recovery");
    // Initialization pays at least orchestrator→remote RTT.
    assert!(report.initialization >= topo.rtt(RegionId(0), RegionId(2)));
    // State recovery pays at least one neighbor RTT (parallel fetches).
    let min_fetch = topo
        .rtt(RegionId(2), RegionId(1))
        .min(topo.rtt(RegionId(2), RegionId(0)));
    assert!(
        report.state_recovery >= min_fetch,
        "state recovery {:?} must be WAN-dominated (≥ {:?})",
        report.state_recovery,
        min_fetch
    );
}

#[test]
fn nf_baseline_loses_everything_ftc_does_not() {
    use ftc::baselines::NfChain;
    // The motivating comparison: same failure, NF loses state forever.
    let mut nf = NfChain::deploy(ChainConfig::new(monitors(2)));
    for i in 0..10 {
        nf.inject(pkt(8000 + i, i));
    }
    assert_eq!(nf.egress().collect(10, Duration::from_secs(10)).len(), 10);
    nf.kill(0);
    nf.inject(pkt(9000, 0));
    assert!(nf.egress().recv(Duration::from_millis(200)).is_none());

    let mut o = orch(2, 1);
    for i in 0..10 {
        o.chain.inject(pkt(8000 + i, i));
    }
    assert_eq!(
        o.chain.egress().collect(10, Duration::from_secs(10)).len(),
        10
    );
    std::thread::sleep(Duration::from_millis(100));
    o.chain.kill(0);
    o.recover(0, ftc::net::RegionId(0)).expect("recovery");
    assert_eq!(
        o.chain.replicas[0]
            .state
            .own_store
            .peek_u64(b"mon:packets:g0"),
        Some(10),
        "FTC keeps the state NF lost"
    );
}
