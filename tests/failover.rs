//! Failure-injection integration tests: the paper's core guarantee is that
//! a chain tolerates `f` fail-stop replica failures with correct recovery —
//! "the middlebox behavior after a failure recovery is consistent with the
//! behavior prior to the failure" (§3.1).
//!
//! The kill-server scenarios are written in the shared
//! [`CrashSchedule`] vocabulary from `ftc_core::testkit` and executed by
//! [`OrchCrashTarget`] over the threaded orchestrator stack — the same
//! descriptors the `ftc-audit` protocol model checker enumerates
//! step-granularly over `SyncChain`.

use ftc::core::testkit::{CrashPhase, CrashPoint, CrashSchedule, CrashTarget};
use ftc::orch::testkit::OrchCrashTarget;
use ftc::prelude::*;
use std::net::Ipv4Addr;
use std::time::Duration;

fn pkt(src_port: u16, ident: u16) -> Packet {
    UdpPacketBuilder::new()
        .src(Ipv4Addr::new(10, 3, 0, 1), src_port)
        .dst(Ipv4Addr::new(10, 88, 0, 1), 443)
        .ident(ident)
        .build()
}

fn monitors(n: usize) -> Vec<MbSpec> {
    vec![MbSpec::Monitor { sharing_level: 1 }; n]
}

fn orch(n: usize, f: usize) -> Orchestrator {
    Orchestrator::new(
        FtcChain::deploy(ChainConfig::new(monitors(n)).with_f(f)),
        OrchestratorConfig::default(),
    )
}

/// Drives traffic, kills `victim`, recovers, then verifies that every
/// *released* packet's state update survived — the strong-consistency
/// guarantee (§3.1). The whole scenario is one [`CrashSchedule`].
fn kill_and_verify(o: Orchestrator, victim: usize) {
    let mut target = OrchCrashTarget::new(o);
    let outcome = CrashSchedule::new()
        .label(format!("kill r{victim} quiesced"))
        .warm(60)
        .kill(victim)
        .post(40)
        .run(&mut target);
    assert_eq!(outcome.released_before, 60);
    assert_eq!(
        outcome.released_after, 40,
        "post-recovery traffic must flow"
    );
    let (v, report) = &target.reports[0];
    assert!(report.bytes_transferred > 0 || victim_padded(&target.orch, *v));
    // Every released update survived the failure: the counter resumes
    // exactly (60 pre-crash updates recovered + 40 post-crash).
    assert_eq!(
        target.mon_packets(victim),
        Some(100),
        "r{victim}: released updates must survive the failure"
    );
}

fn victim_padded(o: &Orchestrator, victim: usize) -> bool {
    matches!(
        o.chain.cfg.effective_middleboxes()[victim],
        MbSpec::Passthrough
    )
}

#[test]
fn head_position_failure_recovers() {
    kill_and_verify(orch(3, 1), 0);
}

#[test]
fn middle_position_failure_recovers() {
    kill_and_verify(orch(3, 1), 1);
}

#[test]
fn tail_position_failure_recovers() {
    kill_and_verify(orch(3, 1), 2);
}

#[test]
fn every_position_of_a_5_chain_recovers() {
    for victim in 0..5 {
        kill_and_verify(orch(5, 1), victim);
    }
}

#[test]
fn f2_survives_two_simultaneous_failures() {
    let mut target = OrchCrashTarget::new(orch(4, 2));
    target.inject(50);
    assert_eq!(target.settle(), 50);

    // Kill two adjacent replicas at once (crash_many: both die before
    // either recovery starts — the case a one-at-a-time schedule cannot
    // express).
    target.crash_many(&[1, 2]);

    for victim in [1usize, 2] {
        assert_eq!(
            target.mon_packets(victim),
            Some(50),
            "r{victim} state after double failure"
        );
    }
    target.inject(30);
    assert_eq!(target.settle(), 30);
}

#[test]
fn sequential_failures_of_every_position() {
    // Kill r0, recover; then r1; then r2 — state accumulates correctly
    // through repeated recoveries. One schedule per round, same target.
    let mut target = OrchCrashTarget::new(orch(3, 1));
    let mut expected = 0u64;
    for round in 0..3usize {
        let outcome = CrashSchedule::new()
            .label(format!("round {round}: kill r{round}"))
            .warm(20)
            .kill(round)
            .run(&mut target);
        expected += 20;
        assert_eq!(outcome.released_before, 20, "round {round}");
        assert_eq!(
            target.mon_packets(round),
            Some(expected),
            "after recovering r{round}"
        );
    }
}

#[test]
fn detector_driven_recovery_loop() {
    let mut target = OrchCrashTarget::new(orch(3, 1));
    target.inject(30);
    assert_eq!(target.settle(), 30);
    target.orch.chain.kill(1);
    // Let the monitor loop find and repair it (no explicit recover call —
    // this path exercises the detector, not the schedule executor).
    let mut recovered = false;
    for _ in 0..10 {
        let results = target.orch.monitor_round();
        if results.iter().any(|(idx, r)| *idx == 1 && r.is_ok()) {
            recovered = true;
            break;
        }
    }
    assert!(recovered, "monitor loop must detect and repair the failure");
    assert_eq!(target.mon_packets(1), Some(30));
}

#[test]
fn recovery_across_wan_regions_is_rtt_dominated() {
    // Deploy across regions; recovery of the remote replica must cost at
    // least the WAN round trip, like Fig. 13.
    let topo = Topology::savi_like().scaled(0.2);
    let regions = vec![RegionId(0), RegionId(2), RegionId(1)];
    let chain = FtcChain::deploy_in(
        ChainConfig::new(monitors(3)).with_f(1),
        topo.clone(),
        regions.clone(),
    );
    let o = Orchestrator::new(chain, OrchestratorConfig::default());
    let mut target = OrchCrashTarget::new(o).recover_region(RegionId(2));
    target.inject(20);
    assert_eq!(target.settle(), 20);

    // Kill the replica in the remote region.
    target.crash(&CrashPoint {
        victim: 1,
        phase: CrashPhase::Quiesced,
        trigger: 0,
    });
    let report = &target.reports[0].1;
    // Initialization pays at least orchestrator→remote RTT.
    assert!(report.initialization >= topo.rtt(RegionId(0), RegionId(2)));
    // State recovery pays at least one neighbor RTT (parallel fetches).
    let min_fetch = topo
        .rtt(RegionId(2), RegionId(1))
        .min(topo.rtt(RegionId(2), RegionId(0)));
    assert!(
        report.state_recovery >= min_fetch,
        "state recovery {:?} must be WAN-dominated (≥ {:?})",
        report.state_recovery,
        min_fetch
    );
}

#[test]
fn nf_baseline_loses_everything_ftc_does_not() {
    use ftc::baselines::NfChain;
    // The motivating comparison: same failure, NF loses state forever.
    let mut nf = NfChain::deploy(ChainConfig::new(monitors(2)));
    for i in 0..10 {
        nf.inject(pkt(8000 + i, i));
    }
    assert_eq!(nf.egress().collect(10, Duration::from_secs(10)).len(), 10);
    nf.kill(0);
    nf.inject(pkt(9000, 0));
    assert!(nf.egress().recv(Duration::from_millis(200)).is_none());

    let mut target = OrchCrashTarget::new(orch(2, 1));
    let outcome = CrashSchedule::new()
        .label("nf comparison: kill r0")
        .warm(10)
        .kill(0)
        .run(&mut target);
    assert_eq!(outcome.released_before, 10);
    assert_eq!(
        target.mon_packets(0),
        Some(10),
        "FTC keeps the state NF lost"
    );
}
