//! Cross-system integration: the baselines process identical traffic with
//! identical middlebox semantics, and the performance simulator reproduces
//! the qualitative results the paper reports.

use ftc::baselines::{FtmbChain, NfChain, SnapshotCfg};
use ftc::prelude::*;
use ftc::sim::{simulate, MbKind, SimConfig, SystemKind};
use std::net::Ipv4Addr;
use std::time::Duration;

fn pkt(src_port: u16, ident: u16) -> Packet {
    UdpPacketBuilder::new()
        .src(Ipv4Addr::new(10, 5, 0, 1), src_port)
        .dst(Ipv4Addr::new(10, 66, 0, 1), 8080)
        .ident(ident)
        .build()
}

#[test]
fn all_three_systems_agree_on_middlebox_semantics() {
    // Same NAT chain under FTC, NF and FTMB: identical rewriting behaviour.
    let ext = Ipv4Addr::new(203, 0, 113, 9);
    let spec = || {
        vec![
            MbSpec::Monitor { sharing_level: 1 },
            MbSpec::SimpleNat { external_ip: ext },
        ]
    };
    let ftc = FtcChain::deploy(ChainConfig::new(spec()).with_f(1));
    let nf = NfChain::deploy(ChainConfig::new(spec()));
    let ftmb = FtmbChain::deploy(ChainConfig::new(spec()), None);

    let systems: Vec<(&dyn ChainSystem, &str)> = vec![(&ftc, "FTC"), (&nf, "NF"), (&ftmb, "FTMB")];
    for (sys, name) in systems {
        for i in 0..10 {
            sys.inject_pkt(pkt(1000 + (i % 2), i));
        }
        let mut got = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(15);
        while got.len() < 10 && std::time::Instant::now() < deadline {
            if let Some(p) = sys.egress_pkt(Duration::from_millis(5)) {
                got.push(p);
            }
        }
        assert_eq!(got.len(), 10, "{name} must release all packets");
        for p in &got {
            assert_eq!(
                p.flow_key().unwrap().src_ip,
                ext,
                "{name}: NAT must rewrite"
            );
        }
    }
}

#[test]
fn ftmb_emits_one_pal_per_stateful_packet() {
    let chain = FtmbChain::deploy(
        ChainConfig::new(vec![
            MbSpec::Firewall { rules: vec![] },   // stateless: no PALs
            MbSpec::Monitor { sharing_level: 1 }, // stateful: PAL per packet
        ]),
        None,
    );
    for i in 0..30 {
        chain.inject(pkt(2000 + i, i));
    }
    assert_eq!(
        chain.egress().collect(30, Duration::from_secs(15)).len(),
        30
    );
    assert_eq!(
        chain.stages[0]
            .pals
            .load(std::sync::atomic::Ordering::Relaxed),
        0
    );
    assert_eq!(
        chain.stages[1]
            .pals
            .load(std::sync::atomic::Ordering::Relaxed),
        30
    );
}

#[test]
fn snapshot_variant_is_strictly_slower() {
    let plain = FtmbChain::deploy(
        ChainConfig::new(vec![MbSpec::Monitor { sharing_level: 1 }]),
        None,
    );
    let snap = FtmbChain::deploy(
        ChainConfig::new(vec![MbSpec::Monitor { sharing_level: 1 }]),
        Some(SnapshotCfg {
            period: Duration::from_millis(20),
            pause: Duration::from_millis(8),
        }),
    );
    let runner = TrafficRunner::new(WorkloadConfig::default());
    let tp = runner.closed_loop(&plain, 16, Duration::from_millis(800));
    let ts = runner.closed_loop(&snap, 16, Duration::from_millis(800));
    assert!(
        ts.pps < tp.pps * 0.8,
        "snapshots must cost ≥20% here: {} vs {}",
        ts.pps,
        tp.pps
    );
}

// ---------------------------------------------------------------------
// Simulator: reproduce the paper's headline qualitative claims.
// ---------------------------------------------------------------------

fn sat(system: SystemKind, chain: Vec<MbKind>) -> f64 {
    simulate(&SimConfig::saturated(system, chain).with_duration(0.02)).mpps()
}

#[test]
fn headline_claim_ftc_is_2_to_3_5x_ftmb_on_chains() {
    // Abstract: "compared with the state of art, FTC improves throughput by
    // 2–3.5× for a chain of two to five middleboxes" (vs FTMB+Snapshot,
    // which is what the deployed FTMB system does).
    for n in 2..=5 {
        let chain = vec![MbKind::Monitor { sharing: 1 }; n];
        let ftc = sat(SystemKind::Ftc { f: 1 }, chain.clone());
        let ftmb_snap = simulate(
            &SimConfig::saturated(
                SystemKind::Ftmb {
                    snapshot: Some((50e6, 6e6)),
                },
                chain,
            )
            .with_duration(0.2),
        )
        .mpps();
        let ratio = ftc / ftmb_snap;
        assert!(
            (1.6..=4.2).contains(&ratio),
            "chain of {n}: FTC/FTMB+Snapshot = {ratio:.2} (ftc={ftc:.2}, ftmb={ftmb_snap:.2})"
        );
    }
}

#[test]
fn snapshot_chains_degrade_with_length_ftc_does_not() {
    // §1: "we observed a ~40% drop in throughput for a chain of five
    // middleboxes as compared to a single middlebox" for snapshotting
    // systems; §7.4: FTC's drop is 2–7%.
    let tput = |system: SystemKind, n: usize, dur: f64| {
        simulate(
            &SimConfig::saturated(system, vec![MbKind::Monitor { sharing: 1 }; n])
                .with_duration(dur),
        )
        .mpps()
    };
    let snap = SystemKind::Ftmb {
        snapshot: Some((50e6, 6e6)),
    };
    let snap_drop = 1.0 - tput(snap, 5, 0.3) / tput(snap, 1, 0.3);
    assert!(
        snap_drop > 0.2,
        "snapshot stalls must compound along the chain: drop = {snap_drop:.2}"
    );
    let ftc_drop =
        1.0 - tput(SystemKind::Ftc { f: 1 }, 5, 0.05) / tput(SystemKind::Ftc { f: 1 }, 2, 0.05);
    assert!(
        ftc_drop < 0.10,
        "FTC throughput must be largely independent of chain length: {ftc_drop:.2}"
    );
}

#[test]
fn ftc_chain5_lands_in_paper_window() {
    // §7.4: "FTC's throughput is within 8.28–8.92 Mpps" for Ch-2..Ch-5.
    for n in 2..=5 {
        let mpps = sat(
            SystemKind::Ftc { f: 1 },
            vec![MbKind::Monitor { sharing: 1 }; n],
        );
        assert!(
            (8.0..=9.4).contains(&mpps),
            "Ch-{n}: FTC = {mpps:.2} Mpps, expected ≈ 8.28–8.92"
        );
    }
}

#[test]
fn mazunat_read_heavy_gap_vs_ftmb() {
    // §7.3: FTC's MazuNAT throughput is 1.37–1.94× FTMB's for 1–4 threads,
    // because FTC does not replicate reads while FTMB logs them.
    for workers in [1usize, 2, 4] {
        let ftc = simulate(
            &SimConfig::saturated(
                SystemKind::Ftc { f: 1 },
                vec![MbKind::MazuNat, MbKind::Passthrough],
            )
            .with_workers(workers)
            .with_duration(0.02),
        )
        .mpps();
        let ftmb = simulate(
            &SimConfig::saturated(SystemKind::Ftmb { snapshot: None }, vec![MbKind::MazuNat])
                .with_workers(workers)
                .with_duration(0.02),
        )
        .mpps();
        let ratio = ftc / ftmb;
        assert!(
            (1.2..=2.4).contains(&ratio),
            "{workers} workers: FTC/FTMB = {ratio:.2}"
        );
    }
}

#[test]
fn latency_vs_load_has_a_knee() {
    // Fig. 8 shape: flat latency under the saturation point, then a spike.
    let chain = vec![MbKind::Monitor { sharing: 8 }];
    let lat = |pps: f64| {
        simulate(
            &SimConfig::at_rate(SystemKind::Ftc { f: 1 }, chain.clone(), pps).with_duration(0.02),
        )
        .mean_latency()
        .unwrap()
    };
    let low = lat(1e6);
    let mid = lat(3e6);
    let high = lat(6e6); // beyond the fully-shared monitor's ~4.5 Mpps
    assert!(mid < low * 4, "below saturation latency stays near-flat");
    // Ring-bounded queues cap the spike, but it must still dwarf the
    // uncongested latency.
    assert!(
        high > mid * 4,
        "past saturation it spikes: {high:?} vs {mid:?}"
    );
    assert!(
        high > Duration::from_micros(150),
        "spike magnitude: {high:?}"
    );
}
