//! Failure injection *while traffic is flowing* — the hardest recovery
//! scenario: in-flight packets are lost at the dead server, but every
//! packet that was already **released** must have its updates recovered,
//! and the chain must resume afterwards.
//!
//! Kill/recover execution goes through the shared
//! [`CrashTarget`](ftc::core::testkit::CrashTarget) harness
//! ([`OrchCrashTarget`]) so the crash vocabulary matches
//! `tests/failover.rs` and the protocol model checker; the continuous
//! generator and time-based draining stay local to these tests.

use ftc::core::testkit::{CrashPhase, CrashPoint, CrashTarget};
use ftc::orch::testkit::OrchCrashTarget;
use ftc::prelude::*;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn pkt(i: u32) -> Packet {
    UdpPacketBuilder::new()
        .src(Ipv4Addr::new(10, 8, 0, 1), 1000 + (i % 32) as u16)
        .dst(Ipv4Addr::new(10, 90, 0, 1), 80)
        .ident(i as u16)
        .build()
}

#[test]
fn kill_and_recover_under_continuous_load() {
    for victim in 0..3usize {
        let chain = FtcChain::deploy(ChainConfig::ch_n(3, 1).with_f(1));
        let orch = Orchestrator::new(chain, OrchestratorConfig::default());
        let mut target = OrchCrashTarget::new(orch);

        // A generator thread keeps injecting throughout the failure.
        let stop = Arc::new(AtomicBool::new(false));
        let ingress = Arc::clone(&target.orch.chain.ingress);
        let gen_stop = Arc::clone(&stop);
        let generator = std::thread::spawn(move || {
            let mut sent = 0u32;
            while !gen_stop.load(Ordering::Relaxed) {
                let _ = ingress.lock().send(pkt(sent).into_bytes());
                sent += 1;
                std::thread::sleep(Duration::from_micros(300));
            }
            sent
        });

        // Let traffic flow, then fail-stop the victim mid-stream. The
        // drain is time-based (traffic never quiesces under the
        // generator), so CrashTarget::settle does not apply here.
        let t_warm = std::time::Instant::now();
        let mut released_before_kill = 0u64;
        while t_warm.elapsed() < Duration::from_millis(300) {
            if target
                .orch
                .chain
                .egress()
                .recv(Duration::from_millis(2))
                .is_some()
            {
                released_before_kill += 1;
            }
        }
        assert!(
            released_before_kill > 0,
            "warm traffic must flow (victim {victim})"
        );

        // Fail-stop + recovery via the shared harness (packets in flight
        // during the outage are allowed to be lost — fail-stop semantics).
        target.crash(&CrashPoint {
            victim,
            phase: CrashPhase::Quiesced,
            trigger: 0,
        });
        let report = &target.reports.last().expect("recovery report").1;
        assert!(report.total() > Duration::ZERO);

        // Post-recovery: traffic must flow again.
        let t_post = std::time::Instant::now();
        let mut post = 0u64;
        while t_post.elapsed() < Duration::from_secs(10) && post < 50 {
            if target
                .orch
                .chain
                .egress()
                .recv(Duration::from_millis(5))
                .is_some()
            {
                post += 1;
            }
        }
        stop.store(true, Ordering::Relaxed);
        let sent = generator.join().unwrap();
        assert!(
            post >= 50,
            "victim {victim}: traffic must resume after recovery ({post} released post-kill, {sent} sent)"
        );

        // The recovered replica's own store must cover at least everything
        // released before the kill (strong consistency for released
        // packets; in-flight ones may exceed this).
        let own = target.mon_packets(victim).unwrap_or(0);
        assert!(
            own >= released_before_kill,
            "victim {victim}: recovered count {own} must cover the {released_before_kill} released"
        );
    }
}

#[test]
fn double_failure_under_load_with_f2() {
    let chain = FtcChain::deploy(ChainConfig::ch_n(4, 1).with_f(2));
    let orch = Orchestrator::new(chain, OrchestratorConfig::default());
    let mut target = OrchCrashTarget::new(orch);

    target.inject(100);
    assert_eq!(target.settle(), 100);

    // Two adjacent failures while more traffic is in flight: inject, then
    // kill both before either recovery starts.
    target.inject(40);
    target.crash_many(&[1, 2]);

    target.inject(40);
    let post = target.settle();
    assert!(
        post >= 40,
        "chain must survive a double failure under load ({post})"
    );
    for victim in [1usize, 2] {
        let own = target.mon_packets(victim).unwrap_or(0);
        assert!(
            own >= 100,
            "r{victim} must retain at least the quiesced prefix: {own}"
        );
    }
}
