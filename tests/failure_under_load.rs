//! Failure injection *while traffic is flowing* — the hardest recovery
//! scenario: in-flight packets are lost at the dead server, but every
//! packet that was already **released** must have its updates recovered,
//! and the chain must resume afterwards.

use ftc::prelude::*;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn pkt(i: u32) -> Packet {
    UdpPacketBuilder::new()
        .src(Ipv4Addr::new(10, 8, 0, 1), 1000 + (i % 32) as u16)
        .dst(Ipv4Addr::new(10, 90, 0, 1), 80)
        .ident(i as u16)
        .build()
}

#[test]
fn kill_and_recover_under_continuous_load() {
    for victim in 0..3usize {
        let chain = FtcChain::deploy(ChainConfig::ch_n(3, 1).with_f(1));
        let mut orch = Orchestrator::new(chain, OrchestratorConfig::default());

        // A generator thread keeps injecting throughout the failure.
        let stop = Arc::new(AtomicBool::new(false));
        let ingress = Arc::clone(&orch.chain.ingress);
        let gen_stop = Arc::clone(&stop);
        let generator = std::thread::spawn(move || {
            let mut sent = 0u32;
            while !gen_stop.load(Ordering::Relaxed) {
                let _ = ingress.lock().send(pkt(sent).into_bytes());
                sent += 1;
                std::thread::sleep(Duration::from_micros(300));
            }
            sent
        });

        // A drain thread keeps collecting egress.
        let released = Arc::new(std::sync::atomic::AtomicU64::new(0));

        // Let traffic flow, then fail-stop the victim mid-stream.
        let t_warm = std::time::Instant::now();
        while t_warm.elapsed() < Duration::from_millis(300) {
            if orch.chain.egress().recv(Duration::from_millis(2)).is_some() {
                released.fetch_add(1, Ordering::Relaxed);
            }
        }
        let released_before_kill = released.load(Ordering::Relaxed);
        assert!(
            released_before_kill > 0,
            "warm traffic must flow (victim {victim})"
        );

        orch.chain.kill(victim);
        // Keep draining while the orchestrator recovers (packets in flight
        // during the outage are allowed to be lost — fail-stop semantics).
        let report = orch
            .recover(victim, ftc::net::RegionId(0))
            .expect("recovery under load");
        assert!(report.total() > Duration::ZERO);

        // Post-recovery: traffic must flow again.
        let t_post = std::time::Instant::now();
        let mut post = 0u64;
        while t_post.elapsed() < Duration::from_secs(10) && post < 50 {
            if orch.chain.egress().recv(Duration::from_millis(5)).is_some() {
                post += 1;
            }
        }
        stop.store(true, Ordering::Relaxed);
        let sent = generator.join().unwrap();
        assert!(
            post >= 50,
            "victim {victim}: traffic must resume after recovery ({post} released post-kill, {sent} sent)"
        );

        // The recovered replica's own store must cover at least everything
        // released before the kill (strong consistency for released
        // packets; in-flight ones may exceed this).
        let own = orch.chain.replicas[victim]
            .state
            .own_store
            .peek_u64(b"mon:packets:g0")
            .unwrap_or(0);
        assert!(
            own >= released_before_kill,
            "victim {victim}: recovered count {own} must cover the {released_before_kill} released"
        );
    }
}

#[test]
fn double_failure_under_load_with_f2() {
    let chain = FtcChain::deploy(ChainConfig::ch_n(4, 1).with_f(2));
    let mut orch = Orchestrator::new(chain, OrchestratorConfig::default());

    for i in 0..100 {
        orch.chain.inject(pkt(i));
    }
    let warm = orch.chain.egress().collect(100, Duration::from_secs(15));
    assert_eq!(warm.len(), 100);
    std::thread::sleep(Duration::from_millis(120));

    // Two adjacent failures while more traffic is in flight.
    for i in 100..140 {
        orch.chain.inject(pkt(i));
    }
    orch.chain.kill(1);
    orch.chain.kill(2);
    orch.recover(1, ftc::net::RegionId(0)).expect("recover r1");
    orch.recover(2, ftc::net::RegionId(0)).expect("recover r2");

    for i in 140..180 {
        orch.chain.inject(pkt(i));
    }
    let t = std::time::Instant::now();
    let mut post = 0;
    while t.elapsed() < Duration::from_secs(15) && post < 40 {
        if orch.chain.egress().recv(Duration::from_millis(5)).is_some() {
            post += 1;
        }
    }
    assert!(
        post >= 40,
        "chain must survive a double failure under load ({post})"
    );
    for victim in [1usize, 2] {
        let own = orch.chain.replicas[victim]
            .state
            .own_store
            .peek_u64(b"mon:packets:g0")
            .unwrap_or(0);
        assert!(
            own >= 100,
            "r{victim} must retain at least the quiesced prefix: {own}"
        );
    }
}
