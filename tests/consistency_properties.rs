//! Property-based integration tests of the protocol's consistency
//! guarantees across crates.

use bytes::Bytes;
use ftc::prelude::*;
use ftc::stm::{MaxVector, StateStore};
use proptest::collection::vec;
use proptest::prelude::*;
use std::net::Ipv4Addr;
use std::time::Duration;

// The wire formats survive arbitrary middlebox rewriting: any sequence of
// NAT-style header rewrites keeps the packet parseable with a valid
// checksum and an intact piggyback trailer.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rewrites_preserve_wire_integrity(
        rewrites in vec((any::<u32>(), any::<u16>(), any::<bool>()), 0..8),
        payload in 0usize..256,
    ) {
        let mut pkt = UdpPacketBuilder::new().payload_len(payload).build();
        pkt.attach_piggyback(&ftc::packet::PiggybackMessage::default()).unwrap();
        for (ip, port, is_src) in rewrites {
            let addr = Ipv4Addr::from(ip);
            if is_src {
                ftc::mbox::nat::rewrite_src(&mut pkt, addr, port).unwrap();
            } else {
                ftc::mbox::nat::rewrite_dst(&mut pkt, addr, port).unwrap();
            }
        }
        pkt.ipv4().unwrap().verify_checksum().unwrap();
        prop_assert!(pkt.flow_key().is_ok());
        prop_assert!(pkt.detach_piggyback().unwrap().is_some());
    }

    /// Two replicas fed the same logs in different orders converge — the
    /// replication layer is confluent.
    #[test]
    fn replicas_converge_regardless_of_delivery_order(
        ops in vec((0u8..5, 1u64..50), 1..40),
        seed in any::<u64>(),
    ) {
        let head = StateStore::new(16);
        let mut logs = Vec::new();
        for (k, v) in &ops {
            let key = Bytes::from(format!("var{k}"));
            let out = head.transaction(|txn| {
                let cur = txn.read_u64(&key)?.unwrap_or(0);
                txn.write_u64(key.clone(), cur + v)?;
                Ok(())
            });
            logs.push(out.log.unwrap());
        }
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut shuffled = logs.clone();
        shuffled.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));

        let (ra, ma) = (StateStore::new(16), MaxVector::new(16));
        let (rb, mb) = (StateStore::new(16), MaxVector::new(16));
        for log in &logs {
            ma.offer(&log.deps, &log.writes, &ra);
        }
        for log in &shuffled {
            mb.offer(&log.deps, &log.writes, &rb);
        }
        prop_assert_eq!(ma.parked_len(), 0);
        prop_assert_eq!(mb.parked_len(), 0);
        prop_assert_eq!(ra.snapshot(), rb.snapshot());
        prop_assert_eq!(ra.snapshot(), head.snapshot());
    }
}

/// Randomized end-to-end check: arbitrary small chains with arbitrary
/// traffic always release every packet exactly once and replicate every
/// counter. (Deterministic seeds keep this reproducible.)
#[test]
fn randomized_chains_always_release_everything() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(2..=4usize);
        let f = rng.gen_range(1..n).min(2);
        let workers = if rng.gen_bool(0.5) { 1 } else { 2 };
        let chain = FtcChain::deploy(
            ChainConfig::new(vec![MbSpec::Monitor { sharing_level: 1 }; n])
                .with_f(f)
                .with_workers(workers),
        );
        let packets = rng.gen_range(20..60u16);
        for i in 0..packets {
            chain.inject(
                UdpPacketBuilder::new()
                    .src(Ipv4Addr::new(10, 9, 0, 1), 1000 + rng.gen_range(0..16u16))
                    .dst(Ipv4Addr::new(10, 10, 0, 1), 80)
                    .ident(i)
                    .build(),
            );
        }
        let got = chain
            .egress()
            .collect(packets as usize, Duration::from_secs(20));
        assert_eq!(
            got.len(),
            packets as usize,
            "seed {seed}: n={n} f={f} workers={workers}"
        );
        for slot in &chain.replicas {
            // With sharing_level 1 each worker owns its own counter group
            // (`mon:packets:g{worker}`), so the invariant is that the groups
            // SUM to the packet count — not that g0 holds all of it.
            let counted: u64 = (0..workers)
                .map(|w| {
                    slot.state
                        .own_store
                        .peek_u64(format!("mon:packets:g{w}").as_bytes())
                        .unwrap_or(0)
                })
                .sum();
            assert_eq!(
                counted,
                u64::from(packets),
                "seed {seed}: replica {} missed packets",
                slot.state.idx
            );
        }
    }
}

/// Minimized regression for the failure `randomized_chains_always_release_
/// everything` used to hit: a 2-worker replica splits a Monitor's
/// sharing-level-1 counters across per-worker groups (`g0`, `g1`), and the
/// old assertion expected all packets in `g0`. The pinned schedule: two
/// flows hashing to different worker queues, every packet released, and on
/// EVERY replica the per-group counters sum to the total with an identical
/// split (flow -> worker mapping is deterministic, so replicas must agree).
#[test]
fn per_worker_counter_groups_sum_to_packet_count() {
    let chain = FtcChain::deploy(
        ChainConfig::new(vec![MbSpec::Monitor { sharing_level: 1 }; 2])
            .with_f(1)
            .with_workers(2),
    );
    let packets = 32u16;
    for i in 0..packets {
        chain.inject(
            UdpPacketBuilder::new()
                // Alternate between two flows so both worker queues see
                // traffic (whichever way the RSS hash maps them).
                .src(Ipv4Addr::new(10, 9, 0, 1), 1000 + (i % 2))
                .dst(Ipv4Addr::new(10, 10, 0, 1), 80)
                .ident(i)
                .build(),
        );
    }
    let got = chain
        .egress()
        .collect(packets as usize, Duration::from_secs(20));
    assert_eq!(got.len(), packets as usize, "all packets must release");

    let split_of = |slot: &ftc::core::chain::ReplicaSlot| -> Vec<u64> {
        (0..2)
            .map(|w| {
                slot.state
                    .own_store
                    .peek_u64(format!("mon:packets:g{w}").as_bytes())
                    .unwrap_or(0)
            })
            .collect()
    };
    let reference = split_of(&chain.replicas[0]);
    assert_eq!(
        reference.iter().sum::<u64>(),
        u64::from(packets),
        "groups must sum to the injected packet count"
    );
    for slot in &chain.replicas[1..] {
        assert_eq!(
            split_of(slot),
            reference,
            "replica {}: flow->worker split must match replica 0",
            slot.state.idx
        );
    }
}

/// The strong-consistency guarantee under failure: after quiescing and
/// killing ANY single replica, the union of surviving replicas holds every
/// released packet's update.
#[test]
fn released_updates_survive_any_single_failure() {
    for victim in 0..3usize {
        let chain = FtcChain::deploy(
            ChainConfig::new(vec![MbSpec::Monitor { sharing_level: 1 }; 3]).with_f(1),
        );
        let packets = 40u64;
        for i in 0..packets {
            chain.inject(
                UdpPacketBuilder::new()
                    .src(Ipv4Addr::new(10, 9, 0, 2), 2000 + (i % 8) as u16)
                    .dst(Ipv4Addr::new(10, 10, 0, 2), 80)
                    .build(),
            );
        }
        let released = chain
            .egress()
            .collect(packets as usize, Duration::from_secs(20));
        assert_eq!(released.len(), packets as usize);
        std::thread::sleep(Duration::from_millis(150)); // quiesce the ring

        let mut chain = chain;
        chain.kill(victim);

        // For every middlebox, some surviving group member has the state.
        let ring = chain.cfg.ring();
        for m in 0..3 {
            let holder = ring
                .group(m)
                .into_iter()
                .filter(|&r| r != victim)
                .find(|&r| {
                    let slot = &chain.replicas[r];
                    let count = if r == m {
                        slot.state.own_store.peek_u64(b"mon:packets:g0")
                    } else {
                        slot.state
                            .replicated
                            .get(&m)
                            .and_then(|g| g.store.peek_u64(b"mon:packets:g0"))
                    };
                    count == Some(packets)
                });
            assert!(
                holder.is_some(),
                "victim {victim}: middlebox {m}'s released updates must survive"
            );
        }
    }
}
